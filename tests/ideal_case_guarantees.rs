//! End-to-end checks of the paper's headline guarantee (Theorem 2): on
//! consistent (pre-P) inputs the spectral methods recover a C1P ordering,
//! in agreement with the exact combinatorial PQ-tree route.

use hitsndiffs::c1p::{is_p_matrix, pre_p_ordering, AbhDirect, AbhPower};
use hitsndiffs::core::{SolverKind, SolverOpts};
use hitsndiffs::irt::generate_c1p;
use hitsndiffs::prelude::*;
use hitsndiffs::response::AbilityRanker;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rankers() -> Vec<(&'static str, Box<dyn AbilityRanker>)> {
    // The HND family is built through the unified SpectralSolver registry.
    let unoriented = SolverOpts {
        orient: false,
        ..Default::default()
    };
    vec![
        ("HnD-power", SolverKind::Power.build(unoriented)),
        ("HnD-deflation", SolverKind::Deflation.build(unoriented)),
        ("HnD-direct", SolverKind::Direct.build(unoriented)),
        // ABH rides the same shared options since the SolverOpts fold
        // (keeping its own tighter Krylov default via AbhDirect::default).
        (
            "ABH-direct",
            Box::new(AbhDirect::with_opts(SolverOpts {
                orient: false,
                ..AbhDirect::default().opts
            })),
        ),
        ("ABH-power", Box::new(AbhPower::with_opts(unoriented))),
    ]
}

#[test]
fn spectral_methods_reconstruct_c1p_on_ideal_data() {
    // The random C1P generator can produce near-duplicate users whose
    // eigenvector gap sits below the iterative tolerance, and orderings
    // need not be unique — so the spectral methods are held to the paper's
    // *accuracy* standard here (Figure 4h: ≈ 1.0), while exact P-matrix
    // witnessing under Theorem 2's uniqueness hypothesis is covered by the
    // staircase property tests in `hnd-core`.
    for seed in [1, 7, 42, 1234] {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate_c1p(50, 40, 3, &mut rng);
        let c = ds.responses.to_binary_csr();
        // The exact combinatorial route must succeed and witness C1P.
        let bl = pre_p_ordering(&c).expect("C1P generator produces pre-P data");
        assert!(
            is_p_matrix(&c.permute_rows(&bl)),
            "seed {seed}: BL order invalid"
        );
        for (name, ranker) in rankers() {
            let ranking = ranker.rank(&ds.responses).expect("ranker runs");
            let rho = spearman(&ranking.scores, &ds.abilities).abs();
            assert!(
                rho > 0.99,
                "seed {seed}: {name} accuracy on ideal data only {rho}"
            );
        }
    }
}

#[test]
fn oriented_hnd_matches_true_abilities_on_ideal_data() {
    // With decile-entropy orientation and the paper's asymmetric ability
    // distribution (90% strong users), accuracy must be essentially 1.
    for seed in [3, 9, 27] {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = generate_c1p(100, 100, 3, &mut rng);
        let ranking = HitsNDiffs::default().rank(&ds.responses).expect("HnD runs");
        let rho = spearman(&ranking.scores, &ds.abilities);
        assert!(rho > 0.99, "seed {seed}: oriented accuracy {rho}");
    }
}

#[test]
fn truth_discovery_baselines_cannot_reconstruct_c1p() {
    // Section IV-B item 6: HND and ABH are the only methods recovering the
    // C1P permutation. The HITS family solves a different problem and must
    // visibly fail on ideal C1P inputs with many weak-consensus columns.
    use hitsndiffs::models::{Hits, TruthFinder};
    let mut rng = StdRng::seed_from_u64(11);
    let ds = generate_c1p(100, 100, 3, &mut rng);
    for (name, ranking) in [
        ("HITS", Hits::default().rank(&ds.responses).unwrap()),
        (
            "TruthFinder",
            TruthFinder::default().rank(&ds.responses).unwrap(),
        ),
    ] {
        let rho = spearman(&ranking.scores, &ds.abilities).abs();
        assert!(
            rho < 0.9,
            "{name} unexpectedly reconstructs C1P (|rho| = {rho})"
        );
    }
}

#[test]
fn hnd_beats_abh_off_the_ideal_case() {
    // Section IV-D: averaged over seeds at moderate discrimination, HND is
    // at least as accurate as ABH.
    let mut hnd_total = 0.0;
    let mut abh_total = 0.0;
    let seeds = [2u64, 4, 6, 8, 10];
    for &seed in &seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = hitsndiffs::irt::generate(
            &hitsndiffs::irt::GeneratorConfig {
                n_users: 100,
                n_items: 100,
                model: hitsndiffs::irt::ModelKind::Samejima,
                ..Default::default()
            },
            &mut rng,
        );
        let hnd = HitsNDiffs::default().rank(&ds.responses).unwrap();
        let abh = AbhDirect::default().rank(&ds.responses).unwrap();
        hnd_total += spearman(&hnd.scores, &ds.abilities);
        abh_total += spearman(&abh.scores, &ds.abilities).abs();
    }
    let n = seeds.len() as f64;
    assert!(
        hnd_total / n > abh_total / n,
        "HnD mean {} must beat ABH mean {}",
        hnd_total / n,
        abh_total / n
    );
    assert!(hnd_total / n > 0.8, "HnD should be strong here");
}
