//! Cross-crate pipeline tests: generate → persist → reload → rank →
//! evaluate, exercising the public API the way a downstream user would.

use hitsndiffs::datasets::DatasetFile;
use hitsndiffs::irt::{generate, GeneratorConfig, ModelKind};
use hitsndiffs::models::TrueAnswer;
use hitsndiffs::prelude::*;
use hitsndiffs::response::AbilityRanker;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn storage_roundtrip_preserves_rankings() {
    let mut rng = StdRng::seed_from_u64(31);
    let ds = generate(
        &GeneratorConfig {
            n_users: 40,
            n_items: 30,
            model: ModelKind::Grm,
            ..Default::default()
        },
        &mut rng,
    );
    let before = HitsNDiffs::default().rank(&ds.responses).unwrap();

    let dir = std::env::temp_dir().join("hnd_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.json");
    DatasetFile::from_matrix(
        "roundtrip",
        &ds.responses,
        Some(ds.abilities.clone()),
        Some(ds.correct_options.clone()),
    )
    .save(&path)
    .unwrap();

    let loaded = DatasetFile::load(&path).unwrap();
    let matrix = loaded.to_matrix().unwrap();
    assert_eq!(matrix, ds.responses);
    let after = HitsNDiffs::default().rank(&matrix).unwrap();
    assert_eq!(before.order_best_to_worst(), after.order_best_to_worst());

    // Ground truth survives the roundtrip and still drives the baselines.
    let abilities = loaded.abilities.expect("stored abilities");
    let correct = loaded.correct_options.expect("stored answers");
    let ta = TrueAnswer::new(correct).rank(&matrix).unwrap();
    assert!(spearman(&ta.scores, &abilities) > 0.5);
    std::fs::remove_file(&path).ok();
}

#[test]
fn facade_prelude_covers_the_basic_workflow() {
    // The README snippet, minus the doc-test: build → rank → metric.
    let responses = ResponseMatrix::from_choices(
        2,
        &[2, 2],
        &[
            &[Some(1), Some(1)],
            &[Some(1), Some(0)],
            &[Some(0), Some(0)],
        ],
    )
    .unwrap();
    let ranking = HitsNDiffs::default().rank(&responses).unwrap();
    assert_eq!(ranking.len(), 3);
    let rho = spearman(&ranking.scores, &[2.0, 1.0, 0.0]);
    assert!(rho.abs() > 0.99, "3-user staircase is unambiguous: {rho}");
}

#[test]
fn disconnected_inputs_are_detected_not_crashed() {
    // Two user groups with disjoint options: methods still return scores,
    // and the connectivity report explains why the ranking is unreliable.
    let responses = ResponseMatrix::from_choices(
        2,
        &[2, 2],
        &[
            &[Some(0), None],
            &[Some(0), None],
            &[None, Some(1)],
            &[None, Some(1)],
        ],
    )
    .unwrap();
    let report = responses.connectivity();
    assert_eq!(report.components, 2);
    assert!(!report.is_fully_connected());
    let ranking = HitsNDiffs::default().rank(&responses).unwrap();
    assert_eq!(ranking.len(), 4);
    assert!(ranking.scores.iter().all(|s| s.is_finite()));
}

#[test]
fn real_world_stand_ins_integrate_with_all_rankers() {
    use hitsndiffs::datasets::real_world_datasets;
    let datasets = real_world_datasets(0);
    assert_eq!(datasets.len(), 6);
    let ds = &datasets[2]; // IT: the smallest
    let hnd = HitsNDiffs::default().rank(&ds.data.responses).unwrap();
    let ta = TrueAnswer::new(ds.data.correct_options.clone())
        .rank(&ds.data.responses)
        .unwrap();
    assert_eq!(hnd.len(), ds.spec.users);
    assert_eq!(ta.len(), ds.spec.users);
}
