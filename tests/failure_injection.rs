//! Failure injection: adversarial and degenerate inputs must produce
//! errors or finite, well-defined results — never panics or NaNs.

use hitsndiffs::c1p::{AbhDirect, AbhPower};
use hitsndiffs::core::{HndArnoldi, HndDeflation, HndDirect, SpectralDiagnostics};
use hitsndiffs::models::{Hits, Investment, MajorityVote, PooledInvestment, TruthFinder};
use hitsndiffs::prelude::*;
use hitsndiffs::response::{AbilityRanker, ResponseMatrixBuilder};

fn all_rankers() -> Vec<Box<dyn AbilityRanker>> {
    vec![
        Box::new(HitsNDiffs::default()),
        Box::new(HndDeflation::default()),
        Box::new(HndDirect::default()),
        Box::new(HndArnoldi::default()),
        Box::new(AbhDirect::default()),
        Box::new(AbhPower::default()),
        Box::new(Hits::default()),
        Box::new(TruthFinder::default()),
        Box::new(Investment::default()),
        Box::new(PooledInvestment::default()),
        Box::new(MajorityVote),
    ]
}

fn assert_finite(name: &str, ranking: &Ranking, m: usize) {
    assert_eq!(ranking.scores.len(), m, "{name}: wrong score count");
    assert!(
        ranking.scores.iter().all(|s| s.is_finite()),
        "{name}: non-finite scores {:?}",
        ranking.scores
    );
}

#[test]
fn unanimous_answers_do_not_crash() {
    // Everyone picks option 0 everywhere: zero signal, total ties.
    let mut b = ResponseMatrixBuilder::homogeneous(8, 6, 3).unwrap();
    for u in 0..8 {
        for i in 0..6 {
            b.set(u, i, Some(0)).unwrap();
        }
    }
    let m = b.build();
    for ranker in all_rankers() {
        match ranker.rank(&m) {
            Ok(r) => assert_finite(ranker.name(), &r, 8),
            Err(e) => panic!("{}: {e}", ranker.name()),
        }
    }
}

#[test]
fn single_item_matrix() {
    let m =
        ResponseMatrix::from_choices(1, &[4], &[&[Some(0)], &[Some(1)], &[Some(2)], &[Some(1)]])
            .unwrap();
    for ranker in all_rankers() {
        if let Ok(r) = ranker.rank(&m) {
            assert_finite(ranker.name(), &r, 4);
        }
    }
}

#[test]
fn two_users_disagreeing_everywhere() {
    let m = ResponseMatrix::from_choices(
        5,
        &[2; 5],
        &[
            &[Some(0), Some(0), Some(0), Some(0), Some(0)],
            &[Some(1), Some(1), Some(1), Some(1), Some(1)],
        ],
    )
    .unwrap();
    for ranker in all_rankers() {
        if let Ok(r) = ranker.rank(&m) {
            assert_finite(ranker.name(), &r, 2);
        }
    }
}

#[test]
fn mostly_empty_matrix() {
    // 10 users, 10 items, only three answers total.
    let mut b = ResponseMatrixBuilder::homogeneous(10, 10, 3).unwrap();
    b.set(0, 0, Some(1)).unwrap();
    b.set(1, 0, Some(1)).unwrap();
    b.set(2, 5, Some(2)).unwrap();
    let m = b.build();
    assert!(!m.connectivity().is_fully_connected());
    for ranker in all_rankers() {
        if let Ok(r) = ranker.rank(&m) {
            assert_finite(ranker.name(), &r, 10);
        }
    }
}

#[test]
fn adversarial_block_structure() {
    // Two internally consistent factions answering in strict opposition —
    // the classic case where "consensus" heuristics pick a side.
    let rows: Vec<Vec<Option<u16>>> = (0..12)
        .map(|u| (0..9).map(|_| Some(if u < 6 { 0u16 } else { 1 })).collect())
        .collect();
    let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
    let m = ResponseMatrix::from_choices(9, &[2; 9], &refs).unwrap();
    for ranker in all_rankers() {
        if let Ok(r) = ranker.rank(&m) {
            assert_finite(ranker.name(), &r, 12);
        }
    }
    // Diagnostics must flag the tight spectral structure rather than panic.
    let diag = SpectralDiagnostics::compute(&m).expect("diagnostics run");
    assert!(diag.lambda1 <= 1.0 + 1e-9);
}

#[test]
fn duplicate_users_get_equal_scores() {
    // Users 1 and 2 are byte-identical; symmetric methods must give them
    // (numerically) indistinguishable scores.
    let m = ResponseMatrix::from_choices(
        4,
        &[3; 4],
        &[
            &[Some(0), Some(0), Some(0), Some(1)],
            &[Some(0), Some(1), Some(2), Some(1)],
            &[Some(0), Some(1), Some(2), Some(1)],
            &[Some(2), Some(2), Some(1), Some(0)],
        ],
    )
    .unwrap();
    let r = HitsNDiffs::default().rank(&m).unwrap();
    assert!(
        (r.scores[1] - r.scores[2]).abs() < 1e-6,
        "identical users diverged: {:?}",
        r.scores
    );
}

#[test]
fn k_equals_one_items_are_rejected_at_construction() {
    assert!(ResponseMatrix::from_choices(1, &[0], &[&[None]]).is_err());
    assert!(ResponseMatrixBuilder::new(2, 2, &[2, 0]).is_err());
}
