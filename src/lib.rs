#![warn(missing_docs)]

//! # hitsndiffs — facade crate
//!
//! A production-quality Rust reproduction of *"HITSnDIFFs: From Truth
//! Discovery to Ability Discovery by Recovering Matrices with the
//! Consecutive Ones Property"* (Chen, Mitra, Ravi, Gatterbauer — ICDE 2024).
//!
//! This crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — the HITSnDIFFS family (`HND-power`, `HND-deflation`,
//!   `HND-direct`, AvgHITS) and the decile-entropy symmetry breaker,
//! * [`c1p`] — PQ-trees (Booth–Lueker), ABH spectral seriation, C1P checks,
//! * [`irt`] — Item Response Theory models, generators and the GRM
//!   MML-EM estimator,
//! * [`models`] — truth-discovery baselines (HITS, TruthFinder, Investment,
//!   PooledInvestment, majority vote, true-answer),
//! * [`response`] — the response-matrix domain model,
//! * [`eval`] — ranking metrics (Spearman, Kendall, displacement),
//! * [`datasets`] — simulated stand-ins for the paper's real-world datasets,
//! * [`service`] — the incremental ranking engine (versioned response
//!   deltas, warm-start caching, session management),
//! * [`store`] — the durable session tier: per-session append-only WALs
//!   (CRC-framed, group-commit fsync batching) plus compact binary
//!   snapshots; crash recovery is snapshot + WAL-tail replay,
//! * [`plan`] — the self-calibrating kernel-cost catalog and cost-model
//!   planner that picks backends, lane formats, and rebuild points from
//!   per-host measurements,
//! * [`shard`] — sharded spectral execution (user-range matrix shards
//!   with composable kernels for huge sessions),
//! * [`telemetry`] — the observability layer: flight-recorder trace rings,
//!   log-bucketed latency histograms (p50/p90/p99/p999), and the unified
//!   [`telemetry::MetricsSnapshot`] registry,
//! * [`linalg`] — the from-scratch numerical substrate.
//!
//! ## Quickstart
//!
//! ```
//! use hitsndiffs::prelude::*;
//!
//! // Figure 1 of the paper: 4 users answer 3 items with 3 options each.
//! // Options are encoded 0 = A, 1 = B, 2 = C.
//! let responses = ResponseMatrix::from_choices(
//!     3,                                  // items
//!     &[3, 3, 3],                         // options per item
//!     &[
//!         &[Some(0), Some(0), Some(0)],   // user 1: A A A
//!         &[Some(0), Some(0), Some(2)],   // user 2: A A C
//!         &[Some(0), Some(1), Some(2)],   // user 3: A B C
//!         &[Some(1), Some(2), Some(2)],   // user 4: B C C
//!     ],
//! )
//! .unwrap();
//!
//! let ranking = HitsNDiffs::default().rank(&responses).unwrap();
//! // The recovered order is 1,2,3,4 or its reverse (C1P symmetry).
//! let order = ranking.order_best_to_worst();
//! assert!(order == vec![0, 1, 2, 3] || order == vec![3, 2, 1, 0]);
//! ```

pub use hnd_c1p as c1p;
pub use hnd_core as core;
pub use hnd_datasets as datasets;
pub use hnd_eval as eval;
pub use hnd_irt as irt;
pub use hnd_linalg as linalg;
pub use hnd_models as models;
pub use hnd_plan as plan;
pub use hnd_response as response;
pub use hnd_service as service;
pub use hnd_shard as shard;
pub use hnd_store as store;
pub use hnd_telemetry as telemetry;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use hnd_core::{AbilityRanker, HitsNDiffs, Ranking};
    pub use hnd_eval::spearman;
    pub use hnd_response::ResponseMatrix;
}
