//! C1P predicates and oracles (Definitions 3–4 of the paper).
//!
//! * [`is_p_matrix`] — every column's ones are consecutive.
//! * [`pre_p_ordering`] — PQ-tree-based row ordering (the BL algorithm).
//! * [`brute_force_pre_p`] — exhaustive oracle for small matrices, used by
//!   the property tests to validate the PQ-tree.

use crate::pq_tree::PqTree;
use hnd_linalg::CsrMatrix;
use hnd_response::ResponseMatrix;

/// For each column of a binary matrix, the set of rows holding a 1.
pub fn column_row_sets(c: &CsrMatrix) -> Vec<Vec<usize>> {
    let mut sets = vec![Vec::new(); c.cols()];
    for row in 0..c.rows() {
        for (col, v) in c.row_iter(row) {
            if v != 0.0 {
                sets[col].push(row);
            }
        }
    }
    sets
}

/// `true` if the binary matrix is a *P-matrix*: in each column all ones are
/// consecutive (Definition 3).
pub fn is_p_matrix(c: &CsrMatrix) -> bool {
    for set in column_row_sets(c) {
        if set.len() <= 1 {
            continue;
        }
        // Row indices are produced in increasing order.
        let (min, max) = (set[0], *set.last().expect("non-empty"));
        if max - min + 1 != set.len() {
            return false;
        }
    }
    true
}

/// Finds a row permutation turning the matrix into a P-matrix using the
/// PQ-tree (Booth–Lueker), or `None` if the matrix is not pre-P.
///
/// Returned `perm` is "new position → old row": applying
/// [`CsrMatrix::permute_rows`] with it yields a P-matrix.
pub fn pre_p_ordering(c: &CsrMatrix) -> Option<Vec<usize>> {
    if c.rows() == 0 {
        return Some(Vec::new());
    }
    let mut tree = PqTree::new(c.rows());
    let mut sets = column_row_sets(c);
    // Reducing larger sets first tends to fail fast on non-pre-P inputs.
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    for set in &sets {
        if set.len() >= 2 && tree.reduce(set).is_err() {
            return None;
        }
    }
    let order = tree.frontier();
    debug_assert!(is_p_matrix(&c.permute_rows(&order)));
    Some(order)
}

/// Number of distinct C1P row orderings of a pre-P matrix (including
/// reversals), or `None` if the matrix is not pre-P. A *unique* ordering in
/// the sense of Theorems 1–2 of the paper corresponds to a count of 2
/// (an ordering and its reversal).
pub fn count_pre_p_orderings(c: &CsrMatrix) -> Option<f64> {
    if c.rows() == 0 {
        return Some(1.0);
    }
    let mut tree = PqTree::new(c.rows());
    for set in column_row_sets(c) {
        if set.len() >= 2 && tree.reduce(&set).is_err() {
            return None;
        }
    }
    Some(tree.count_orderings())
}

/// Exhaustive pre-P oracle: tries every row permutation. Only for tests.
///
/// # Panics
/// Panics for matrices with more than 10 rows (10! ≈ 3.6M permutations).
pub fn brute_force_pre_p(c: &CsrMatrix) -> Option<Vec<usize>> {
    let m = c.rows();
    assert!(m <= 10, "brute force limited to 10 rows");
    let mut perm: Vec<usize> = (0..m).collect();
    // Heap's algorithm, iterative.
    if is_p_matrix(&c.permute_rows(&perm)) {
        return Some(perm);
    }
    let mut counters = vec![0usize; m];
    let mut i = 0;
    while i < m {
        if counters[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(counters[i], i);
            }
            if is_p_matrix(&c.permute_rows(&perm)) {
                return Some(perm);
            }
            counters[i] += 1;
            i = 0;
        } else {
            counters[i] = 0;
            i += 1;
        }
    }
    None
}

/// Tests whether a response matrix is *consistent* (Definition 2): by
/// Observation 1 this holds iff its one-hot binary matrix is pre-P. Returns
/// a witnessing user ordering (best-to-worst or worst-to-best — C1P cannot
/// distinguish the two) or `None`.
pub fn consistent_user_ordering(matrix: &ResponseMatrix) -> Option<Vec<usize>> {
    pre_p_ordering(&matrix.to_binary_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(rows: &[&[u8]]) -> CsrMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        CsrMatrix::from_triplets(
            r,
            c,
            rows.iter().enumerate().flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(move |(j, _)| (i, j, 1.0))
            }),
        )
    }

    #[test]
    fn p_matrix_detection() {
        // Figure 1b's C is a P-matrix in the shown row order.
        let p = csr(&[
            &[1, 0, 0, 1, 0, 0, 1, 0, 0],
            &[1, 0, 0, 1, 0, 0, 0, 0, 1],
            &[1, 0, 0, 0, 1, 0, 0, 0, 1],
            &[0, 1, 0, 0, 0, 1, 0, 0, 1],
        ]);
        assert!(is_p_matrix(&p));
        let not_p = csr(&[&[1, 0], &[0, 1], &[1, 0]]);
        assert!(!is_p_matrix(&not_p));
    }

    #[test]
    fn pre_p_ordering_recovers_permuted_p_matrix() {
        let p = csr(&[&[1, 1, 0, 0], &[0, 1, 1, 0], &[0, 0, 1, 1], &[0, 0, 0, 1]]);
        // Shuffle rows, then recover.
        let shuffled = p.permute_rows(&[2, 0, 3, 1]);
        assert!(!is_p_matrix(&shuffled));
        let order = pre_p_ordering(&shuffled).expect("matrix is pre-P");
        assert!(is_p_matrix(&shuffled.permute_rows(&order)));
    }

    #[test]
    fn non_pre_p_rejected_by_both() {
        // Tucker's forbidden configuration M_I(1): the vertex-edge incidence
        // of a triangle is not pre-P.
        let t = csr(&[&[1, 1, 0], &[1, 0, 1], &[0, 1, 1]]);
        assert!(pre_p_ordering(&t).is_none());
        assert!(brute_force_pre_p(&t).is_none());
    }

    #[test]
    fn brute_force_agrees_on_small_examples() {
        let yes = csr(&[&[1, 0], &[1, 1], &[0, 1]]);
        assert!(brute_force_pre_p(&yes).is_some());
        assert!(pre_p_ordering(&yes).is_some());
    }

    #[test]
    fn unique_ordering_counted_as_two() {
        // Staircase: unique C1P order up to reversal.
        let p = csr(&[&[1, 1, 0, 0], &[0, 1, 1, 0], &[0, 0, 1, 1]]);
        assert_eq!(count_pre_p_orderings(&p), Some(2.0));
        let t = csr(&[&[1, 1, 0], &[1, 0, 1], &[0, 1, 1]]);
        assert_eq!(count_pre_p_orderings(&t), None);
    }

    #[test]
    fn consistent_responses_detected() {
        // Figure 1's responses are consistent: users already sorted.
        let r = ResponseMatrix::from_choices(
            3,
            &[3, 3, 3],
            &[
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(2)],
                &[Some(0), Some(1), Some(2)],
                &[Some(1), Some(2), Some(2)],
            ],
        )
        .unwrap();
        let order = consistent_user_ordering(&r).expect("Figure 1 is consistent");
        assert!(order == vec![0, 1, 2, 3] || order == vec![3, 2, 1, 0]);
    }

    #[test]
    fn empty_matrix_ordering() {
        let c = CsrMatrix::from_triplets(0, 0, std::iter::empty());
        assert_eq!(pre_p_ordering(&c), Some(vec![]));
    }
}
