//! ABH spectral seriation (Atkins, Boman, Hendrickson \[4\]).
//!
//! ABH ranks users by the *Fiedler vector* — the eigenvector of the second
//! smallest eigenvalue of the Laplacian `L = D − CCᵀ` of the user
//! co-answering graph. On pre-P inputs sorting by the Fiedler vector
//! recovers the C1P ordering; away from the ideal case it degrades (and, as
//! Section III-E/IV-D of the paper shows, degrades faster than HND).
//!
//! Two implementations, matching the paper's Section IV-A:
//! * [`AbhDirect`] — Lanczos on the (deflated) Laplacian, the analogue of
//!   the paper's SciPy-based "ABH-direct";
//! * [`AbhPower`] — the paper's novel Algorithm 2: power iteration on
//!   `βI_{m−1} − M` with `M = S L T`, entirely matrix-free.
//!
//! Both sit behind the workspace-wide
//! [`SpectralSolver`](hnd_core::SpectralSolver) trait with the shared
//! [`SolverOpts`] — the same tolerance/budget/seed/orientation knobs as
//! the HND family, so defaults cannot drift per struct (`tol` is the
//! power-family L2 change for [`AbhPower`], the Krylov residual for
//! [`AbhDirect`], exactly as for `HitsNDiffs` vs `HndDirect`). The only
//! ABH-specific knob left is [`AbhPower::beta`], the spectral shift
//! strategy of Algorithm 2.

use hnd_core::{SolveOutcome, SolveState, SolverOpts, SpectralSolver};
use hnd_linalg::op::LinearOp;
use hnd_linalg::power::power_iteration;
use hnd_linalg::{lanczos_extreme, vector, Which};
use hnd_response::{
    orient_by_decile_entropy, AbilityRanker, KernelWorkspace, RankError, Ranking, ResponseMatrix,
    ResponseOps,
};
use std::cell::RefCell;

/// How `β` is chosen for the spectral shift `βI − M` of [`AbhPower`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BetaStrategy {
    /// The paper's practical choice: the largest entry of the diagonal
    /// matrix `D` of `CCᵀ` (Appendix E-B).
    MaxDegree,
    /// `coefficient × MaxDegree` — used by the Figure 14a sweep showing the
    /// iteration count growing linearly with `β`.
    Coefficient(f64),
}

impl BetaStrategy {
    fn resolve(&self, d: &[f64]) -> f64 {
        let base = d.iter().fold(0.0f64, |a, &b| a.max(b)).max(1.0);
        match self {
            BetaStrategy::MaxDegree => base,
            BetaStrategy::Coefficient(c) => c * base,
        }
    }
}

/// `ABH-power`: Algorithm 2 of the paper.
#[derive(Debug, Clone)]
pub struct AbhPower {
    /// Shared solver options (`tol`/`max_iter` govern the power iteration,
    /// paper tolerance 1e-5; `orient` applies Section III-D).
    pub opts: SolverOpts,
    /// Shift strategy (default: the paper's max-degree rule).
    pub beta: BetaStrategy,
}

impl Default for AbhPower {
    fn default() -> Self {
        AbhPower {
            opts: SolverOpts::default(),
            beta: BetaStrategy::MaxDegree,
        }
    }
}

/// The `(βI − M)` operator with `M = S L T`, applied to `sdiff ∈ R^{m−1}`
/// without materializing anything: `s = T·sdiff` (cumulative sums),
/// `Ls = D s − C Cᵀ s`, `M sdiff = S (L s)` (adjacent differences).
struct ShiftedMOp<'a> {
    ops: &'a ResponseOps,
    d: &'a [f64],
    beta: f64,
    scratch: RefCell<KernelWorkspace>,
}

impl<'a> ShiftedMOp<'a> {
    fn new(ops: &'a ResponseOps, d: &'a [f64], beta: f64) -> Self {
        ShiftedMOp {
            ops,
            d,
            beta,
            scratch: RefCell::new(KernelWorkspace::for_ops(ops)),
        }
    }
}

impl LinearOp for ShiftedMOp<'_> {
    fn dim(&self) -> usize {
        self.ops.n_users() - 1
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let m = self.ops.n_users();
        let ws = &mut *self.scratch.borrow_mut();
        vector::cumsum_from_diffs(x, &mut ws.s);
        self.ops
            .laplacian_apply(self.d, &ws.s, &mut ws.w, &mut ws.s2);
        for i in 0..m - 1 {
            y[i] = self.beta * x[i] - (ws.s2[i + 1] - ws.s2[i]);
        }
    }
}

impl AbhPower {
    /// Builds the solver with the given shared options.
    pub fn with_opts(opts: SolverOpts) -> Self {
        AbhPower {
            opts,
            ..Default::default()
        }
    }

    /// Returns the dominant eigenvector of `βI − M` (the user-difference
    /// vector) plus the iteration count — exposed for the stability study
    /// (Figure 6a) and the iteration-count analysis (Figure 14).
    pub fn diff_eigenvector(
        &self,
        matrix: &ResponseMatrix,
    ) -> Result<(Vec<f64>, usize), RankError> {
        let m = matrix.n_users();
        if m < 2 {
            return Err(RankError::InvalidInput(
                "ABH-power needs at least 2 users".into(),
            ));
        }
        let ops = ResponseOps::new(matrix);
        self.diff_eigenvector_on(&ops, None)
    }

    /// The iteration core on a caller-prepared kernel context.
    fn diff_eigenvector_on(
        &self,
        ops: &ResponseOps,
        warm_start: Option<&[f64]>,
    ) -> Result<(Vec<f64>, usize), RankError> {
        let m = ops.n_users();
        let d = ops.cct_row_sums();
        let beta = self.beta.resolve(&d);
        let op = ShiftedMOp::new(ops, &d, beta);
        let x0 = match warm_start {
            Some(ws) => ws.to_vec(),
            None => self.opts.start(m - 1),
        };
        let out = power_iteration(&op, &x0, &self.opts.power());
        Ok((out.vector, out.iterations))
    }
}

impl AbilityRanker for AbhPower {
    fn name(&self) -> &'static str {
        "ABH-power"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        self.solve(matrix).map(|out| out.ranking)
    }
}

impl SpectralSolver for AbhPower {
    fn opts(&self) -> &SolverOpts {
        &self.opts
    }

    fn solve_prepared(
        &self,
        matrix: &ResponseMatrix,
        ops: &ResponseOps,
        state: Option<&SolveState>,
    ) -> Result<SolveOutcome, RankError> {
        let m = matrix.n_users();
        if m == 1 {
            return Ok(SolveOutcome::exact(
                Ranking::from_scores(vec![0.0]),
                SolveState::from_scores(vec![0.0]),
            ));
        }
        if m < 2 || ops.n_users() != m {
            return Err(RankError::InvalidInput(format!(
                "ABH-power: kernel context covers {} users, matrix has {m}",
                ops.n_users()
            )));
        }
        // Warm start: previous user scores → difference coordinates (the
        // state representation is solver-agnostic; see SolveState).
        let warm: Option<Vec<f64>> = state.and_then(|s| s.warm_diffs(m));
        let (sdiff, iterations) = self.diff_eigenvector_on(ops, warm.as_deref())?;
        let mut scores = Vec::with_capacity(m);
        vector::cumsum_from_diffs(&sdiff, &mut scores);
        let solve_state = SolveState::from_scores(scores.clone());
        let mut ranking = Ranking {
            scores,
            iterations,
            converged: true,
        };
        if self.opts.orient {
            orient_by_decile_entropy(matrix, &mut ranking);
        }
        Ok(SolveOutcome::exact(ranking, solve_state))
    }

    fn as_ranker(&self) -> &(dyn AbilityRanker + Sync) {
        self
    }
}

/// `ABH-direct`: Fiedler vector via Lanczos on the deflated Laplacian.
#[derive(Debug, Clone)]
pub struct AbhDirect {
    /// Shared solver options (`tol`/`max_subspace` govern the Lanczos
    /// sweep; like the other Krylov solvers, the default residual
    /// tolerance is the tighter 1e-8, not the power family's 1e-5).
    pub opts: SolverOpts,
}

impl Default for AbhDirect {
    fn default() -> Self {
        AbhDirect {
            opts: SolverOpts {
                tol: 1e-8,
                ..Default::default()
            },
        }
    }
}

struct LaplacianOp<'a> {
    ops: &'a ResponseOps,
    d: &'a [f64],
    scratch: RefCell<KernelWorkspace>,
}

impl<'a> LaplacianOp<'a> {
    fn new(ops: &'a ResponseOps, d: &'a [f64]) -> Self {
        LaplacianOp {
            ops,
            d,
            scratch: RefCell::new(KernelWorkspace::for_ops(ops)),
        }
    }
}

impl LinearOp for LaplacianOp<'_> {
    fn dim(&self) -> usize {
        self.ops.n_users()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let ws = &mut *self.scratch.borrow_mut();
        self.ops.laplacian_apply(self.d, x, &mut ws.w, y);
    }
}

impl AbhDirect {
    /// Builds the solver with the given shared options.
    pub fn with_opts(opts: SolverOpts) -> Self {
        AbhDirect { opts }
    }

    /// Computes the Fiedler vector of `L = D − CCᵀ`.
    pub fn fiedler_vector(&self, matrix: &ResponseMatrix) -> Result<(Vec<f64>, usize), RankError> {
        let m = matrix.n_users();
        if m < 2 {
            return Err(RankError::InvalidInput(
                "ABH-direct needs at least 2 users".into(),
            ));
        }
        let ops = ResponseOps::new(matrix);
        self.fiedler_vector_on(&ops, None)
    }

    /// The Lanczos core on a caller-prepared kernel context.
    fn fiedler_vector_on(
        &self,
        ops: &ResponseOps,
        warm_start: Option<&[f64]>,
    ) -> Result<(Vec<f64>, usize), RankError> {
        let m = ops.n_users();
        let d = ops.cct_row_sums();
        let lap = LaplacianOp::new(ops, &d);
        // Work on the spectrally shifted βI − L with the all-ones kernel of
        // L deflated: on e⊥ its largest eigenpair is (β − λ₂, Fiedler),
        // while the deflated kernel direction sits at 0 — far from the top,
        // so floating-point leakage into span(e) cannot attract the
        // iteration (hunting the *smallest* pair of the deflated L would:
        // the kernel's 0 undercuts λ₂). β = 2·max(D) is Gershgorin-safe.
        let beta = 2.0 * d.iter().fold(0.0f64, |a, &b| a.max(b)).max(1.0);
        let shifted = hnd_linalg::ShiftedOp::new(&lap, beta);
        let ones = vec![1.0; m];
        let deflated = hnd_linalg::DeflatedOp::new(&shifted, vec![ones]);
        let mut x0 = match warm_start {
            Some(ws) => ws.to_vec(),
            None => self.opts.start(m),
        };
        let mean = vector::mean(&x0);
        for v in &mut x0 {
            *v -= mean;
        }
        let pairs = lanczos_extreme(&deflated, 1, Which::Largest, &x0, &self.opts.lanczos())
            .map_err(|e| RankError::Numerical(e.to_string()))?;
        let pair = pairs.into_iter().next().expect("k=1 requested");
        Ok((pair.vector, 0))
    }
}

impl AbilityRanker for AbhDirect {
    fn name(&self) -> &'static str {
        "ABH"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        self.solve(matrix).map(|out| out.ranking)
    }
}

impl SpectralSolver for AbhDirect {
    fn opts(&self) -> &SolverOpts {
        &self.opts
    }

    fn solve_prepared(
        &self,
        matrix: &ResponseMatrix,
        ops: &ResponseOps,
        state: Option<&SolveState>,
    ) -> Result<SolveOutcome, RankError> {
        let m = matrix.n_users();
        if m == 1 {
            return Ok(SolveOutcome::exact(
                Ranking::from_scores(vec![0.0]),
                SolveState::from_scores(vec![0.0]),
            ));
        }
        if m < 2 || ops.n_users() != m {
            return Err(RankError::InvalidInput(format!(
                "ABH-direct: kernel context covers {} users, matrix has {m}",
                ops.n_users()
            )));
        }
        // A previous score vector (centered inside the core) is a valid —
        // and near-converged — Lanczos starting vector.
        let warm = state.and_then(|s| s.warm_scores(m));
        let (fiedler, iterations) = self.fiedler_vector_on(ops, warm)?;
        let solve_state = SolveState::from_scores(fiedler.clone());
        let mut ranking = Ranking {
            scores: fiedler,
            iterations,
            converged: true,
        };
        if self.opts.orient {
            orient_by_decile_entropy(matrix, &mut ranking);
        }
        Ok(SolveOutcome::exact(ranking, solve_state))
    }

    fn as_ranker(&self) -> &(dyn AbilityRanker + Sync) {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::is_p_matrix;

    fn unoriented() -> SolverOpts {
        SolverOpts {
            orient: false,
            ..Default::default()
        }
    }

    /// The all-cuts staircase: `m` users, `m−1` binary items; item `i`
    /// splits users at position `i` (users `0..=i` pick option 0, the rest
    /// option 1). Every adjacent user pair is separated by some item, so the
    /// C1P ordering is *unique* up to reversal — exactly the hypothesis of
    /// Theorems 1–2. Constant row sums hold by construction.
    fn staircase(m: usize) -> ResponseMatrix {
        let n = m - 1;
        let rows: Vec<Vec<Option<u16>>> = (0..m)
            .map(|j| (0..n).map(|i| Some(if j <= i { 0 } else { 1 })).collect())
            .collect();
        let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
        ResponseMatrix::from_choices(n, &vec![2u16; n], &refs).unwrap()
    }

    fn order_is_identity_or_reverse(order: &[usize]) -> bool {
        let m = order.len();
        order.iter().enumerate().all(|(i, &u)| u == i)
            || order.iter().enumerate().all(|(i, &u)| u == m - 1 - i)
    }

    #[test]
    fn staircase_is_pre_p() {
        let r = staircase(12);
        assert!(is_p_matrix(&r.to_binary_csr()));
    }

    #[test]
    fn abh_power_recovers_c1p_order() {
        let r = staircase(12);
        // Shuffle users, then expect recovery up to reversal.
        let perm: Vec<usize> = vec![5, 2, 9, 0, 11, 3, 7, 1, 10, 4, 8, 6];
        let shuffled = r.permute_users(&perm);
        let ranker = AbhPower::with_opts(unoriented());
        let ranking = ranker.rank(&shuffled).unwrap();
        let order = ranking.order_best_to_worst();
        // order[i] = index in `shuffled`; map back to original user ids.
        let recovered: Vec<usize> = order.iter().map(|&i| perm[i]).collect();
        assert!(
            order_is_identity_or_reverse(&recovered),
            "recovered {recovered:?}"
        );
    }

    #[test]
    fn abh_direct_recovers_c1p_order() {
        let r = staircase(12);
        let perm: Vec<usize> = vec![5, 2, 9, 0, 11, 3, 7, 1, 10, 4, 8, 6];
        let shuffled = r.permute_users(&perm);
        let ranker = AbhDirect::with_opts(SolverOpts {
            orient: false,
            ..AbhDirect::default().opts
        });
        let ranking = ranker.rank(&shuffled).unwrap();
        let recovered: Vec<usize> = ranking
            .order_best_to_worst()
            .iter()
            .map(|&i| perm[i])
            .collect();
        assert!(
            order_is_identity_or_reverse(&recovered),
            "recovered {recovered:?}"
        );
    }

    #[test]
    fn power_and_direct_agree_on_ordering() {
        let r = staircase(16);
        let p = AbhPower::default().rank(&r).unwrap();
        let d = AbhDirect::default().rank(&r).unwrap();
        let po = p.order_best_to_worst();
        let dor = d.order_best_to_worst();
        let rev: Vec<usize> = dor.iter().rev().copied().collect();
        assert!(po == dor || po == rev, "{po:?} vs {dor:?}");
    }

    #[test]
    fn beta_strategy_scales() {
        assert_eq!(BetaStrategy::MaxDegree.resolve(&[3.0, 7.0]), 7.0);
        assert_eq!(BetaStrategy::Coefficient(2.0).resolve(&[3.0, 7.0]), 14.0);
        // Guard against all-zero degrees.
        assert_eq!(BetaStrategy::MaxDegree.resolve(&[0.0]), 1.0);
    }

    #[test]
    fn larger_beta_needs_more_iterations_fig14a() {
        let r = staircase(30);
        let base = AbhPower {
            beta: BetaStrategy::MaxDegree,
            opts: unoriented(),
        };
        let big = AbhPower {
            beta: BetaStrategy::Coefficient(8.0),
            opts: unoriented(),
        };
        let (_, it_base) = base.diff_eigenvector(&r).unwrap();
        let (_, it_big) = big.diff_eigenvector(&r).unwrap();
        assert!(
            it_big > it_base,
            "β×8 should need more iterations ({it_big} vs {it_base})"
        );
    }

    #[test]
    fn single_user_is_trivial() {
        let r = ResponseMatrix::from_choices(1, &[2], &[&[Some(0)]]).unwrap();
        let ranking = AbhPower::default().rank(&r).unwrap();
        assert_eq!(ranking.scores.len(), 1);
        let ranking = AbhDirect::default().rank(&r).unwrap();
        assert_eq!(ranking.scores.len(), 1);
    }

    #[test]
    fn spectral_solver_trait_paths_agree_with_rank() {
        // The trait fold must not change behaviour: solve() == rank(), and
        // the prepared/warm paths stay consistent.
        let r = staircase(14);
        for solver in [
            Box::new(AbhPower::with_opts(unoriented())) as Box<dyn SpectralSolver>,
            Box::new(AbhDirect::with_opts(SolverOpts {
                orient: false,
                ..AbhDirect::default().opts
            })),
        ] {
            let cold = solver.solve(&r).unwrap();
            let direct = solver.as_ranker().rank(&r).unwrap();
            assert_eq!(cold.ranking.scores, direct.scores);
            assert_eq!(cold.state.n_users(), 14);
            // Warm restart from the converged state must not diverge.
            let warm = solver.solve_warm(&r, &cold.state).unwrap();
            let co = cold.ranking.order_best_to_worst();
            let wo = warm.ranking.order_best_to_worst();
            let rev: Vec<usize> = co.iter().rev().copied().collect();
            assert!(wo == co || wo == rev);
            assert!(warm.ranking.iterations <= cold.ranking.iterations);
        }
    }

    #[test]
    fn warm_start_cuts_abh_power_iterations() {
        let r = staircase(24);
        let solver = AbhPower::with_opts(unoriented());
        let cold = solver.solve(&r).unwrap();
        let warm = solver.solve_warm(&r, &cold.state).unwrap();
        assert!(
            warm.ranking.iterations < cold.ranking.iterations,
            "warm {} vs cold {}",
            warm.ranking.iterations,
            cold.ranking.iterations
        );
    }
}

#[cfg(test)]
mod fiedler_regression {
    use super::*;
    use hnd_linalg::jacobi::symmetric_eig;
    use hnd_linalg::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Regression for a real bug: hunting the *smallest* eigenpair of the
    /// deflated Laplacian lets floating-point leakage into the deflated
    /// kernel (eigenvalue 0 < λ₂) capture the iteration, returning a vector
    /// orthogonal to the true Fiedler vector. The shifted-largest
    /// formulation must match a dense reference eigendecomposition.
    #[test]
    fn fiedler_matches_dense_reference_on_noisy_binary_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = hnd_irt::presets::american_experience_items();
        let abilities = hnd_irt::presets::standard_normal_abilities(60, &mut rng);
        let ds = hnd_irt::generate_binary(&items, &abilities, &mut rng);

        // Dense L = D − CCᵀ and its exact Fiedler vector.
        let ops = ResponseOps::new(&ds.responses);
        let c = ops.pattern().to_dense();
        let cct = c.matmul(&c.transpose()).unwrap();
        let d = ops.cct_row_sums();
        let m = ds.responses.n_users();
        let mut l = DenseMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let v = if i == j {
                    d[i] - cct.get(i, j)
                } else {
                    -cct.get(i, j)
                };
                l.set(i, j, v);
            }
        }
        let eig = symmetric_eig(&l).unwrap();
        let fiedler_exact = &eig.vectors[m - 2]; // ascending from the back

        let (ours, _) = AbhDirect::default().fiedler_vector(&ds.responses).unwrap();
        let cos = hnd_linalg::vector::dot(&ours, fiedler_exact).abs();
        assert!(cos > 1.0 - 1e-6, "Fiedler mismatch: cos = {cos}");
    }
}
