//! PQ-trees after Booth & Lueker (1976) — the paper's "BL" baseline.
//!
//! A PQ-tree over a ground set `{0, …, m−1}` compactly represents a family
//! of permutations. [`PqTree::reduce`] restricts the family to permutations
//! in which a given subset appears consecutively; reducing once per matrix
//! column therefore decides the consecutive-ones property and produces a
//! valid row ordering (the *frontier*).
//!
//! This implementation applies the full Booth–Lueker template set
//! (L1, P1–P6, Q1–Q3) on an arena of nodes. Unlike the original paper we
//! keep parent pointers on *all* children (Booth–Lueker drop them for
//! interior Q-children to reach their amortized linear bound); this keeps
//! the code simple and verifiable at the cost of the strict `O(m+n+f)`
//! guarantee. As the paper notes (Section III-F), BL is the fastest method
//! *when it applies* but cannot handle non-ideal inputs at all — the
//! spectral methods are the scalable general-purpose path, so asymptotic
//! heroics here buy nothing for the reproduction.

/// Error returned when a reduction is impossible: the represented family of
/// permutations contains none in which the requested set is consecutive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotReducible;

impl std::fmt::Display for NotReducible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "set cannot be made consecutive: matrix is not pre-P")
    }
}

impl std::error::Error for NotReducible {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    /// Leaf holding ground-set element.
    Leaf(usize),
    /// Children may be permuted arbitrarily.
    P,
    /// Children order is fixed up to reversal.
    Q,
}

#[derive(Debug, Clone)]
struct Node {
    kind: Kind,
    children: Vec<usize>,
    parent: Option<usize>,
    /// Dissolved nodes stay in the arena but are never referenced again.
    dead: bool,
}

/// Label assigned to pertinent nodes during a reduction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Empty,
    Full,
    /// A Q-node whose children are ordered empty→full.
    Partial,
}

/// A PQ-tree over the ground set `{0, …, n_elements−1}`.
#[derive(Debug, Clone)]
pub struct PqTree {
    nodes: Vec<Node>,
    root: usize,
    leaf_node: Vec<usize>,
    n_elements: usize,
    poisoned: bool,
}

impl PqTree {
    /// The universal tree: all `n_elements!` permutations.
    ///
    /// # Panics
    /// Panics for an empty ground set.
    pub fn new(n_elements: usize) -> Self {
        assert!(n_elements > 0, "PqTree requires a non-empty ground set");
        let mut nodes = Vec::with_capacity(n_elements + 1);
        let mut leaf_node = Vec::with_capacity(n_elements);
        for e in 0..n_elements {
            leaf_node.push(nodes.len());
            nodes.push(Node {
                kind: Kind::Leaf(e),
                children: Vec::new(),
                parent: None,
                dead: false,
            });
        }
        let root = if n_elements == 1 {
            0
        } else {
            let root = nodes.len();
            nodes.push(Node {
                kind: Kind::P,
                children: (0..n_elements).collect(),
                parent: None,
                dead: false,
            });
            for e in 0..n_elements {
                nodes[e].parent = Some(root);
            }
            root
        };
        PqTree {
            nodes,
            root,
            leaf_node,
            n_elements,
            poisoned: false,
        }
    }

    /// Size of the ground set.
    pub fn n_elements(&self) -> usize {
        self.n_elements
    }

    /// `true` after a failed reduction; the tree is unusable then.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Restricts the tree to permutations where `set` is consecutive.
    ///
    /// # Errors
    /// [`NotReducible`] if no represented permutation keeps `set`
    /// consecutive. The tree is *poisoned* afterwards and every later call
    /// also fails.
    ///
    /// # Panics
    /// Panics if `set` contains out-of-range elements.
    pub fn reduce(&mut self, set: &[usize]) -> Result<(), NotReducible> {
        if self.poisoned {
            return Err(NotReducible);
        }
        let mut in_set = vec![false; self.n_elements];
        let mut s_len = 0usize;
        for &e in set {
            assert!(e < self.n_elements, "element {e} out of range");
            if !in_set[e] {
                in_set[e] = true;
                s_len += 1;
            }
        }
        if s_len <= 1 || s_len == self.n_elements {
            return Ok(()); // trivially consecutive
        }
        match self.reduce_inner(&in_set, s_len) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn reduce_inner(&mut self, in_set: &[bool], s_len: usize) -> Result<(), NotReducible> {
        // --- Phase 1: pertinent-leaf counts along every leaf→root path.
        let mut pert = vec![0usize; self.nodes.len()];
        for (e, &is_in) in in_set.iter().enumerate() {
            if !is_in {
                continue;
            }
            let mut x = self.leaf_node[e];
            loop {
                pert[x] += 1;
                match self.nodes[x].parent {
                    Some(p) => x = p,
                    None => break,
                }
            }
        }
        // Pertinent root: deepest node covering all of S (walk up from any
        // full leaf until the count reaches |S|).
        let mut pertinent_root =
            self.leaf_node[in_set.iter().position(|&b| b).expect("s_len >= 2")];
        while pert[pertinent_root] < s_len {
            pertinent_root = self.nodes[pertinent_root]
                .parent
                .expect("root covers all leaves");
        }

        // --- Phase 2: bottom-up template application.
        // `remaining[x]` = pertinent children of x not yet processed.
        let mut remaining = vec![0usize; self.nodes.len()];
        for x in 0..self.nodes.len() {
            if self.nodes[x].dead || pert[x] == 0 {
                continue;
            }
            if let Some(p) = self.nodes[x].parent {
                if pert[p] > 0 {
                    remaining[p] += 1;
                }
            }
        }
        let mut labels = vec![Label::Empty; self.nodes.len()];
        let mut queue: Vec<usize> = in_set
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(e, _)| self.leaf_node[e])
            .collect();

        while let Some(x) = queue.pop() {
            let is_root = x == pertinent_root;
            self.apply_template(x, is_root, &mut labels)?;
            if is_root {
                return Ok(());
            }
            let p = self.nodes[x].parent.expect("non-root has a parent");
            remaining[p] -= 1;
            if remaining[p] == 0 {
                queue.push(p);
            }
        }
        // Queue drained without reaching the pertinent root: tree corrupt.
        Err(NotReducible)
    }

    // ----- template machinery ------------------------------------------

    fn new_node(
        &mut self,
        kind: Kind,
        children: Vec<usize>,
        labels: &mut Vec<Label>,
        label: Label,
    ) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            kind,
            children,
            parent: None,
            dead: false,
        });
        labels.push(label);
        let kids = self.nodes[idx].children.clone();
        for c in kids {
            self.nodes[c].parent = Some(idx);
        }
        idx
    }

    /// Wraps `children` into a single node: returns the lone child if there
    /// is exactly one, a fresh P-node otherwise, `None` when empty.
    fn wrap_part(
        &mut self,
        children: Vec<usize>,
        labels: &mut Vec<Label>,
        label: Label,
    ) -> Option<usize> {
        match children.len() {
            0 => None,
            1 => Some(children[0]),
            _ => Some(self.new_node(Kind::P, children, labels, label)),
        }
    }

    fn set_children(&mut self, x: usize, children: Vec<usize>) {
        for &c in &children {
            self.nodes[c].parent = Some(x);
        }
        self.nodes[x].children = children;
    }

    /// Splices the children of `child` into `x` at `pos`, dissolving `child`.
    fn splice_into(&mut self, x: usize, pos: usize, child: usize) {
        let grandchildren = std::mem::take(&mut self.nodes[child].children);
        self.nodes[child].dead = true;
        for &g in &grandchildren {
            self.nodes[g].parent = Some(x);
        }
        self.nodes[x].children.splice(pos..=pos, grandchildren);
    }

    /// If `x` ended up with a single child, replace `x` by that child.
    fn normalize_single_child(&mut self, x: usize) {
        if matches!(self.nodes[x].kind, Kind::Leaf(_)) || self.nodes[x].children.len() != 1 {
            return;
        }
        let child = self.nodes[x].children[0];
        // Move the child's payload into x so parents keep their pointers.
        let child_node = std::mem::replace(
            &mut self.nodes[child],
            Node {
                kind: Kind::P,
                children: Vec::new(),
                parent: None,
                dead: true,
            },
        );
        self.nodes[x].kind = child_node.kind;
        self.nodes[x].children = child_node.children;
        if let Kind::Leaf(e) = self.nodes[x].kind {
            self.leaf_node[e] = x;
        }
        let kids = self.nodes[x].children.clone();
        for c in kids {
            self.nodes[c].parent = Some(x);
        }
    }

    fn apply_template(
        &mut self,
        x: usize,
        is_root: bool,
        labels: &mut Vec<Label>,
    ) -> Result<(), NotReducible> {
        debug_assert!(!self.nodes[x].dead, "processing dead node");
        // L1: leaves in the pertinent set.
        if matches!(self.nodes[x].kind, Kind::Leaf(_)) {
            labels[x] = Label::Full;
            return Ok(());
        }

        let children = self.nodes[x].children.clone();
        let mut empty = Vec::new();
        let mut full = Vec::new();
        let mut partial = Vec::new();
        for &c in &children {
            match labels[c] {
                Label::Empty => empty.push(c),
                Label::Full => full.push(c),
                Label::Partial => partial.push(c),
            }
        }

        // P1 / Q1: everything full.
        if partial.is_empty() && empty.is_empty() {
            labels[x] = Label::Full;
            // For the pertinent root nothing else is needed.
            return Ok(());
        }

        match self.nodes[x].kind.clone() {
            Kind::Leaf(_) => unreachable!("handled above"),
            Kind::P => {
                if is_root {
                    self.template_p_root(x, empty, full, partial, labels)
                } else {
                    self.template_p_nonroot(x, empty, full, partial, labels)
                }
            }
            Kind::Q => {
                if is_root {
                    self.template_q_root(x, labels)
                } else {
                    self.template_q_nonroot(x, labels)
                }
            }
        }
    }

    /// Templates P2 / P4 / P6 (P-node as pertinent root).
    fn template_p_root(
        &mut self,
        x: usize,
        empty: Vec<usize>,
        full: Vec<usize>,
        partial: Vec<usize>,
        labels: &mut Vec<Label>,
    ) -> Result<(), NotReducible> {
        match partial.len() {
            0 => {
                // P2: group ≥2 full children under a fresh full P child.
                if full.len() >= 2 {
                    let full_p = self.new_node(Kind::P, full.clone(), labels, Label::Full);
                    let mut kids = empty;
                    kids.push(full_p);
                    self.set_children(x, kids);
                }
                Ok(())
            }
            1 => {
                // P4: hang the full children off the full end of the partial.
                let q = partial[0];
                if let Some(full_part) = self.wrap_part(full, labels, Label::Full) {
                    self.nodes[q].children.push(full_part);
                    self.nodes[full_part].parent = Some(q);
                }
                let mut kids = empty;
                kids.push(q);
                self.set_children(x, kids);
                self.normalize_single_child(x);
                Ok(())
            }
            2 => {
                // P6: merge both partials (and fulls between them) into one Q.
                let (q1, q2) = (partial[0], partial[1]);
                let mut merged = std::mem::take(&mut self.nodes[q1].children);
                if let Some(full_part) = self.wrap_part(full, labels, Label::Full) {
                    merged.push(full_part);
                }
                let mut right = std::mem::take(&mut self.nodes[q2].children);
                self.nodes[q2].dead = true;
                right.reverse(); // full→empty so fulls stay adjacent
                merged.extend(right);
                self.set_children(q1, merged);
                let mut kids = empty;
                kids.push(q1);
                self.set_children(x, kids);
                self.normalize_single_child(x);
                Ok(())
            }
            _ => Err(NotReducible),
        }
    }

    /// Templates P3 / P5 (P-node below the pertinent root).
    fn template_p_nonroot(
        &mut self,
        x: usize,
        empty: Vec<usize>,
        full: Vec<usize>,
        partial: Vec<usize>,
        labels: &mut Vec<Label>,
    ) -> Result<(), NotReducible> {
        match partial.len() {
            0 => {
                // P3: become a partial Q-node [empty_part, full_part].
                let mut kids = Vec::with_capacity(2);
                if let Some(e) = self.wrap_part(empty, labels, Label::Empty) {
                    kids.push(e);
                }
                if let Some(f) = self.wrap_part(full, labels, Label::Full) {
                    kids.push(f);
                }
                debug_assert_eq!(kids.len(), 2, "P3 needs both sides");
                self.nodes[x].kind = Kind::Q;
                self.set_children(x, kids);
                labels[x] = Label::Partial;
                Ok(())
            }
            1 => {
                // P5: become a partial Q absorbing the partial child.
                let q = partial[0];
                let mut kids = Vec::new();
                if let Some(e) = self.wrap_part(empty, labels, Label::Empty) {
                    kids.push(e);
                }
                kids.extend(std::mem::take(&mut self.nodes[q].children));
                self.nodes[q].dead = true;
                if let Some(f) = self.wrap_part(full, labels, Label::Full) {
                    kids.push(f);
                }
                self.nodes[x].kind = Kind::Q;
                self.set_children(x, kids);
                labels[x] = Label::Partial;
                Ok(())
            }
            _ => Err(NotReducible),
        }
    }

    /// Template Q2 (Q-node below the pertinent root): children must read
    /// `E* [partial]? F*` in one of the two orientations.
    fn template_q_nonroot(&mut self, x: usize, labels: &mut [Label]) -> Result<(), NotReducible> {
        let seq: Vec<Label> = self.nodes[x].children.iter().map(|&c| labels[c]).collect();
        let forward = Self::matches_singly_partial(&seq);
        let backward = {
            let mut rev = seq.clone();
            rev.reverse();
            Self::matches_singly_partial(&rev)
        };
        if !forward && !backward {
            return Err(NotReducible);
        }
        if !forward {
            self.nodes[x].children.reverse();
        }
        // Absorb the partial child (children already ordered empty→full).
        if let Some(pos) = self.nodes[x]
            .children
            .iter()
            .position(|&c| labels[c] == Label::Partial)
        {
            let q = self.nodes[x].children[pos];
            self.splice_into(x, pos, q);
        }
        labels[x] = Label::Partial;
        Ok(())
    }

    /// Template Q3 (Q-node as pertinent root): children must read
    /// `E* [partial]? F* [partial]? E*`.
    fn template_q_root(&mut self, x: usize, labels: &mut [Label]) -> Result<(), NotReducible> {
        let seq: Vec<Label> = self.nodes[x].children.iter().map(|&c| labels[c]).collect();
        if !Self::matches_doubly_partial(&seq) {
            return Err(NotReducible);
        }
        // Absorb up to two partial children. The left one is already
        // oriented empty→full; the right one must be reversed (full→empty).
        let partial_positions: Vec<usize> = (0..seq.len())
            .filter(|&i| seq[i] == Label::Partial)
            .collect();
        match partial_positions.len() {
            0 => {}
            1 => {
                let pos = partial_positions[0];
                let q = self.nodes[x].children[pos];
                // Orient: the full side must face the F-block. If everything
                // to the left of `pos` is empty and something to the right is
                // full (or nothing either side), empty→full is correct;
                // if fulls lie to the LEFT, reverse the partial's children.
                let fulls_left = seq[..pos].contains(&Label::Full);
                if fulls_left {
                    self.nodes[q].children.reverse();
                }
                self.splice_into(x, pos, q);
            }
            2 => {
                // Right partial first so the left position stays valid.
                let (lpos, rpos) = (partial_positions[0], partial_positions[1]);
                let rq = self.nodes[x].children[rpos];
                self.nodes[rq].children.reverse();
                self.splice_into(x, rpos, rq);
                let lq = self.nodes[x].children[lpos];
                self.splice_into(x, lpos, lq);
            }
            _ => return Err(NotReducible),
        }
        labels[x] = Label::Full; // root-level bookkeeping only
        Ok(())
    }

    /// `E* P? F*`
    fn matches_singly_partial(seq: &[Label]) -> bool {
        let mut i = 0;
        while i < seq.len() && seq[i] == Label::Empty {
            i += 1;
        }
        if i < seq.len() && seq[i] == Label::Partial {
            i += 1;
        }
        while i < seq.len() && seq[i] == Label::Full {
            i += 1;
        }
        i == seq.len()
    }

    /// `E* P? F* P? E*`
    fn matches_doubly_partial(seq: &[Label]) -> bool {
        let mut i = 0;
        while i < seq.len() && seq[i] == Label::Empty {
            i += 1;
        }
        if i < seq.len() && seq[i] == Label::Partial {
            i += 1;
        }
        while i < seq.len() && seq[i] == Label::Full {
            i += 1;
        }
        if i < seq.len() && seq[i] == Label::Partial {
            i += 1;
        }
        while i < seq.len() && seq[i] == Label::Empty {
            i += 1;
        }
        i == seq.len()
    }

    // ----- queries -------------------------------------------------------

    /// One permutation consistent with all reductions so far (left-to-right
    /// leaves of the tree).
    pub fn frontier(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.n_elements);
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            match &self.nodes[x].kind {
                Kind::Leaf(e) => out.push(*e),
                _ => {
                    for &c in self.nodes[x].children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Number of permutations the tree still represents, as `f64` (factorials
    /// overflow integers quickly). P-nodes contribute `c!`, Q-nodes with
    /// `≥ 2` children contribute `2`.
    pub fn count_orderings(&self) -> f64 {
        fn fact(n: usize) -> f64 {
            (2..=n).map(|i| i as f64).product()
        }
        let mut total = 1.0;
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            match &self.nodes[x].kind {
                Kind::Leaf(_) => {}
                Kind::P => {
                    total *= fact(self.nodes[x].children.len());
                    stack.extend(&self.nodes[x].children);
                }
                Kind::Q => {
                    if self.nodes[x].children.len() >= 2 {
                        total *= 2.0;
                    }
                    stack.extend(&self.nodes[x].children);
                }
            }
        }
        total
    }

    /// Internal consistency check used by tests: parent pointers match the
    /// child lists, every live non-leaf has ≥2 children, every element
    /// appears exactly once in the frontier.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.n_elements];
        let mut stack = vec![self.root];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x];
            assert!(!node.dead, "dead node {x} reachable");
            match &node.kind {
                Kind::Leaf(e) => {
                    assert!(!seen[*e], "element {e} appears twice");
                    seen[*e] = true;
                    assert!(node.children.is_empty());
                }
                _ => {
                    assert!(
                        node.children.len() >= 2,
                        "internal node {x} has {} children",
                        node.children.len()
                    );
                    for &c in &node.children {
                        assert_eq!(self.nodes[c].parent, Some(x), "parent pointer broken");
                        stack.push(c);
                    }
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "frontier misses elements");
    }
}

/// Convenience: computes a row ordering under which all `sets` become
/// consecutive, or `None` if impossible. This is the Booth–Lueker C1P test.
pub fn c1p_ordering(n_elements: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    if n_elements == 0 {
        return Some(Vec::new());
    }
    let mut tree = PqTree::new(n_elements);
    for set in sets {
        if tree.reduce(set).is_err() {
            return None;
        }
    }
    Some(tree.frontier())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consecutive_in(order: &[usize], set: &[usize]) -> bool {
        if set.len() <= 1 {
            return true;
        }
        let pos: Vec<usize> = set
            .iter()
            .map(|e| order.iter().position(|x| x == e).unwrap())
            .collect();
        let (min, max) = (*pos.iter().min().unwrap(), *pos.iter().max().unwrap());
        max - min + 1 == set.len()
    }

    #[test]
    fn universal_tree_counts_factorial() {
        let t = PqTree::new(4);
        assert_eq!(t.count_orderings(), 24.0);
        assert_eq!(t.frontier().len(), 4);
        t.check_invariants();
    }

    #[test]
    fn single_element_tree() {
        let t = PqTree::new(1);
        assert_eq!(t.frontier(), vec![0]);
        assert_eq!(t.count_orderings(), 1.0);
    }

    #[test]
    fn single_reduction_p3() {
        let mut t = PqTree::new(5);
        t.reduce(&[1, 3]).unwrap();
        t.check_invariants();
        let f = t.frontier();
        assert!(consecutive_in(&f, &[1, 3]));
    }

    #[test]
    fn chain_of_overlapping_pairs_forces_path() {
        // {0,1},{1,2},{2,3} force the order 0,1,2,3 (or reverse).
        let mut t = PqTree::new(4);
        for s in [[0, 1], [1, 2], [2, 3]] {
            t.reduce(&s).unwrap();
            t.check_invariants();
        }
        let f = t.frontier();
        assert!(f == vec![0, 1, 2, 3] || f == vec![3, 2, 1, 0]);
        assert_eq!(t.count_orderings(), 2.0);
    }

    #[test]
    fn incompatible_sets_rejected() {
        // {0,1}, {2,3} and {0,2} cannot all be consecutive with {1,3} apart:
        // the classic K4 witness: pairs {0,1},{1,2},{2,3},{3,0} cannot all be
        // consecutive in a linear order of 4 distinct elements.
        let mut t = PqTree::new(4);
        t.reduce(&[0, 1]).unwrap();
        t.reduce(&[1, 2]).unwrap();
        t.reduce(&[2, 3]).unwrap();
        assert_eq!(t.reduce(&[3, 0]), Err(NotReducible));
        assert!(t.is_poisoned());
        assert_eq!(t.reduce(&[0, 1]), Err(NotReducible));
    }

    #[test]
    fn nested_sets_allowed() {
        let mut t = PqTree::new(6);
        t.reduce(&[0, 1, 2, 3]).unwrap();
        t.reduce(&[1, 2]).unwrap();
        t.reduce(&[0, 1, 2]).unwrap();
        t.check_invariants();
        let f = t.frontier();
        for s in [vec![0, 1, 2, 3], vec![1, 2], vec![0, 1, 2]] {
            assert!(consecutive_in(&f, &s), "set {s:?} not consecutive in {f:?}");
        }
    }

    #[test]
    fn overlapping_sets_q_node_path() {
        let mut t = PqTree::new(5);
        t.reduce(&[0, 1, 2]).unwrap();
        t.reduce(&[1, 2, 3]).unwrap();
        t.check_invariants();
        let f = t.frontier();
        assert!(consecutive_in(&f, &[0, 1, 2]));
        assert!(consecutive_in(&f, &[1, 2, 3]));
        // Further compatible reduction through the Q-node.
        t.reduce(&[2, 3, 4]).unwrap();
        t.check_invariants();
        let f = t.frontier();
        assert!(f == vec![0, 1, 2, 3, 4] || f == vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn full_set_and_singletons_are_noops() {
        let mut t = PqTree::new(3);
        t.reduce(&[0, 1, 2]).unwrap();
        t.reduce(&[1]).unwrap();
        t.reduce(&[]).unwrap();
        assert_eq!(t.count_orderings(), 6.0);
    }

    #[test]
    fn duplicate_elements_deduped() {
        let mut t = PqTree::new(4);
        t.reduce(&[1, 1, 2, 2]).unwrap();
        let f = t.frontier();
        assert!(consecutive_in(&f, &[1, 2]));
    }

    #[test]
    fn interval_matrix_counts() {
        // Sets {0,1} and {2,3} over 4 elements: each pair may be internally
        // swapped (2·2) and the two blocks + nothing else... the tree is a
        // root P over two P pairs: 2! · 2! · 2! = 8 orderings.
        let mut t = PqTree::new(4);
        t.reduce(&[0, 1]).unwrap();
        t.reduce(&[2, 3]).unwrap();
        t.check_invariants();
        assert_eq!(t.count_orderings(), 8.0);
    }

    #[test]
    fn c1p_ordering_convenience() {
        let order = c1p_ordering(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        assert!(order == vec![0, 1, 2, 3] || order == vec![3, 2, 1, 0]);
        assert!(c1p_ordering(4, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]).is_none());
    }

    #[test]
    fn q3_with_two_partials() {
        // Build a Q-node 0..4 via chained pairs, then reduce a set that is
        // partial on both ends of an inner block.
        let mut t = PqTree::new(6);
        t.reduce(&[0, 1, 2]).unwrap();
        t.reduce(&[2, 3]).unwrap();
        t.reduce(&[3, 4]).unwrap();
        t.reduce(&[4, 5]).unwrap();
        t.check_invariants();
        // This set spans the middle of the forced chain.
        t.reduce(&[1, 2, 3, 4]).unwrap();
        t.check_invariants();
        let f = t.frontier();
        for s in [
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![1, 2, 3, 4],
        ] {
            assert!(consecutive_in(&f, &s), "set {s:?} not consecutive in {f:?}");
        }
    }
}
