#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-coupled numerics mirror the published algorithms

//! # hnd-c1p
//!
//! Consecutive-ones machinery for the HITSnDIFFS reproduction:
//!
//! * [`pq_tree`] — PQ-trees after Booth & Lueker, the paper's "BL"
//!   combinatorial baseline: exact C1P testing plus a witnessing row order
//!   in (near-)linear time, but no answer at all for non-ideal inputs.
//! * [`abh`] — the spectral seriation of Atkins, Boman & Hendrickson, the
//!   only prior C1P reconstruction method that also works on non-ideal
//!   inputs; implemented both "direct" (Lanczos Fiedler vector) and as the
//!   paper's matrix-free Algorithm 2 power iteration.
//! * [`checks`] — P-matrix/pre-P predicates and a brute-force oracle.

pub mod abh;
pub mod checks;
pub mod pq_tree;

pub use abh::{AbhDirect, AbhPower, BetaStrategy};
pub use checks::{
    brute_force_pre_p, consistent_user_ordering, count_pre_p_orderings, is_p_matrix, pre_p_ordering,
};
pub use pq_tree::{c1p_ordering, NotReducible, PqTree};
