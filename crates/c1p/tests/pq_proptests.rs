//! Property tests: the PQ-tree must agree with the exhaustive oracle on
//! small random binary matrices, and its frontier must witness C1P.

use hnd_c1p::{brute_force_pre_p, is_p_matrix, pre_p_ordering, PqTree};
use hnd_linalg::CsrMatrix;
use proptest::prelude::*;

/// Random binary matrix as row bitmaps: `rows × cols` with each cell 1 with
/// probability ~1/2.
fn binary_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..=6, 1usize..=6).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |bits| {
            CsrMatrix::from_triplets(
                rows,
                cols,
                bits.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(idx, _)| (idx / cols, idx % cols, 1.0)),
            )
        })
    })
}

/// A random pre-P matrix: random interval columns over `rows` elements,
/// then rows shuffled by a random permutation.
fn shuffled_interval_matrix() -> impl Strategy<Value = (CsrMatrix, Vec<usize>)> {
    (3usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        let intervals = proptest::collection::vec((0..rows, 0..rows), cols);
        let perm = Just(()).prop_perturb(move |_, mut rng| {
            let mut p: Vec<usize> = (0..rows).collect();
            for i in (1..rows).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                p.swap(i, j);
            }
            p
        });
        (intervals, perm).prop_map(move |(ivs, perm)| {
            let mut triplets = Vec::new();
            for (col, (a, b)) in ivs.iter().enumerate() {
                let (lo, hi) = (*a.min(b), *a.max(b));
                for row in lo..=hi {
                    triplets.push((row, col, 1.0));
                }
            }
            let base = CsrMatrix::from_triplets(rows, cols, triplets);
            (base.permute_rows(&perm), perm)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pq_tree_agrees_with_brute_force(m in binary_matrix()) {
        let pq = pre_p_ordering(&m);
        let brute = brute_force_pre_p(&m);
        prop_assert_eq!(pq.is_some(), brute.is_some(),
            "PQ-tree and oracle disagree on pre-P status");
        if let Some(order) = pq {
            prop_assert!(is_p_matrix(&m.permute_rows(&order)),
                "PQ-tree frontier does not witness C1P");
        }
    }

    #[test]
    fn shuffled_interval_matrices_are_always_recovered((m, _perm) in shuffled_interval_matrix()) {
        let order = pre_p_ordering(&m);
        prop_assert!(order.is_some(), "interval matrix must be pre-P");
        let order = order.unwrap();
        prop_assert!(is_p_matrix(&m.permute_rows(&order)));
    }

    #[test]
    fn reduce_keeps_invariants(sets in proptest::collection::vec(
        proptest::collection::vec(0usize..6, 0..6), 0..8)
    ) {
        let mut tree = PqTree::new(6);
        for set in &sets {
            if tree.reduce(set).is_err() {
                break;
            }
            tree.check_invariants();
            // Frontier always contains each element exactly once.
            let mut f = tree.frontier();
            f.sort_unstable();
            prop_assert_eq!(f, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn count_orderings_never_increases(sets in proptest::collection::vec(
        proptest::collection::vec(0usize..5, 2..5), 1..6)
    ) {
        let mut tree = PqTree::new(5);
        let mut last = tree.count_orderings();
        for set in &sets {
            if tree.reduce(set).is_err() {
                break;
            }
            let now = tree.count_orderings();
            prop_assert!(now <= last + 1e-9, "reduce increased orderings: {last} -> {now}");
            last = now;
        }
    }
}
