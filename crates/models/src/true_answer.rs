//! The "True-answer" cheating baseline (Section IV-A).
//!
//! It is handed the ground-truth correct option of every item — information
//! a real ability-discovery system never has — and ranks users by their
//! number of correct answers. The paper uses it both as an upper-bound
//! competitor and as the pseudo gold standard for the real-world datasets
//! (Section IV-E).

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix};

/// Counts correct answers per user given the true options.
#[derive(Debug, Clone)]
pub struct TrueAnswer {
    /// The correct option index per item.
    pub correct_options: Vec<u16>,
}

impl TrueAnswer {
    /// Creates the baseline from the per-item correct options.
    pub fn new(correct_options: Vec<u16>) -> Self {
        TrueAnswer { correct_options }
    }
}

impl AbilityRanker for TrueAnswer {
    fn name(&self) -> &'static str {
        "True-Answer"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        if self.correct_options.len() != matrix.n_items() {
            return Err(RankError::InvalidInput(format!(
                "got {} correct options for {} items",
                self.correct_options.len(),
                matrix.n_items()
            )));
        }
        for (item, &opt) in self.correct_options.iter().enumerate() {
            if opt >= matrix.options_of(item) {
                return Err(RankError::InvalidInput(format!(
                    "correct option {opt} out of range for item {item}"
                )));
            }
        }
        let scores = (0..matrix.n_users())
            .map(|user| {
                self.correct_options
                    .iter()
                    .enumerate()
                    .filter(|&(item, &correct)| matrix.choice(user, item) == Some(correct))
                    .count() as f64
            })
            .collect();
        Ok(Ranking::from_scores(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_correct_answers() {
        let m = ResponseMatrix::from_choices(
            3,
            &[2, 2, 2],
            &[
                &[Some(1), Some(1), Some(1)],
                &[Some(1), Some(1), Some(0)],
                &[Some(0), None, Some(0)],
            ],
        )
        .unwrap();
        let r = TrueAnswer::new(vec![1, 1, 1]).rank(&m).unwrap();
        assert_eq!(r.scores, vec![3.0, 2.0, 0.0]);
        assert_eq!(r.order_best_to_worst(), vec![0, 1, 2]);
    }

    #[test]
    fn validates_input() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), Some(0)]]).unwrap();
        assert!(TrueAnswer::new(vec![1]).rank(&m).is_err());
        assert!(TrueAnswer::new(vec![1, 5]).rank(&m).is_err());
        assert!(TrueAnswer::new(vec![1, 0]).rank(&m).is_ok());
    }
}
