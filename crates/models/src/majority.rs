//! Majority-vote baseline: score users by agreement with the per-item
//! plurality option. The simplest non-cheating baseline; the paper's public
//! repository includes it alongside the methods of Section IV-A.

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix};

/// Ranks users by the fraction of their answers that match the per-item
/// plurality choice (ties broken toward the lowest option index).
#[derive(Debug, Clone, Default)]
pub struct MajorityVote;

impl MajorityVote {
    /// The plurality option of each item (`None` for items nobody answered).
    pub fn plurality_options(matrix: &ResponseMatrix) -> Vec<Option<u16>> {
        let mut out = Vec::with_capacity(matrix.n_items());
        let mut counts: Vec<usize> = Vec::new();
        for item in 0..matrix.n_items() {
            let k = matrix.options_of(item) as usize;
            counts.clear();
            counts.resize(k, 0);
            let mut answered = false;
            for user in 0..matrix.n_users() {
                if let Some(opt) = matrix.choice(user, item) {
                    counts[opt as usize] += 1;
                    answered = true;
                }
            }
            if answered {
                let best = counts
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(h, _)| h as u16);
                out.push(best);
            } else {
                out.push(None);
            }
        }
        out
    }
}

impl AbilityRanker for MajorityVote {
    fn name(&self) -> &'static str {
        "MajorityVote"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        let plurality = Self::plurality_options(matrix);
        let mut scores = Vec::with_capacity(matrix.n_users());
        for user in 0..matrix.n_users() {
            let mut agree = 0usize;
            let mut answered = 0usize;
            for (item, &maj) in plurality.iter().enumerate() {
                if let (Some(choice), Some(maj)) = (matrix.choice(user, item), maj) {
                    answered += 1;
                    if choice == maj {
                        agree += 1;
                    }
                }
            }
            scores.push(if answered == 0 {
                0.0
            } else {
                agree as f64 / answered as f64
            });
        }
        Ok(Ranking::from_scores(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurality_and_agreement() {
        let m = ResponseMatrix::from_choices(
            2,
            &[3, 3],
            &[
                &[Some(0), Some(1)],
                &[Some(0), Some(1)],
                &[Some(0), Some(2)],
                &[Some(1), Some(2)],
            ],
        )
        .unwrap();
        assert_eq!(MajorityVote::plurality_options(&m), vec![Some(0), Some(1)]);
        let r = MajorityVote.rank(&m).unwrap();
        assert_eq!(r.scores, vec![1.0, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn unanswered_item_excluded() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), None], &[Some(0), None]])
            .unwrap();
        assert_eq!(MajorityVote::plurality_options(&m)[1], None);
        let r = MajorityVote.rank(&m).unwrap();
        assert_eq!(r.scores, vec![1.0, 1.0]);
    }

    #[test]
    fn silent_user_scores_zero() {
        let m = ResponseMatrix::from_choices(1, &[2], &[&[Some(0)], &[None]]).unwrap();
        let r = MajorityVote.rank(&m).unwrap();
        assert_eq!(r.scores[1], 0.0);
    }
}
