#![warn(missing_docs)]

//! # hnd-models
//!
//! The truth-discovery baselines the paper compares HITSnDIFFS against
//! (Sections III-A and IV-A):
//!
//! * [`Hits`] — Kleinberg's Hubs & Authorities on the user–option graph;
//! * [`TruthFinder`] — Yin et al.'s probabilistic HITS variant;
//! * [`Investment`] / [`PooledInvestment`] — Pasternack & Roth's
//!   non-linear credit-assignment schemes (10 fixed iterations, as they do
//!   not converge);
//! * [`MajorityVote`] — agreement with the per-item plurality answer;
//! * [`TrueAnswer`] — the cheating baseline that knows the correct options
//!   and counts correct answers;
//! * [`DawidSkene`] — confusion-matrix EM for *homogeneous* items
//!   (Appendix E-A; not part of the paper's experiments but implemented for
//!   completeness of the discussion).
//!
//! All of them implement [`AbilityRanker`](hnd_response::AbilityRanker), so
//! the experiment harness treats them interchangeably with HND and ABH.

mod dawid_skene;
mod hits;
mod investment;
mod majority;
mod true_answer;
mod truthfinder;

pub use dawid_skene::DawidSkene;
pub use hits::Hits;
pub use investment::{Investment, PooledInvestment};
pub use majority::MajorityVote;
pub use true_answer::TrueAnswer;
pub use truthfinder::TruthFinder;
