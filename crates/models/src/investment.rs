//! Investment and PooledInvestment (Pasternack & Roth [47]).
//!
//! Users "invest" their trust uniformly across their claims; claim beliefs
//! grow non-linearly (`G(x) = x^g`) and pay back proportionally to the
//! invested stake. Neither variant converges, so the paper runs a fixed 10
//! iterations — we default to the same.

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix, ResponseOps};

/// Shared fixed-iteration schedule.
fn run_investment(
    matrix: &ResponseMatrix,
    iterations: usize,
    g: f64,
    pooled: bool,
) -> Result<Ranking, RankError> {
    let ops = ResponseOps::new(matrix);
    let m = ops.n_users();
    let kcols = ops.n_option_columns();
    let row_counts = ops.row_counts();

    let mut trust = vec![1.0; m];
    let mut belief = vec![0.0; kcols];
    let mut invested = vec![0.0; kcols];

    for _ in 0..iterations {
        // Stake each user puts on each of their claims: T(s)/|C_s|.
        let stakes: Vec<f64> = trust
            .iter()
            .zip(row_counts)
            .map(|(t, &c)| if c > 0.0 { t / c } else { 0.0 })
            .collect();
        // invested[c] = Σ_{s∈S_c} T(s)/|C_s|  (the claim's collected stake).
        ops.ct_apply(&stakes, &mut invested);

        if pooled {
            // PooledInvestment: beliefs are normalized within each item's
            // mutually exclusive option set:
            // B(c) = H(c) · G(H(c)) / Σ_{c'∈item} G(H(c')).
            for (c, b) in belief.iter_mut().enumerate() {
                *b = invested[c];
            }
            let mut col = 0usize;
            for item in 0..matrix.n_items() {
                let k = matrix.options_of(item) as usize;
                let denom: f64 = (col..col + k).map(|c| invested[c].powf(g)).sum();
                for c in col..col + k {
                    belief[c] = if denom > 0.0 {
                        invested[c] * invested[c].powf(g) / denom
                    } else {
                        0.0
                    };
                }
                col += k;
            }
        } else {
            // Investment: B(c) = G(invested stake).
            for (b, &iv) in belief.iter_mut().zip(&invested) {
                *b = iv.powf(g);
            }
        }

        // Pay back: T(s) = Σ_{c∈C_s} B(c) · stake(s)/invested(c).
        let mut new_trust = vec![0.0; m];
        let c_bin = ops.pattern();
        for (user, nt) in new_trust.iter_mut().enumerate() {
            let stake = stakes[user];
            if stake == 0.0 {
                continue;
            }
            let mut acc = 0.0;
            for c in c_bin.row_iter(user) {
                if invested[c] > 0.0 {
                    acc += belief[c] * stake / invested[c];
                }
            }
            *nt = acc;
        }
        // Normalize by the max to keep the non-converging sequence bounded.
        let max = new_trust.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            for t in new_trust.iter_mut() {
                *t /= max;
            }
        }
        trust = new_trust;
    }

    Ok(Ranking {
        scores: trust,
        iterations,
        converged: false, // by construction: fixed-iteration scheme
    })
}

/// Investment with `G(x) = x^{1.2}` (the original paper's setting).
#[derive(Debug, Clone)]
pub struct Investment {
    /// Fixed iteration count (the paper uses 10).
    pub iterations: usize,
    /// Non-linearity exponent `g`.
    pub g: f64,
}

impl Default for Investment {
    fn default() -> Self {
        Investment {
            iterations: 10,
            g: 1.2,
        }
    }
}

impl AbilityRanker for Investment {
    fn name(&self) -> &'static str {
        "Invest"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        run_investment(matrix, self.iterations, self.g, false)
    }
}

/// PooledInvestment with `G(x) = x^{1.4}` (the original paper's setting).
#[derive(Debug, Clone)]
pub struct PooledInvestment {
    /// Fixed iteration count (the paper uses 10).
    pub iterations: usize,
    /// Non-linearity exponent `g`.
    pub g: f64,
}

impl Default for PooledInvestment {
    fn default() -> Self {
        PooledInvestment {
            iterations: 10,
            g: 1.4,
        }
    }
}

impl AbilityRanker for PooledInvestment {
    fn name(&self) -> &'static str {
        "PooledInv"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        run_investment(matrix, self.iterations, self.g, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consensus_matrix() -> ResponseMatrix {
        ResponseMatrix::from_choices(
            4,
            &[3, 3, 3, 3],
            &[
                &[Some(0), Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(1), Some(1)],
                &[Some(2), Some(2), Some(2), Some(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn investment_rewards_consensus() {
        let r = Investment::default().rank(&consensus_matrix()).unwrap();
        assert!(r.scores[0] > r.scores[3], "{:?}", r.scores);
        assert!(r.scores[0] > r.scores[2], "{:?}", r.scores);
        assert_eq!(r.iterations, 10);
    }

    #[test]
    fn pooled_investment_rewards_consensus() {
        let r = PooledInvestment::default()
            .rank(&consensus_matrix())
            .unwrap();
        assert!(r.scores[0] > r.scores[3], "{:?}", r.scores);
    }

    #[test]
    fn scores_bounded_after_normalization() {
        let r = Investment::default().rank(&consensus_matrix()).unwrap();
        assert!(r.scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        let best = r.scores.iter().cloned().fold(0.0f64, f64::max);
        assert!((best - 1.0).abs() < 1e-12, "max-normalized");
    }

    #[test]
    fn empty_user_scores_zero() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), Some(0)], &[None, None]])
            .unwrap();
        for ranking in [
            Investment::default().rank(&m).unwrap(),
            PooledInvestment::default().rank(&m).unwrap(),
        ] {
            assert_eq!(ranking.scores[1], 0.0);
        }
    }

    #[test]
    fn results_depend_on_iteration_count() {
        // Documented non-convergence: more iterations change the scores.
        let m = consensus_matrix();
        let a = Investment {
            iterations: 2,
            ..Default::default()
        }
        .rank(&m)
        .unwrap();
        let b = Investment {
            iterations: 10,
            ..Default::default()
        }
        .rank(&m)
        .unwrap();
        assert_ne!(a.scores, b.scores);
    }
}
