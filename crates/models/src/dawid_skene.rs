//! Dawid–Skene confusion-matrix EM (Appendix E-A of the paper).
//!
//! DS assumes *homogeneous* items: every item shares the same `k` global
//! label classes, and each user has one `k × k` stochastic confusion matrix
//! (`π_j[t][l]` = probability user `j` answers `l` when the truth is `t`).
//! The paper discusses DS as the main alternative modeling tradition to IRT
//! but excludes it from the experiments because it cannot express
//! per-question heterogeneity; it is implemented here to complete the
//! discussion and for use on homogeneous subsets.

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix};

/// Dawid–Skene EM with additive smoothing.
#[derive(Debug, Clone)]
pub struct DawidSkene {
    /// EM iteration budget.
    pub max_iter: usize,
    /// Convergence tolerance on label-posterior change.
    pub tol: f64,
    /// Additive (Laplace) smoothing for confusion-matrix estimates.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iter: 100,
            tol: 1e-6,
            smoothing: 0.01,
        }
    }
}

/// A fitted DS model.
#[derive(Debug, Clone)]
pub struct DawidSkeneFit {
    /// Per-item posterior over the `k` classes.
    pub label_posteriors: Vec<Vec<f64>>,
    /// Per-user `k × k` confusion matrices (row = true class).
    pub confusion: Vec<Vec<Vec<f64>>>,
    /// Class priors.
    pub priors: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

impl DawidSkene {
    /// Runs EM.
    ///
    /// # Errors
    /// Rejects heterogeneous matrices (items must share one option count).
    pub fn fit(&self, matrix: &ResponseMatrix) -> Result<DawidSkeneFit, RankError> {
        let k = matrix.max_options() as usize;
        for item in 0..matrix.n_items() {
            if matrix.options_of(item) as usize != k {
                return Err(RankError::InvalidInput(
                    "Dawid-Skene requires homogeneous items (equal k)".into(),
                ));
            }
        }
        let m = matrix.n_users();
        let n = matrix.n_items();

        // Initialize posteriors from per-item vote shares.
        let mut posteriors: Vec<Vec<f64>> = (0..n)
            .map(|item| {
                let mut counts = vec![self.smoothing; k];
                for user in 0..m {
                    if let Some(opt) = matrix.choice(user, item) {
                        counts[opt as usize] += 1.0;
                    }
                }
                let z: f64 = counts.iter().sum();
                counts.iter().map(|c| c / z).collect()
            })
            .collect();

        let mut confusion = vec![vec![vec![0.0; k]; k]; m];
        let mut priors = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.max_iter {
            iterations += 1;
            // M-step: priors and confusion matrices from posteriors.
            for p in priors.iter_mut() {
                *p = 0.0;
            }
            for post in &posteriors {
                for (t, &p) in post.iter().enumerate() {
                    priors[t] += p;
                }
            }
            let zp: f64 = priors.iter().sum();
            for p in priors.iter_mut() {
                *p /= zp;
            }
            for (user, conf) in confusion.iter_mut().enumerate() {
                for row in conf.iter_mut() {
                    for v in row.iter_mut() {
                        *v = self.smoothing;
                    }
                }
                for (item, post) in posteriors.iter().enumerate() {
                    if let Some(l) = matrix.choice(user, item) {
                        for (t, &p) in post.iter().enumerate() {
                            conf[t][l as usize] += p;
                        }
                    }
                }
                for row in conf.iter_mut() {
                    let z: f64 = row.iter().sum();
                    for v in row.iter_mut() {
                        *v /= z;
                    }
                }
            }
            // E-step: label posteriors from confusion matrices.
            let mut max_change = 0.0f64;
            for (item, post) in posteriors.iter_mut().enumerate() {
                let mut log_p: Vec<f64> = priors.iter().map(|p| p.max(1e-300).ln()).collect();
                for (user, conf) in confusion.iter().enumerate() {
                    if let Some(l) = matrix.choice(user, item) {
                        for (t, lp) in log_p.iter_mut().enumerate() {
                            *lp += conf[t][l as usize].max(1e-300).ln();
                        }
                    }
                }
                let max_lp = log_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                let mut new_post = vec![0.0; k];
                for t in 0..k {
                    new_post[t] = (log_p[t] - max_lp).exp();
                    z += new_post[t];
                }
                for (t, np) in new_post.iter_mut().enumerate() {
                    *np /= z;
                    max_change = max_change.max((*np - post[t]).abs());
                }
                *post = new_post;
            }
            if max_change < self.tol {
                converged = true;
                break;
            }
        }

        Ok(DawidSkeneFit {
            label_posteriors: posteriors,
            confusion,
            priors,
            iterations,
            converged,
        })
    }
}

impl AbilityRanker for DawidSkene {
    fn name(&self) -> &'static str {
        "Dawid-Skene"
    }

    /// Users are scored by their prior-weighted diagonal confusion mass —
    /// the model's estimate of their probability of answering correctly.
    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        let fit = self.fit(matrix)?;
        let scores = fit
            .confusion
            .iter()
            .map(|conf| {
                fit.priors
                    .iter()
                    .enumerate()
                    .map(|(t, &p)| p * conf[t][t])
                    .sum()
            })
            .collect();
        Ok(Ranking {
            scores,
            iterations: fit.iterations,
            converged: fit.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 5 users × 8 binary items: users 0–2 always report class of the item
    /// (labels alternate), user 3 is random-ish, user 4 always flips.
    fn homogeneous_matrix() -> ResponseMatrix {
        let truth: Vec<u16> = (0..8).map(|i| (i % 2) as u16).collect();
        let rows: Vec<Vec<Option<u16>>> = (0..5)
            .map(|u| {
                truth
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        Some(match u {
                            0..=2 => t,
                            3 => {
                                if i % 3 == 0 {
                                    1 - t
                                } else {
                                    t
                                }
                            }
                            _ => 1 - t,
                        })
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
        ResponseMatrix::from_choices(8, &[2; 8], &refs).unwrap()
    }

    #[test]
    fn recovers_truth_and_ranks_users() {
        let m = homogeneous_matrix();
        let fit = DawidSkene::default().fit(&m).unwrap();
        assert!(fit.converged);
        // Majority (3 honest users) wins every item.
        for (i, post) in fit.label_posteriors.iter().enumerate() {
            let t = i % 2;
            assert!(post[t] > 0.9, "item {i}: posterior {post:?}");
        }
        let r = DawidSkene::default().rank(&m).unwrap();
        let order = r.order_best_to_worst();
        assert!(order[4] == 4, "the flipper ranks last: {order:?}");
        assert!(order[..3].iter().all(|&u| u <= 2), "honest users on top");
    }

    #[test]
    fn rejects_heterogeneous_items() {
        let m = ResponseMatrix::from_choices(2, &[2, 3], &[&[Some(0), Some(2)]]).unwrap();
        assert!(DawidSkene::default().fit(&m).is_err());
    }

    #[test]
    fn posteriors_are_distributions() {
        let fit = DawidSkene::default().fit(&homogeneous_matrix()).unwrap();
        for post in &fit.label_posteriors {
            let s: f64 = post.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        for conf in &fit.confusion {
            for row in conf {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
            }
        }
    }
}
