//! TruthFinder (Yin, Han, Yu [73]) in the paper's matrix formulation.
//!
//! User scores are probabilities of being right; an option's confidence is
//! the probability that at least one of its (independent) pickers is right:
//!
//! `s ← Crow·w`,  `w ← 1 − exp(Cᵀ · log(1 − s))`  (Section III-A).

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix, ResponseOps};

/// TruthFinder with clamped probabilities for numerical safety.
#[derive(Debug, Clone)]
pub struct TruthFinder {
    /// Initial per-user trust (the original paper uses 0.9).
    pub initial_trust: f64,
    /// Convergence tolerance on the user-score change.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for TruthFinder {
    fn default() -> Self {
        TruthFinder {
            initial_trust: 0.9,
            tol: 1e-5,
            max_iter: 1_000,
        }
    }
}

impl AbilityRanker for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        if !(0.0..1.0).contains(&self.initial_trust) {
            return Err(RankError::InvalidInput(
                "initial trust must be in [0, 1)".into(),
            ));
        }
        let ops = ResponseOps::new(matrix);
        let m = ops.n_users();
        let kcols = ops.n_option_columns();
        let mut s = vec![self.initial_trust; m];
        let mut log_one_minus = vec![0.0; m];
        let mut w = vec![0.0; kcols];
        let mut next = vec![0.0; m];
        let mut iterations = 0;
        let mut converged = false;
        const CLAMP: f64 = 1e-9;
        while iterations < self.max_iter {
            // w = 1 − exp(Cᵀ log(1 − s))
            for (l, &si) in log_one_minus.iter_mut().zip(&s) {
                *l = (1.0 - si.clamp(CLAMP, 1.0 - CLAMP)).ln();
            }
            ops.ct_apply(&log_one_minus, &mut w);
            for wi in w.iter_mut() {
                *wi = 1.0 - wi.exp();
            }
            // s = Crow w
            ops.crow_apply(&w, &mut next);
            iterations += 1;
            let delta = hnd_linalg::vector::sign_invariant_distance(&s, &next);
            std::mem::swap(&mut s, &mut next);
            if delta <= self.tol {
                converged = true;
                break;
            }
        }
        Ok(Ranking {
            scores: s,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_users_gain_trust() {
        // Three users agree; the fourth contradicts them everywhere.
        let m = ResponseMatrix::from_choices(
            4,
            &[2, 2, 2, 2],
            &[
                &[Some(0), Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(0), Some(1)],
                &[Some(1), Some(1), Some(1), Some(1)],
            ],
        )
        .unwrap();
        let r = TruthFinder::default().rank(&m).unwrap();
        assert!(r.converged);
        assert!(r.scores[0] > r.scores[3], "consensus beats dissent");
        assert!(r.scores[0] > r.scores[2], "full agreement beats partial");
    }

    #[test]
    fn scores_stay_probabilities() {
        let m = ResponseMatrix::from_choices(
            2,
            &[3, 3],
            &[
                &[Some(0), Some(1)],
                &[Some(0), Some(1)],
                &[Some(2), Some(0)],
            ],
        )
        .unwrap();
        let r = TruthFinder::default().rank(&m).unwrap();
        for &p in &r.scores {
            assert!((0.0..=1.0).contains(&p), "score {p} outside [0,1]");
        }
    }

    #[test]
    fn rejects_invalid_initial_trust() {
        let m = ResponseMatrix::from_choices(1, &[2], &[&[Some(0)], &[Some(1)]]).unwrap();
        let tf = TruthFinder {
            initial_trust: 1.0,
            ..Default::default()
        };
        assert!(tf.rank(&m).is_err());
    }

    #[test]
    fn unanswering_user_scores_zero() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), Some(0)], &[None, None]])
            .unwrap();
        let r = TruthFinder::default().rank(&m).unwrap();
        assert_eq!(r.scores[1], 0.0);
    }
}
