//! HITS (Kleinberg [31]) on the bipartite user–option graph.
//!
//! User scores are hub scores, option weights authority scores:
//! `s ← βCw`, `w ← αCᵀs` (Section III-A). The user scores converge to the
//! dominant eigenvector of `CCᵀ` — equivalently the top left singular
//! vector of `C`.

use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix, ResponseOps};

/// Classic HITS with L2 normalization per iteration.
#[derive(Debug, Clone)]
pub struct Hits {
    /// Convergence tolerance on the user-score change.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for Hits {
    fn default() -> Self {
        Hits {
            tol: 1e-5,
            max_iter: 10_000,
        }
    }
}

impl AbilityRanker for Hits {
    fn name(&self) -> &'static str {
        "HITS"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        let ops = ResponseOps::new(matrix);
        let m = ops.n_users();
        let mut s = vec![1.0; m];
        hnd_linalg::vector::normalize(&mut s);
        let mut w = vec![0.0; ops.n_option_columns()];
        let mut next = vec![0.0; m];
        let mut iterations = 0;
        let mut converged = false;
        while iterations < self.max_iter {
            ops.ct_apply(&s, &mut w);
            ops.c_apply(&w, &mut next);
            iterations += 1;
            if hnd_linalg::vector::normalize(&mut next) == 0.0 {
                break;
            }
            let delta = hnd_linalg::vector::sign_invariant_distance(&s, &next);
            std::mem::swap(&mut s, &mut next);
            if delta <= self.tol {
                converged = true;
                break;
            }
        }
        Ok(Ranking {
            scores: s,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prolific_agreeing_users_score_higher() {
        // Users 0–2 agree on everything; user 3 answers alone.
        let m = ResponseMatrix::from_choices(
            3,
            &[2, 2, 2],
            &[
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(1)],
                &[Some(1), Some(1), None],
            ],
        )
        .unwrap();
        let r = Hits::default().rank(&m).unwrap();
        assert!(r.converged);
        let order = r.order_best_to_worst();
        assert!(order[3] == 3, "lone dissenter ranks last: {order:?}");
        assert!(order[0] == 0 || order[0] == 1);
    }

    #[test]
    fn scores_match_dominant_singular_vector() {
        let m = ResponseMatrix::from_choices(
            2,
            &[2, 2],
            &[
                &[Some(0), Some(0)],
                &[Some(0), Some(1)],
                &[Some(1), Some(1)],
            ],
        )
        .unwrap();
        let r = Hits::default().rank(&m).unwrap();
        // Verify the fixed point: C Cᵀ s ∝ s.
        let ops = ResponseOps::new(&m);
        let mut w = vec![0.0; 4];
        let mut cct_s = vec![0.0; 3];
        ops.ct_apply(&r.scores, &mut w);
        ops.c_apply(&w, &mut cct_s);
        let lambda = hnd_linalg::vector::dot(&r.scores, &cct_s);
        let mut res = cct_s;
        hnd_linalg::vector::axpy(-lambda, &r.scores, &mut res);
        assert!(hnd_linalg::vector::norm2(&res) < 1e-3);
    }
}
