//! Property tests for the truth-discovery baselines: relabeling users must
//! relabel scores identically (permutation equivariance), and probability-
//! like scores must stay in range.

use hnd_models::{Hits, Investment, MajorityVote, PooledInvestment, TruthFinder};
use hnd_response::{AbilityRanker, ResponseMatrix};
use proptest::prelude::*;

fn random_matrix() -> impl Strategy<Value = ResponseMatrix> {
    (2usize..=8, 2usize..=6, 2u16..=4).prop_flat_map(|(m, n, k)| {
        proptest::collection::vec(proptest::option::weighted(0.85, 0u16..k), m * n).prop_map(
            move |choices| {
                let rows: Vec<Vec<Option<u16>>> = (0..m)
                    .map(|j| (0..n).map(|i| choices[j * n + i]).collect())
                    .collect();
                let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
                ResponseMatrix::from_choices(n, &vec![k; n], &refs).unwrap()
            },
        )
    })
}

fn rotate_perm(m: usize) -> Vec<usize> {
    (0..m).map(|i| (i + 1) % m).collect()
}

fn check_equivariance(name: &str, ranker: &dyn AbilityRanker, matrix: &ResponseMatrix) {
    let base = ranker.rank(matrix).expect("base rank");
    let perm = rotate_perm(matrix.n_users());
    let rotated = matrix.permute_users(&perm);
    let rot = ranker.rank(&rotated).expect("rotated rank");
    // User `perm[j]` of the original is user `j` of the rotated matrix.
    for (j, &src) in perm.iter().enumerate() {
        let a = base.scores[src];
        let b = rot.scores[j];
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
            "{name}: user {src} score changed under relabeling: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn baselines_are_permutation_equivariant(matrix in random_matrix()) {
        check_equivariance("HITS", &Hits::default(), &matrix);
        check_equivariance("TruthFinder", &TruthFinder::default(), &matrix);
        check_equivariance("Investment", &Investment::default(), &matrix);
        check_equivariance("PooledInvestment", &PooledInvestment::default(), &matrix);
        check_equivariance("MajorityVote", &MajorityVote, &matrix);
    }

    #[test]
    fn probability_scores_stay_in_unit_interval(matrix in random_matrix()) {
        for (name, ranking) in [
            ("TruthFinder", TruthFinder::default().rank(&matrix).unwrap()),
            ("Investment", Investment::default().rank(&matrix).unwrap()),
            ("PooledInvestment", PooledInvestment::default().rank(&matrix).unwrap()),
            ("MajorityVote", MajorityVote.rank(&matrix).unwrap()),
        ] {
            for &s in &ranking.scores {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{name}: score {s}");
            }
        }
    }

    #[test]
    fn hits_scores_are_unit_norm_and_sign_consistent(matrix in random_matrix()) {
        let r = Hits::default().rank(&matrix).unwrap();
        let norm: f64 = r.scores.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-6, "HITS scores must be unit norm");
        // Perron-Frobenius: the dominant singular vector can be chosen
        // non-negative; our iteration starts positive and must stay so.
        prop_assert!(r.scores.iter().all(|&s| s >= -1e-9), "{:?}", r.scores);
    }
}
