//! Crash-recovery property tests: for generated edit streams, recovery
//! from (snapshot, WAL truncated at **every** frame boundary) must be
//! bit-identical to a never-crashed engine replaying the same committed
//! prefix — same matrix, same version, same ranking scores, to the last
//! bit. A frame-boundary cut is a *clean* crash (the torn/corrupted cuts
//! live in `corruption.rs`), so recovery must also report zero damage.

use hnd_core::{SolverKind, SolverOpts};
use hnd_response::{rank_many, ResponseEdit, ResponseLog};
use hnd_store::{SessionStore, StoreOpts, WAL_MAGIC};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// One write in a generated stream: `(user, item, choice)`.
type Write = (usize, usize, Option<u16>);

/// A generated roster + edit stream: `(m, n, options, batches)`.
type EditStream = (usize, usize, Vec<u16>, Vec<Vec<Write>>);

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "hnd-recovery-prop-{}-{tag}-{k}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small rosters, many overlapping writes: overwrites and retractions are
/// the edits whose `from` side recovery must get exactly right.
fn edit_stream() -> impl Strategy<Value = EditStream> {
    (2usize..=6, 1usize..=4).prop_flat_map(|(m, n)| {
        let options = proptest::collection::vec(1u16..=4, n);
        options.prop_flat_map(move |opts| {
            let cell = (0..m, 0..n);
            let batch = proptest::collection::vec(
                cell.prop_flat_map(move |(u, i)| {
                    (Just(u), Just(i), proptest::option::weighted(0.8, 0..5u16))
                }),
                1..6,
            );
            let opts2 = opts.clone();
            (
                Just(m),
                Just(n),
                Just(opts),
                proptest::collection::vec(batch, 2..6).prop_map(move |batches| {
                    batches
                        .into_iter()
                        .map(|b| {
                            b.into_iter()
                                .map(|(u, i, c)| (u, i, c.map(|o| o % opts2[i])))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }),
            )
        })
    })
}

/// Byte offsets of every frame boundary in a WAL image (positions a
/// crash could cleanly cut the file at), including the end of file.
fn frame_boundaries(wal: &[u8]) -> Vec<u64> {
    assert_eq!(&wal[..8], &WAL_MAGIC);
    let mut offsets = vec![8u64];
    let mut pos = 8usize;
    while pos + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        assert!(pos <= wal.len(), "generated WAL must be well-formed");
        offsets.push(pos as u64);
    }
    offsets
}

/// The never-crashed oracle: a fresh log fed exactly the first
/// `version - base` committed edits on top of the registration-time state.
fn oracle_at(base_state: &ResponseLog, history: &[ResponseEdit], version: u64) -> ResponseLog {
    let choices = (0..base_state.n_users())
        .flat_map(|u| base_state.user_row(u).to_vec())
        .collect();
    let mut oracle = ResponseLog::restore(
        base_state.n_users(),
        base_state.n_items(),
        base_state.options(),
        choices,
        base_state.version(),
    )
    .unwrap();
    for &edit in &history[..(version - base_state.version()) as usize] {
        oracle.replay(edit).unwrap();
    }
    oracle
}

/// Bitwise ranking comparison through the same solver configuration both
/// engines would use (identical matrices ⇒ identical solves ⇒ identical
/// scores, down to the last bit — or the identical failure).
fn assert_rankings_bit_identical(a: &ResponseLog, b: &ResponseLog, ctx: &str) {
    let solver = SolverKind::Power.build(SolverOpts {
        orient: false,
        ..Default::default()
    });
    let (ma, mb) = (a.to_matrix(), b.to_matrix());
    let mut results = rank_many(solver.as_ranker(), &[&ma, &mb]).into_iter();
    let (ra, rb) = (results.next().unwrap(), results.next().unwrap());
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => assert_eq!(ra.scores, rb.scores, "{ctx}: scores diverged"),
        (Err(_), Err(_)) => {} // both degenerate in the same state
        (ra, rb) => panic!("{ctx}: recovered {ra:?} vs oracle {rb:?}"),
    }
}

/// Copies a session's files into a fresh dir, truncating the WAL to
/// `cut` bytes — the on-disk picture after a crash at that boundary.
fn crashed_copy(src: &Path, dst: &Path, id_hex: &str, cut: u64) {
    std::fs::create_dir_all(dst).unwrap();
    let wal = std::fs::read(src.join(format!("sess-{id_hex}.wal"))).unwrap();
    std::fs::write(dst.join(format!("sess-{id_hex}.wal")), &wal[..cut as usize]).unwrap();
    std::fs::copy(
        src.join(format!("sess-{id_hex}.snap")),
        dst.join(format!("sess-{id_hex}.snap")),
    )
    .unwrap();
}

const ID_HEX: &str = "0000000000000007";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: crash at any frame boundary, recover,
    /// and you are *exactly* some committed prefix — state, version,
    /// retained tail history, and ranking all bit-identical to a log
    /// that simply never went past that prefix.
    #[test]
    fn recovery_at_every_frame_boundary_is_bit_identical(
        (m, _n, options, batches) in edit_stream()
    ) {
        let dir = temp_dir("frames");
        let store = SessionStore::open(&dir, StoreOpts {
            flush: hnd_store::FlushPolicy::Os,
            snapshot_every: u64::MAX,
        }).unwrap();

        let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
        // Register after the first batch: the snapshot base is a
        // *non-zero* version, so recovery anchors mid-history.
        for &(u, i, c) in &batches[0] {
            log.set(u, i, c).unwrap();
        }
        let base_state = log.clone();
        store.register(7, &log).unwrap();
        for batch in &batches[1..] {
            for &(u, i, c) in batch {
                log.set(u, i, c).unwrap();
            }
            store.sync_from(7, &log).unwrap();
        }
        let history = log
            .history_range(base_state.version(), log.version())
            .unwrap()
            .to_vec();

        let wal_bytes = std::fs::read(dir.join(format!("sess-{ID_HEX}.wal"))).unwrap();
        let boundaries = frame_boundaries(&wal_bytes);
        // Boundary 0 cuts even the header; recovery then leans on the
        // snapshot alone. Every later cut keeps header + k edit frames.
        for &cut in &boundaries {
            let crash_dir = dir.join(format!("crash-{cut}"));
            crashed_copy(&dir, &crash_dir, ID_HEX, cut);
            let crashed = SessionStore::open(&crash_dir, StoreOpts::default()).unwrap();
            let (recovered, report) = crashed.load(7).unwrap();

            prop_assert!(
                recovered.version() >= base_state.version()
                    && recovered.version() <= log.version(),
                "recovered to {} outside the committed range", recovered.version()
            );
            let oracle = oracle_at(&base_state, &history, recovered.version());
            prop_assert_eq!(recovered.version(), oracle.version());
            prop_assert_eq!(recovered.to_matrix(), oracle.to_matrix());
            prop_assert_eq!(report.recovered_version, recovered.version());
            if cut >= boundaries[1] {
                // Cuts that keep the header are *clean* prefixes: frame
                // framing absorbs them with zero damage events.
                prop_assert!(report.damage.is_empty(), "clean cut reported {:?}", report.damage);
                prop_assert_eq!(
                    report.replayed_edits,
                    recovered.version() - base_state.version()
                );
            }
            assert_rankings_bit_identical(&recovered, &oracle, "boundary crash");
        }
        // The full file recovers the head itself.
        let full = SessionStore::open(&dir, StoreOpts::default()).unwrap();
        let (head, _) = full.load(7).unwrap();
        prop_assert_eq!(head.version(), log.version());
        prop_assert_eq!(head.to_matrix(), log.to_matrix());

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Recovery composes with ongoing service: after recovering from any
    /// prefix, the store keeps accepting the remaining committed edits
    /// and ends bit-identical to the uncrashed head.
    #[test]
    fn recovered_store_resumes_the_stream((m, _n, options, batches) in edit_stream()) {
        let dir = temp_dir("resume");
        let store = SessionStore::open(&dir, StoreOpts {
            flush: hnd_store::FlushPolicy::Os,
            snapshot_every: u64::MAX,
        }).unwrap();
        let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
        store.register(7, &log).unwrap();
        for batch in batches.iter() {
            for &(u, i, c) in batch {
                log.set(u, i, c).unwrap();
            }
            store.sync_from(7, &log).unwrap();
        }

        let wal_bytes = std::fs::read(dir.join(format!("sess-{ID_HEX}.wal"))).unwrap();
        let boundaries = frame_boundaries(&wal_bytes);
        let mid = boundaries[boundaries.len() / 2];
        let crash_dir = dir.join("crash-mid");
        crashed_copy(&dir, &crash_dir, ID_HEX, mid);

        let crashed = SessionStore::open(&crash_dir, StoreOpts::default()).unwrap();
        let (mut recovered, _) = crashed.load(7).unwrap();
        // Re-drive the lost suffix of the committed stream…
        let missing = log
            .history_range(recovered.version(), log.version())
            .unwrap()
            .to_vec();
        for edit in missing {
            recovered.replay(edit).unwrap();
            crashed.sync_from(7, &recovered).unwrap();
        }
        // …and a second crash-free recovery lands exactly at head.
        let (rerecovered, report) = crashed.load(7).unwrap();
        prop_assert_eq!(rerecovered.version(), log.version());
        prop_assert_eq!(rerecovered.to_matrix(), log.to_matrix());
        prop_assert!(report.damage.is_empty());
        assert_rankings_bit_identical(&rerecovered, &log, "resumed stream");

        std::fs::remove_dir_all(&dir).ok();
    }
}
