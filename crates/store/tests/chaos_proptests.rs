//! Chaos determinism property tests: a seeded [`FaultPlan`] must make the
//! *entire* faulted execution a pure function of `(seed, intensity,
//! workload)` — the same workload driven twice against the same seed sees
//! the same faults at the same occurrences, produces byte-identical
//! on-disk state, returns the same errors in the same order, and recovers
//! to the same committed prefix, bit for bit.
//!
//! The companion guarantee is *no silent loss*: however the schedule
//! faulted, a fault-free reopen recovers every acknowledged commit, and
//! the recovered state is exactly some committed prefix of the stream.

use hnd_response::ResponseLog;
use hnd_store::{FaultPlan, FlushPolicy, SessionStore, StoreOpts, StoreStats};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// One write in a generated stream: `(user, item, choice)`.
type Write = (usize, usize, Option<u16>);

/// A generated roster + edit stream: `(m, n, options, batches)`.
type EditStream = (usize, usize, Vec<u16>, Vec<Vec<Write>>);

const SESSION: u64 = 11;
const ID_HEX: &str = "000000000000000b";

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hnd-chaos-prop-{}-{tag}-{k}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Small rosters, a handful of batches — enough occurrences per I/O class
/// for the plan to bite at the tested intensities.
fn edit_stream() -> impl Strategy<Value = EditStream> {
    (2usize..=5, 1usize..=3).prop_flat_map(|(m, n)| {
        let options = proptest::collection::vec(2u16..=4, n);
        options.prop_flat_map(move |opts| {
            let cell = (0..m, 0..n);
            let batch = proptest::collection::vec(
                cell.prop_flat_map(move |(u, i)| {
                    (Just(u), Just(i), proptest::option::weighted(0.8, 0..4u16))
                }),
                1..5,
            );
            let opts2 = opts.clone();
            (
                Just(m),
                Just(n),
                Just(opts),
                proptest::collection::vec(batch, 2..6).prop_map(move |batches| {
                    batches
                        .into_iter()
                        .map(|b| {
                            b.into_iter()
                                .map(|(u, i, c)| (u, i, c.map(|o| o % opts2[i])))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }),
            )
        })
    })
}

/// Everything observable about one faulted run, in deterministic order.
#[derive(Debug, PartialEq)]
struct ChaosOutcome {
    fingerprint: u64,
    injected: (u64, u64, u64),
    stats: StoreStats,
    /// Per-batch sync result: `Ok(version)` or the error's display string.
    syncs: Vec<Result<u64, String>>,
    /// A load attempted *under* the plan (read faults may hit it).
    faulted_load: Result<u64, String>,
    wal_bytes: Vec<u8>,
    snap_bytes: Vec<u8>,
    /// Fault-free recovery: `(version, matrix)` of the reopened session.
    recovered: (u64, Vec<Vec<Option<u16>>>),
}

/// Drives the full workload against a freshly chaos-injected store and
/// returns every observable outcome. The registration happens *before*
/// the plan is installed so the session always exists; everything after
/// runs under fire.
fn run_chaos(
    tag: &str,
    seed: u64,
    intensity: f64,
    (m, _n, options, batches): &EditStream,
) -> ChaosOutcome {
    let dir = temp_dir(tag);
    let plan = Arc::new(FaultPlan::seeded(seed, intensity));
    let mut log = ResponseLog::new(*m, options.len(), options).unwrap();
    let (syncs, faulted_load, stats) = {
        let store = SessionStore::open(
            &dir,
            StoreOpts {
                flush: FlushPolicy::EveryCommit,
                snapshot_every: 4,
            },
        )
        .unwrap();
        store.register(SESSION, &log).unwrap();
        store.inject_faults(Arc::clone(&plan));

        let mut syncs = Vec::new();
        for batch in batches {
            for &(u, i, c) in batch {
                log.set(u, i, c).unwrap();
            }
            syncs.push(
                store
                    .sync_from(SESSION, &log)
                    .map(|_| log.version())
                    .map_err(|e| e.to_string()),
            );
        }
        let faulted_load = store
            .load(SESSION)
            .map(|(l, _)| l.version())
            .map_err(|e| e.to_string());
        (syncs, faulted_load, store.stats())
    };

    let wal_bytes = std::fs::read(dir.join(format!("sess-{ID_HEX}.wal"))).unwrap();
    let snap_bytes = std::fs::read(dir.join(format!("sess-{ID_HEX}.snap"))).unwrap();

    // Fault-free reopen: whatever the chaos did, recovery must land on a
    // committed prefix.
    let clean = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered_log, report) = clean.load(SESSION).unwrap();
    assert_eq!(report.recovered_version, recovered_log.version());
    let matrix = (0..recovered_log.n_users())
        .map(|u| recovered_log.user_row(u).to_vec())
        .collect();

    let outcome = ChaosOutcome {
        fingerprint: plan.fingerprint(),
        injected: (
            plan.injected(hnd_store::FaultKind::Transient),
            plan.injected(hnd_store::FaultKind::Hard),
            plan.injected(hnd_store::FaultKind::Torn),
        ),
        stats,
        syncs,
        faulted_load,
        wal_bytes,
        snap_bytes,
        recovered: (recovered_log.version(), matrix),
    };
    std::fs::remove_dir_all(&dir).ok();
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ same faults ⇒ bitwise-identical everything: schedule
    /// fingerprint, per-kind counts, per-batch errors, on-disk bytes, and
    /// the recovered state.
    #[test]
    fn same_seed_same_faults_same_recovery(
        stream in edit_stream(),
        seed in 0u64..u64::MAX,
        intensity in 0.0f64..0.30,
    ) {
        let a = run_chaos("a", seed, intensity, &stream);
        let b = run_chaos("b", seed, intensity, &stream);
        prop_assert_eq!(a, b);
    }

    /// No silent loss: every *acknowledged* sync survives a fault-free
    /// reopen, and the recovered state is exactly the committed stream at
    /// the recovered version.
    #[test]
    fn acknowledged_commits_survive_chaos(
        stream in edit_stream(),
        seed in 0u64..u64::MAX,
        intensity in 0.0f64..0.30,
    ) {
        let outcome = run_chaos("loss", seed, intensity, &stream);
        let acked = outcome
            .syncs
            .iter()
            .filter_map(|r| r.as_ref().ok().copied())
            .max()
            .unwrap_or(0);
        let (recovered_version, ref matrix) = outcome.recovered;
        prop_assert!(
            recovered_version >= acked,
            "acknowledged version {acked} lost: recovered only {recovered_version}"
        );

        // The recovered matrix is the oracle's state at that version.
        let (m, _n, ref options, ref batches) = stream;
        let mut oracle = ResponseLog::new(m, options.len(), options).unwrap();
        'outer: for batch in batches {
            for &(u, i, c) in batch {
                if oracle.version() == recovered_version {
                    break 'outer;
                }
                oracle.set(u, i, c).unwrap();
            }
        }
        prop_assert_eq!(oracle.version(), recovered_version, "recovered mid-nothing");
        let oracle_matrix: Vec<Vec<Option<u16>>> = (0..oracle.n_users())
            .map(|u| oracle.user_row(u).to_vec())
            .collect();
        prop_assert_eq!(matrix, &oracle_matrix);
    }
}
