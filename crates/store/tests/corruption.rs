//! Corruption-injection battery: torn final frame, flipped CRC byte,
//! zero-length tail, flipped payload byte, corrupt snapshot. Every case
//! must recover to the last valid frame with the damage **counted in
//! stats** — never a panic, never silently trusting bad bytes.

use hnd_response::ResponseLog;
use hnd_store::{DamageKind, FlushPolicy, RecoverySource, SessionStore, StoreError, StoreOpts};
use std::path::PathBuf;

const ID: u64 = 0x2a;
const ID_HEX: &str = "000000000000002a";

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hnd-corruption-{}-{tag}-{k}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a store with one session: register at v0, then three synced
/// batches (three edit frames). Returns `(dir, head_log, frame_offsets)`
/// where offsets are the byte boundaries of every frame in the WAL.
fn seeded(tag: &str) -> (PathBuf, ResponseLog, Vec<usize>) {
    let dir = temp_dir(tag);
    let store = SessionStore::open(
        &dir,
        StoreOpts {
            flush: FlushPolicy::Os,
            snapshot_every: u64::MAX,
        },
    )
    .unwrap();
    let mut log = ResponseLog::new(4, 3, &[4, 2, 3]).unwrap();
    store.register(ID, &log).unwrap();
    for batch in [
        vec![(0usize, 0usize, Some(3u16)), (1, 2, Some(0))],
        vec![(0, 0, Some(1)), (3, 1, Some(1))],
        vec![(2, 0, None), (2, 0, Some(2)), (0, 0, None)],
    ] {
        for (u, i, c) in batch {
            log.set(u, i, c).unwrap();
        }
        store.sync_from(ID, &log).unwrap();
    }
    let wal = std::fs::read(wal_path(&dir)).unwrap();
    let mut offsets = vec![8usize];
    let mut pos = 8;
    while pos + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        offsets.push(pos);
    }
    assert_eq!(offsets.len(), 5, "header + 3 edit frames");
    (dir, log, offsets)
}

fn wal_path(dir: &std::path::Path) -> PathBuf {
    dir.join(format!("sess-{ID_HEX}.wal"))
}

fn snap_path(dir: &std::path::Path) -> PathBuf {
    dir.join(format!("sess-{ID_HEX}.snap"))
}

/// The committed state at the version the damaged store recovered to.
fn prefix_state(head: &ResponseLog, version: u64) -> ResponseLog {
    let mut oracle = ResponseLog::new(head.n_users(), head.n_items(), head.options()).unwrap();
    for &edit in head.history_range(0, version).unwrap() {
        oracle.replay(edit).unwrap();
    }
    oracle
}

#[test]
fn torn_final_frame_recovers_to_last_valid_frame() {
    let (dir, head, offsets) = seeded("torn");
    let wal = std::fs::read(wal_path(&dir)).unwrap();
    // Cut mid-way through the final frame.
    let cut = (offsets[3] + offsets[4]) / 2;
    std::fs::write(wal_path(&dir), &wal[..cut]).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, report) = store.load(ID).unwrap();
    // The first two frames carry versions 0..4; the torn third is lost.
    assert_eq!(recovered.version(), 4);
    assert_eq!(recovered.to_matrix(), prefix_state(&head, 4).to_matrix());
    assert_eq!(report.replayed_edits, 4);
    assert_eq!(store.stats().damage_torn, 1, "torn tail counted");
    assert_eq!(store.stats().damaged_frames(), 1);

    // Not silent loss: the file was repaired to the valid prefix, and the
    // session keeps serving (appends land after the cut point).
    assert_eq!(
        std::fs::metadata(wal_path(&dir)).unwrap().len(),
        offsets[3] as u64
    );
    let mut resumed = recovered;
    resumed.set(1, 1, Some(0)).unwrap();
    store.sync_from(ID, &resumed).unwrap();
    let (again, _) = store.load(ID).unwrap();
    assert_eq!(again.version(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_crc_byte_recovers_to_last_valid_frame() {
    let (dir, head, offsets) = seeded("crcflip");
    let mut wal = std::fs::read(wal_path(&dir)).unwrap();
    // The CRC word sits 4 bytes into the final frame.
    wal[offsets[3] + 4] ^= 0x40;
    std::fs::write(wal_path(&dir), &wal).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, _) = store.load(ID).unwrap();
    assert_eq!(recovered.version(), 4);
    assert_eq!(recovered.to_matrix(), prefix_state(&head, 4).to_matrix());
    assert_eq!(store.stats().damage_crc, 1, "CRC mismatch counted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flipped_payload_byte_is_caught_by_the_checksum() {
    let (dir, head, offsets) = seeded("payloadflip");
    let mut wal = std::fs::read(wal_path(&dir)).unwrap();
    // Flip a byte *inside* the final frame's payload, not its envelope.
    wal[offsets[3] + 12] ^= 0x01;
    std::fs::write(wal_path(&dir), &wal).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, _) = store.load(ID).unwrap();
    assert_eq!(recovered.version(), 4, "poisoned frame must not apply");
    assert_eq!(recovered.to_matrix(), prefix_state(&head, 4).to_matrix());
    assert_eq!(store.stats().damage_crc, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_length_tail_recovers_every_real_frame() {
    let (dir, head, _) = seeded("zerotail");
    let mut wal = std::fs::read(wal_path(&dir)).unwrap();
    // A preallocated-but-never-written region after the last frame.
    wal.extend([0u8; 64]);
    std::fs::write(wal_path(&dir), &wal).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, _) = store.load(ID).unwrap();
    assert_eq!(
        recovered.version(),
        head.version(),
        "zero tail loses nothing"
    );
    assert_eq!(recovered.to_matrix(), head.to_matrix());
    assert_eq!(store.stats().damage_zero_tail, 1, "zeroed tail counted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_with_full_wal_replays_from_scratch() {
    let (dir, head, _) = seeded("snapgone");
    let mut snap = std::fs::read(snap_path(&dir)).unwrap();
    let last = snap.len() - 1;
    snap[last] ^= 0x08;
    std::fs::write(snap_path(&dir), &snap).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, report) = store.load(ID).unwrap();
    assert_eq!(report.source, RecoverySource::FullWalReplay);
    assert_eq!(recovered.version(), head.version());
    assert_eq!(recovered.to_matrix(), head.to_matrix());
    assert_eq!(store.stats().snapshot_failures, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_with_rebased_wal_errors_cleanly() {
    let (dir, _, _) = seeded("snapanchor");
    // Rebase the WAL (snapshot + header-only rewrite at the head) so it
    // can no longer anchor full history…
    {
        let store = SessionStore::open(
            &dir,
            StoreOpts {
                flush: FlushPolicy::Os,
                snapshot_every: u64::MAX,
            },
        )
        .unwrap();
        let (mut log, _) = store.load(ID).unwrap();
        log.set(1, 0, Some(1)).unwrap();
        log.truncate_history(log.version());
        store.sync_from(ID, &log).unwrap();
        assert_eq!(store.stats().wal_rotations, 1);
    }
    // …then destroy the snapshot. Nothing can recover this session, and
    // the store must say so with an error, not a panic or a wrong state.
    let mut snap = std::fs::read(snap_path(&dir)).unwrap();
    let last = snap.len() - 1;
    snap[last] ^= 0x08;
    std::fs::write(snap_path(&dir), &snap).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    assert!(matches!(store.load(ID), Err(StoreError::Corrupt { .. })));
    assert_eq!(store.stats().snapshot_failures, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_with_destroyed_header_leans_on_the_snapshot() {
    let (dir, _, _) = seeded("headergone");
    // Snapshot the head state first so it is recoverable on its own.
    {
        let store = SessionStore::open(
            &dir,
            StoreOpts {
                flush: FlushPolicy::Os,
                snapshot_every: 1, // snapshot on every sync
            },
        )
        .unwrap();
        let (mut log, _) = store.load(ID).unwrap();
        log.set(1, 0, Some(1)).unwrap();
        store.sync_from(ID, &log).unwrap();
    }
    let head_version = 7; // 6 seeded committed edits + 1 above
    let mut wal = std::fs::read(wal_path(&dir)).unwrap();
    wal[0] ^= 0xFF; // magic gone: the WAL is unreadable wholesale
    std::fs::write(wal_path(&dir), &wal).unwrap();

    let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
    let (recovered, report) = store.load(ID).unwrap();
    assert_eq!(report.source, RecoverySource::Snapshot);
    assert_eq!(recovered.version(), head_version);
    assert!(report.damage.contains(&DamageKind::Malformed));
    assert!(store.stats().damage_malformed >= 1);
    std::fs::remove_dir_all(&dir).ok();
}
