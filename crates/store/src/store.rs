//! [`SessionStore`]: the per-session file pairs behind one directory.
//!
//! Concurrency contract: the store is `Sync`; callers on different
//! sessions never contend (per-session handles behind their own mutex),
//! and the global map lock covers only handle lookup/creation. The
//! service layer's single-writer-per-session checkout discipline means a
//! session's WAL is appended by at most one thread at a time; the store
//! still takes the per-session lock so read paths (catch-up ranges,
//! stats) are safe against it.

use crate::chaos::{self, FaultKind, FaultOp, FaultPlan, MAX_TRANSIENT_RETRIES};
use crate::snapshot::{read_snapshot, write_snapshot};
use crate::wal::{read_wal, FlushPolicy, SessionWal};
use crate::{Counters, StoreError};
use hnd_response::{ResponseDelta, ResponseEdit, ResponseLog};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Durability and compaction knobs for a [`SessionStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOpts {
    /// When WAL appends are fsynced (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
    /// Rewrite the session's snapshot once its WAL tail (edits past the
    /// last snapshot) reaches this many edits — bounds replay work at
    /// load time. `u64::MAX` disables automatic snapshotting (spill
    /// still registers the initial one).
    pub snapshot_every: u64,
}

impl Default for StoreOpts {
    fn default() -> Self {
        StoreOpts {
            flush: FlushPolicy::default(),
            snapshot_every: 4096,
        }
    }
}

/// Cumulative counters for the whole store (all sessions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Edit frames appended across all WALs.
    pub frames_appended: u64,
    /// Individual edits those frames carried.
    pub edits_appended: u64,
    /// `fdatasync` calls issued (group commit: compare with
    /// `frames_appended` for the batching ratio).
    pub fsyncs: u64,
    /// Binary snapshots written.
    pub snapshots_written: u64,
    /// WAL rebases (snapshot + header-only rewrite) — each one moves the
    /// oldest catch-up version the store can serve forward.
    pub wal_rotations: u64,
    /// Sessions rehydrated from disk.
    pub loads: u64,
    /// WAL edits replayed onto snapshots during those loads.
    pub replayed_edits: u64,
    /// WAL tails found zeroed where a frame should start.
    pub damage_zero_tail: u64,
    /// WAL tails torn mid-frame.
    pub damage_torn: u64,
    /// Frames whose checksum failed.
    pub damage_crc: u64,
    /// Frames that parsed or chained wrong (plus bad magics).
    pub damage_malformed: u64,
    /// Snapshots that failed CRC/parse and were bypassed at load.
    pub snapshot_failures: u64,
    /// Transient WAL-append faults absorbed by retry.
    pub retries_append: u64,
    /// Transient fsync faults absorbed by retry.
    pub retries_fsync: u64,
    /// Transient WAL/snapshot read faults absorbed by retry.
    pub retries_read: u64,
    /// Transient snapshot-write faults absorbed by retry.
    pub retries_snapshot: u64,
    /// Injected transient faults (chaos plans only).
    pub faults_transient: u64,
    /// Injected hard faults (chaos plans only).
    pub faults_hard: u64,
    /// Injected torn writes (chaos plans only).
    pub faults_torn: u64,
}

impl StoreStats {
    /// Total damaged-tail events of any kind.
    pub fn damaged_frames(&self) -> u64 {
        self.damage_zero_tail + self.damage_torn + self.damage_crc + self.damage_malformed
    }

    /// Total transient faults absorbed by retry, across all op classes.
    pub fn retries(&self) -> u64 {
        self.retries_append + self.retries_fsync + self.retries_read + self.retries_snapshot
    }

    /// Total chaos-injected faults of any kind.
    pub fn faults_injected(&self) -> u64 {
        self.faults_transient + self.faults_hard + self.faults_torn
    }
}

/// Where a [`SessionStore::load`] got its base state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Snapshot read, WAL tail replayed on top (the normal path).
    Snapshot,
    /// Snapshot missing/corrupt; the WAL alone covered the full history
    /// (base version 0) and was replayed from an empty roster.
    FullWalReplay,
}

/// What one [`SessionStore::load`] did — surfaced so callers can fold it
/// into their own stats and tests can assert damage was *counted*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Version of the recovered log.
    pub recovered_version: u64,
    /// WAL edits replayed on top of the base state.
    pub replayed_edits: u64,
    /// Damage encountered (empty for a clean recovery).
    pub damage: Vec<crate::DamageKind>,
    /// Whether the base state came from the snapshot or a full replay.
    pub source: RecoverySource,
}

struct SessionFiles {
    wal: SessionWal,
    /// Version of the last snapshot written (replay cost bound).
    snapshot_version: u64,
}

/// One directory of per-session `sess-<id>.wal` / `sess-<id>.snap` pairs.
pub struct SessionStore {
    dir: PathBuf,
    opts: StoreOpts,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionFiles>>>>,
    /// Ids present on disk but not yet opened (discovered at
    /// [`Self::open`]; adopted lazily on first touch).
    dormant: Mutex<std::collections::BTreeSet<u64>>,
    counters: Counters,
}

fn wal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("sess-{id:016x}.wal"))
}

fn snap_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("sess-{id:016x}.snap"))
}

impl SessionStore {
    /// Opens (creating if needed) a store directory, discovering any
    /// sessions a previous process left behind.
    pub fn open(dir: impl Into<PathBuf>, opts: StoreOpts) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut dormant = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name
                .strip_prefix("sess-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    dormant.insert(id);
                }
            }
        }
        Ok(SessionStore {
            dir,
            opts,
            sessions: Mutex::new(BTreeMap::new()),
            dormant: Mutex::new(dormant),
            counters: Counters::default(),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every session with durable state: opened handles plus on-disk
    /// sessions not yet touched — what a restarting manager adopts.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: std::collections::BTreeSet<u64> =
            self.sessions.lock().unwrap().keys().copied().collect();
        ids.extend(self.dormant.lock().unwrap().iter().copied());
        ids.into_iter().collect()
    }

    /// Cumulative store-wide counters.
    pub fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    /// Installs the serving layer's telemetry hub: WAL appends and fsyncs
    /// start feeding the `wal_append`/`fsync` stage histograms. Write-once
    /// (a second call is ignored); absent or disabled hubs cost one branch
    /// per append.
    pub fn attach_telemetry(&self, hub: std::sync::Arc<hnd_telemetry::TelemetryHub>) {
        self.counters.set_telemetry(hub);
    }

    /// Installs a deterministic chaos [`FaultPlan`] under every I/O path
    /// of this store: appends, fsyncs, snapshot writes, and WAL/snapshot
    /// reads consult the plan per call and fail as it dictates, with
    /// transients absorbed by bounded-backoff retry (counted in
    /// [`StoreStats`]). Write-once (a second plan is ignored). Intended
    /// for the chaos battery; production stores never install one.
    pub fn inject_faults(&self, plan: Arc<FaultPlan>) {
        self.counters.set_chaos(plan);
    }

    /// Consults the chaos plan for a read-class op, absorbing transients
    /// by retry. Returns `Err` for a hard (or retry-exhausted) fault —
    /// the whole read fails, as a failing device would make it.
    fn read_gate(&self, op: FaultOp) -> Result<(), StoreError> {
        let mut attempt = 0u32;
        loop {
            match self.counters.fault(op) {
                None => return Ok(()),
                Some(FaultKind::Transient) if attempt < MAX_TRANSIENT_RETRIES => {
                    self.counters.bump_retry(op);
                    chaos::backoff(attempt);
                    attempt += 1;
                }
                Some(kind @ FaultKind::Transient) => {
                    return Err(chaos::fault_error(op, kind).into());
                }
                // Torn is meaningless for reads; degrade to hard.
                Some(_) => return Err(chaos::fault_error(op, FaultKind::Hard).into()),
            }
        }
    }

    /// Writes `log`'s snapshot behind the chaos gate. Torn degrades to
    /// hard: the snapshot path is already atomic (tmp + fsync + rename),
    /// so a failed write of any kind leaves the previous snapshot intact.
    fn write_snapshot_guarded(&self, id: u64, log: &ResponseLog) -> Result<(), StoreError> {
        let mut attempt = 0u32;
        loop {
            match self.counters.fault(FaultOp::SnapshotWrite) {
                None => break,
                Some(FaultKind::Transient) if attempt < MAX_TRANSIENT_RETRIES => {
                    self.counters.bump_retry(FaultOp::SnapshotWrite);
                    chaos::backoff(attempt);
                    attempt += 1;
                }
                Some(kind @ FaultKind::Transient) => {
                    return Err(chaos::fault_error(FaultOp::SnapshotWrite, kind).into());
                }
                Some(_) => {
                    return Err(chaos::fault_error(FaultOp::SnapshotWrite, FaultKind::Hard).into());
                }
            }
        }
        write_snapshot(&snap_path(&self.dir, id), log)?;
        self.counters.bump_snapshots();
        Ok(())
    }

    fn handle(&self, id: u64) -> Option<Arc<Mutex<SessionFiles>>> {
        if let Some(h) = self.sessions.lock().unwrap().get(&id) {
            return Some(Arc::clone(h));
        }
        // Not open: adopt from disk if a previous process wrote it.
        if !self.dormant.lock().unwrap().contains(&id) {
            return None;
        }
        let opened = self.open_existing(id).ok()?;
        let mut map = self.sessions.lock().unwrap();
        let h = map
            .entry(id)
            .or_insert_with(|| Arc::new(Mutex::new(opened)));
        self.dormant.lock().unwrap().remove(&id);
        Some(Arc::clone(h))
    }

    fn open_existing(&self, id: u64) -> Result<SessionFiles, StoreError> {
        self.read_gate(FaultOp::WalRead)?;
        let (wal, contents) = SessionWal::open(&wal_path(&self.dir, id), self.opts.flush)?;
        for &kind in &contents.damage {
            self.counters.record_damage(kind);
        }
        let snapshot_version = read_snapshot(&snap_path(&self.dir, id))
            .map(|log| log.version())
            .unwrap_or(wal.base_version);
        Ok(SessionFiles {
            wal,
            snapshot_version,
        })
    }

    /// Registers a session: fresh WAL headered at the log's current
    /// version plus an initial snapshot (a log's pre-existing state — a
    /// bulk load, a truncated history — is not expressible as WAL edits,
    /// so durability starts from a snapshot, always).
    pub fn register(&self, id: u64, log: &ResponseLog) -> Result<(), StoreError> {
        let wal = SessionWal::create(
            &wal_path(&self.dir, id),
            self.opts.flush,
            log.n_users() as u64,
            log.n_items() as u64,
            log.options(),
            log.version(),
        )?;
        self.write_snapshot_guarded(id, log)?;
        self.dormant.lock().unwrap().remove(&id);
        self.sessions.lock().unwrap().insert(
            id,
            Arc::new(Mutex::new(SessionFiles {
                wal,
                snapshot_version: log.version(),
            })),
        );
        Ok(())
    }

    /// Ships everything the WAL is missing: appends
    /// `log.history_range(wal_tail, head)` as one frame (group-commit
    /// durability per [`StoreOpts::flush`]). When the log's in-memory
    /// history no longer reaches back to the WAL tail (aggressive
    /// `truncate_history`), the store **rebases**: snapshot at head +
    /// header-only WAL rewrite, keeping the edit stream contiguous at the
    /// cost of the older catch-up range (counted in
    /// [`StoreStats::wal_rotations`]).
    ///
    /// Unregistered sessions are registered implicitly, so this is the
    /// single call sites need on the commit path. Returns the number of
    /// edits shipped.
    pub fn sync_from(&self, id: u64, log: &ResponseLog) -> Result<u64, StoreError> {
        let Some(handle) = self.handle(id) else {
            self.register(id, log)?;
            return Ok(0);
        };
        let mut files = handle.lock().unwrap();
        let head = log.version();
        let tail = files.wal.tail_version;
        if head == tail {
            return Ok(0);
        }
        let shipped = if head > tail && log.history_base_version() <= tail {
            let edits = log
                .history_range(tail, head)
                .map_err(StoreError::Response)?
                .to_vec();
            files.wal.append(tail, &edits, &self.counters)?;
            edits.len() as u64
        } else {
            // Gap (history truncated past the WAL tail) or regression (a
            // re-registered roster): rebase on a fresh snapshot.
            self.write_snapshot_guarded(id, log)?;
            files.snapshot_version = head;
            files.wal.rotate(head, &self.counters)?;
            0
        };
        if files.wal.tail_version - files.snapshot_version >= self.opts.snapshot_every {
            // The periodic snapshot only bounds replay work — the edits
            // above are already in the WAL, so a failure here degrades
            // (counted) instead of failing an otherwise durable commit.
            match self.write_snapshot_guarded(id, log) {
                Ok(()) => files.snapshot_version = head,
                Err(_) => self.counters.bump_snapshot_failures(),
            }
        }
        Ok(shipped)
    }

    /// The eviction path: ship the tail ([`Self::sync_from`]) and force
    /// any group-commit debt to disk — an evicted session's only state is
    /// the durable one, so its WAL may owe nothing. Returns edits shipped.
    pub fn spill(&self, id: u64, log: &ResponseLog) -> Result<u64, StoreError> {
        let shipped = self.sync_from(id, log)?;
        if let Some(handle) = self.handle(id) {
            handle.lock().unwrap().wal.flush(&self.counters)?;
        }
        Ok(shipped)
    }

    /// Forces every session's group-commit debt to disk (shutdown
    /// barrier).
    pub fn flush_all(&self) -> Result<(), StoreError> {
        let handles: Vec<Arc<Mutex<SessionFiles>>> =
            self.sessions.lock().unwrap().values().cloned().collect();
        for h in handles {
            h.lock().unwrap().wal.flush(&self.counters)?;
        }
        Ok(())
    }

    /// Rehydrates a session: snapshot + WAL-tail replay through the log's
    /// validated [`ResponseLog::replay`]. Tolerates a damaged WAL tail
    /// (recovers to the last valid frame) and a corrupt snapshot *if* the
    /// WAL still covers full history (base 0); counts everything it
    /// tolerated in [`StoreStats`] and the returned report.
    pub fn load(&self, id: u64) -> Result<(ResponseLog, RecoveryReport), StoreError> {
        let handle = self.handle(id);
        if handle.is_none()
            && !wal_path(&self.dir, id).exists()
            && !snap_path(&self.dir, id).exists()
        {
            return Err(StoreError::UnknownSession { id });
        }
        let _guard = handle.as_ref().map(|h| h.lock().unwrap());
        self.read_gate(FaultOp::WalRead)?;
        // Read the WAL from disk rather than trusting in-memory state:
        // this is the same path a post-crash process takes. A WAL too
        // mangled to even read (lost magic/header) degrades to
        // snapshot-only recovery instead of failing the session.
        let contents = match read_wal(&wal_path(&self.dir, id)) {
            Ok(contents) => {
                // Damage here landed *after* the handle was opened
                // (open-time damage was counted and truncated away by
                // `open_existing`); count it so no event is ever lost.
                for &kind in &contents.damage {
                    self.counters.record_damage(kind);
                }
                Some(contents)
            }
            Err(_) => {
                self.counters.record_damage(crate::DamageKind::Malformed);
                None
            }
        };
        let mut damage: Vec<crate::DamageKind> = contents
            .as_ref()
            .map(|c| c.damage.clone())
            .unwrap_or_else(|| vec![crate::DamageKind::Malformed]);

        self.read_gate(FaultOp::SnapshotRead)?;
        let (mut log, source) = match read_snapshot(&snap_path(&self.dir, id)) {
            Ok(log) => (log, RecoverySource::Snapshot),
            Err(snap_err) => {
                self.counters.bump_snapshot_failures();
                match contents.as_ref() {
                    Some(c) if c.base_version == 0 => {
                        let empty = ResponseLog::restore(
                            c.n_users as usize,
                            c.n_items as usize,
                            &c.options,
                            vec![None; (c.n_users * c.n_items) as usize],
                            0,
                        )
                        .map_err(StoreError::Response)?;
                        (empty, RecoverySource::FullWalReplay)
                    }
                    // Snapshot bad and the WAL can't anchor full history:
                    // nothing to recover from.
                    _ => return Err(snap_err),
                }
            }
        };

        let mut replayed = 0u64;
        let batches = contents
            .as_ref()
            .map(|c| c.batches.as_slice())
            .unwrap_or(&[]);
        'frames: for (from_version, edits) in batches {
            for (k, &edit) in edits.iter().enumerate() {
                let at = from_version + k as u64;
                if at < log.version() {
                    continue; // older than the snapshot
                }
                if log.replay(edit).is_err() {
                    // A frame that passed CRC but does not chain onto the
                    // recovered state: stop at the last consistent
                    // version rather than guess.
                    damage.push(crate::DamageKind::Malformed);
                    self.counters.record_damage(crate::DamageKind::Malformed);
                    break 'frames;
                }
                replayed += 1;
            }
        }
        self.counters.bump_loads(replayed);
        let report = RecoveryReport {
            recovered_version: log.version(),
            replayed_edits: replayed,
            damage,
            source,
        };
        Ok((log, report))
    }

    /// The raw committed edits spanning versions `from..to` — the durable
    /// continuation of `ResponseLog::history_range` once the in-memory
    /// history has been truncated. Compose with
    /// `ResponseDelta::compacted` for a catch-up delta.
    pub fn edits_range(
        &self,
        id: u64,
        from: u64,
        to: u64,
    ) -> Result<Vec<ResponseEdit>, StoreError> {
        let handle = self.handle(id).ok_or(StoreError::UnknownSession { id })?;
        let _guard = handle.lock().unwrap();
        self.read_gate(FaultOp::WalRead)?;
        let contents = read_wal(&wal_path(&self.dir, id))?;
        if from > to || from < contents.base_version || to > contents.tail_version {
            return Err(StoreError::RangeUnavailable {
                id,
                from,
                to,
                base: contents.base_version,
                head: contents.tail_version,
            });
        }
        let mut out = Vec::with_capacity((to - from) as usize);
        for (from_version, edits) in &contents.batches {
            for (k, &edit) in edits.iter().enumerate() {
                let at = from_version + k as u64;
                if at >= from && at < to {
                    out.push(edit);
                }
            }
        }
        Ok(out)
    }

    /// One-call client catch-up straight off the WAL: the compacted delta
    /// from `from` to the durable head, without rehydrating anything. The
    /// durable twin of `ResponseLog::compact_range` — the serving layer
    /// falls back to this when a client's cached version predates the
    /// in-memory history (`truncate_history`) or the whole session is
    /// spilled.
    pub fn catch_up(&self, id: u64, from: u64) -> Result<ResponseDelta, StoreError> {
        let handle = self.handle(id).ok_or(StoreError::UnknownSession { id })?;
        let _guard = handle.lock().unwrap();
        self.read_gate(FaultOp::WalRead)?;
        let contents = read_wal(&wal_path(&self.dir, id))?;
        let head = contents.tail_version;
        if from < contents.base_version || from > head {
            return Err(StoreError::RangeUnavailable {
                id,
                from,
                to: head,
                base: contents.base_version,
                head,
            });
        }
        let mut edits = Vec::new();
        for (from_version, batch) in &contents.batches {
            for (k, &edit) in batch.iter().enumerate() {
                if from_version + k as u64 >= from {
                    edits.push(edit);
                }
            }
        }
        Ok(ResponseDelta::compacted(from, head, &edits))
    }

    /// Deletes a session's durable files (session close).
    pub fn remove(&self, id: u64) -> Result<(), StoreError> {
        self.sessions.lock().unwrap().remove(&id);
        self.dormant.lock().unwrap().remove(&id);
        match std::fs::remove_file(wal_path(&self.dir, id)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e.into()),
            _ => {}
        }
        match std::fs::remove_file(snap_path(&self.dir, id)) {
            Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e.into()),
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("hnd-store-test-{}-{tag}-{k}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn filled_log() -> ResponseLog {
        let mut log = ResponseLog::new(4, 3, &[4, 2, 3]).unwrap();
        log.submit([(0, 0, Some(3)), (1, 2, Some(0)), (3, 1, Some(1))])
            .unwrap();
        log
    }

    #[test]
    fn register_sync_load_round_trip() {
        let dir = temp_dir("rt");
        let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
        let mut log = filled_log();
        store.register(7, &log).unwrap();

        log.submit([(2, 0, Some(1)), (0, 0, Some(2))]).unwrap();
        assert_eq!(store.sync_from(7, &log).unwrap(), 2);
        // Idempotent: nothing new to ship.
        assert_eq!(store.sync_from(7, &log).unwrap(), 0);

        let (back, report) = store.load(7).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot);
        assert_eq!(report.replayed_edits, 2);
        assert!(report.damage.is_empty());
        assert_eq!(back.version(), log.version());
        assert_eq!(back.to_matrix(), log.to_matrix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_store_adopts_and_serves_sessions() {
        let dir = temp_dir("reopen");
        let mut log = filled_log();
        {
            let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
            store.register(3, &log).unwrap();
            log.set(2, 2, Some(2)).unwrap();
            store.spill(3, &log).unwrap();
        }
        // "Restart": a brand-new store over the same directory.
        let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
        assert_eq!(store.session_ids(), vec![3]);
        let (back, _) = store.load(3).unwrap();
        assert_eq!(back.to_matrix(), log.to_matrix());

        // And the WAL keeps extending across the restart.
        log.set(0, 1, Some(0)).unwrap();
        assert_eq!(store.sync_from(3, &log).unwrap(), 1);
        let (back, _) = store.load(3).unwrap();
        assert_eq!(back.version(), log.version());

        store.remove(3).unwrap();
        assert!(store.session_ids().is_empty());
        assert!(matches!(
            store.load(3),
            Err(StoreError::UnknownSession { id: 3 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_history_triggers_rebase_and_bounds_catch_up() {
        let dir = temp_dir("rebase");
        let store = SessionStore::open(&dir, StoreOpts::default()).unwrap();
        let mut log = ResponseLog::homogeneous(3, 3, 2).unwrap();
        store.register(1, &log).unwrap();
        log.submit([(0, 0, Some(1)), (1, 1, Some(1))]).unwrap();
        store.sync_from(1, &log).unwrap();

        // The WAL serves the whole range…
        assert_eq!(store.edits_range(1, 0, 2).unwrap().len(), 2);

        // …until in-memory truncation outruns it without a sync.
        log.set(2, 2, Some(0)).unwrap();
        log.set(2, 2, Some(1)).unwrap();
        log.truncate_history(4);
        store.sync_from(1, &log).unwrap();
        assert_eq!(store.stats().wal_rotations, 1);
        let err = store.edits_range(1, 0, 4).unwrap_err();
        assert!(matches!(err, StoreError::RangeUnavailable { base: 4, .. }));
        // Post-rebase commits ship and serve normally.
        log.set(0, 1, Some(1)).unwrap();
        store.sync_from(1, &log).unwrap();
        assert_eq!(store.edits_range(1, 4, 5).unwrap().len(), 1);
        let (back, _) = store.load(1).unwrap();
        assert_eq!(back.to_matrix(), log.to_matrix());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_every_bounds_replay_work() {
        let dir = temp_dir("snapevery");
        let store = SessionStore::open(
            &dir,
            StoreOpts {
                snapshot_every: 4,
                ..StoreOpts::default()
            },
        )
        .unwrap();
        let mut log = ResponseLog::homogeneous(2, 4, 2).unwrap();
        store.register(9, &log).unwrap();
        for i in 0..4 {
            log.set(0, i, Some(1)).unwrap();
            store.sync_from(9, &log).unwrap();
        }
        assert!(store.stats().snapshots_written >= 2, "auto-snapshot fired");
        let (_, report) = store.load(9).unwrap();
        assert_eq!(
            report.replayed_edits, 0,
            "fresh snapshot leaves no tail to replay"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
