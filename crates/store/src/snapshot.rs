//! Compact binary session snapshots.
//!
//! A snapshot is the full roster state at one version, laid out as the
//! length-prefixed `u32`/`u64` arrays the serving arenas are built from —
//! mirroring the CSR shape of the answered cells so rehydration is a
//! sequential array read straight into [`ResponseLog::restore`], not a
//! JSON parse (see `hnd-datasets::storage` for the interchange-format
//! counterpart this deliberately is *not*).
//!
//! ```text
//! [8B magic "HNDSNAP1"]
//! [u32 body_len][u32 crc32(body)]
//! body := [u8 format]
//!         [u64 n_users][u64 n_items][u64 version]
//!         [u32 n_options][u32 × n_options]          options per item
//!         [u64 × (n_users + 1)]                     CSR row_ptr
//!         [u32 nnz][u32 × nnz]                      answered item ids
//!         [u32 × nnz]                               chosen options
//! ```
//!
//! Writes are atomic: body to a temp file, `fsync`, `rename` over the
//! target, `fsync` the directory. A torn snapshot write therefore leaves
//! the *previous* snapshot intact, and a corrupted body fails the CRC and
//! is reported as damage, never parsed.

use crate::frame::crc32;
use crate::wal::sync_dir;
use crate::StoreError;
use hnd_response::ResponseLog;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// File magic of a binary session snapshot.
pub const SNAP_MAGIC: [u8; 8] = *b"HNDSNAP1";
const FORMAT_VERSION: u8 = 1;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Serializes `log` into the snapshot body (no envelope).
fn encode_body(log: &ResponseLog) -> Vec<u8> {
    let (m, n) = (log.n_users(), log.n_items());
    // CSR of answered cells: row_ptr over users, then (item, choice) pairs.
    let mut row_ptr: Vec<u64> = Vec::with_capacity(m + 1);
    let mut items: Vec<u32> = Vec::new();
    let mut choices: Vec<u32> = Vec::new();
    row_ptr.push(0);
    for u in 0..m {
        for (i, &cell) in log.user_row(u).iter().enumerate() {
            if let Some(c) = cell {
                items.push(i as u32);
                choices.push(u32::from(c));
            }
        }
        row_ptr.push(items.len() as u64);
    }

    let mut body = Vec::with_capacity(1 + 24 + 4 + 4 * n + 8 * (m + 1) + 4 + 8 * items.len());
    body.push(FORMAT_VERSION);
    put_u64(&mut body, m as u64);
    put_u64(&mut body, n as u64);
    put_u64(&mut body, log.version());
    put_u32(&mut body, n as u32);
    for &k in log.options() {
        put_u32(&mut body, u32::from(k));
    }
    for &p in &row_ptr {
        put_u64(&mut body, p);
    }
    put_u32(&mut body, items.len() as u32);
    for &i in &items {
        put_u32(&mut body, i);
    }
    for &c in &choices {
        put_u32(&mut body, c);
    }
    body
}

/// Atomically writes the snapshot of `log` at its current version.
pub(crate) fn write_snapshot(path: &Path, log: &ResponseLog) -> Result<(), StoreError> {
    let body = encode_body(log);
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&SNAP_MAGIC)?;
        f.write_all(&(body.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))?;
    Ok(())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

fn corrupt(path: &Path, what: &str) -> StoreError {
    StoreError::Corrupt {
        detail: format!("{}: {what}", path.display()),
    }
}

/// Reads and CRC-validates a snapshot, rehydrating it as a
/// [`ResponseLog`] at the snapshotted version (history base = version:
/// the WAL tail supplies anything newer).
pub(crate) fn read_snapshot(path: &Path) -> Result<ResponseLog, StoreError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 16 || raw[..8] != SNAP_MAGIC {
        return Err(corrupt(path, "bad snapshot magic"));
    }
    let body_len = u32::from_le_bytes(raw[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(raw[12..16].try_into().unwrap());
    let Some(body) = raw.get(16..16 + body_len) else {
        return Err(corrupt(path, "torn snapshot body"));
    };
    if crc32(body) != crc {
        return Err(corrupt(path, "snapshot CRC mismatch"));
    }

    let mut c = Cursor { buf: body, pos: 0 };
    let parsed = (|| {
        if c.u8()? != FORMAT_VERSION {
            return None;
        }
        let m = usize::try_from(c.u64()?).ok()?;
        let n = usize::try_from(c.u64()?).ok()?;
        let version = c.u64()?;
        let n_options = c.u32()? as usize;
        if n_options != n {
            return None;
        }
        let mut options = Vec::with_capacity(n);
        for _ in 0..n {
            options.push(u16::try_from(c.u32()?).ok()?);
        }
        let mut row_ptr = Vec::with_capacity(m + 1);
        for _ in 0..=m {
            row_ptr.push(usize::try_from(c.u64()?).ok()?);
        }
        let nnz = c.u32()? as usize;
        if row_ptr.first() != Some(&0)
            || row_ptr.last() != Some(&nnz)
            || row_ptr.windows(2).any(|w| w[0] > w[1])
        {
            return None;
        }
        let mut choices: Vec<Option<u16>> = vec![None; m.checked_mul(n)?];
        let mut items = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            items.push(c.u32()? as usize);
        }
        for (k, &item) in items.iter().enumerate() {
            let user = row_ptr.partition_point(|&p| p <= k) - 1;
            if item >= n {
                return None;
            }
            choices[user * n + item] = Some(u16::try_from(c.u32()?).ok()?);
        }
        (c.pos == body.len()).then_some((m, n, options, choices, version))
    })();
    let Some((m, n, options, choices, version)) = parsed else {
        return Err(corrupt(path, "malformed snapshot body"));
    };
    ResponseLog::restore(m, n, &options, choices, version).map_err(StoreError::Response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "hnd-snap-test-{}-{tag}-{k}.snap",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_a_log() {
        let mut log = ResponseLog::new(4, 3, &[4, 2, 3]).unwrap();
        log.submit([
            (0, 0, Some(3)),
            (1, 2, Some(0)),
            (3, 1, Some(1)),
            (0, 0, Some(1)),
        ])
        .unwrap();
        let path = temp_path("rt");
        write_snapshot(&path, &log).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.version(), log.version());
        assert_eq!(back.to_matrix(), log.to_matrix());
        assert_eq!(back.options(), log.options());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_corruption_without_panicking() {
        let mut log = ResponseLog::homogeneous(3, 3, 2).unwrap();
        log.set(1, 1, Some(1)).unwrap();
        let path = temp_path("bad");
        write_snapshot(&path, &log).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // flip one payload bit
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Torn write: half the file.
        std::fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
