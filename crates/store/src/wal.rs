//! Per-session append-only WAL with group-commit fsync batching.
//!
//! Appends are one buffered `write(2)` each — the data reaches the OS page
//! cache immediately, so readers (catch-up range queries, a reopened
//! store) always see the full logical tail. **Durability** is the batched
//! part: [`FlushPolicy`] decides when the write is `fdatasync`ed, so a
//! burst of commits pays one disk flush, not one per commit (the classic
//! group-commit trade: bounded loss window, order-of-magnitude append
//! throughput).
//!
//! Opening an existing WAL scans and semantically validates it (header
//! first, edit frames chaining version-contiguously) and truncates any
//! damaged or non-chaining tail to the last valid frame boundary —
//! recovery work happens once, at open, never on the append path.

use crate::chaos::{self, FaultKind, FaultOp, MAX_TRANSIENT_RETRIES};
use crate::frame::{self, DamageKind, Frame};
use crate::{Counters, StoreError};
use hnd_response::ResponseEdit;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When WAL appends are made durable (`fdatasync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Sync after every committed batch: zero loss window, one disk flush
    /// per commit.
    EveryCommit,
    /// Group commit: sync once every `n` batches (and on spill/flush).
    /// The loss window is at most `n - 1` committed batches.
    EveryN(u32),
    /// Never sync explicitly; the OS writes back on its own schedule.
    /// Crash loss window = whatever the kernel hadn't flushed.
    Os,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::EveryN(32)
    }
}

/// Durably syncs a directory so a just-created/renamed file inside it
/// survives a crash.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Everything a read pass recovered from a WAL file: the validated
/// header, the chaining edit batches, and any damage encountered.
#[derive(Debug)]
pub(crate) struct WalContents {
    pub n_users: u64,
    pub n_items: u64,
    pub options: Vec<u16>,
    /// Version the first edit frame chains onto.
    pub base_version: u64,
    /// Version after the last chaining edit.
    pub tail_version: u64,
    /// Valid edit batches in file order, each `(from_version, edits)`.
    pub batches: Vec<(u64, Vec<ResponseEdit>)>,
    /// Byte length of the semantically valid prefix (magic included).
    pub valid_len: u64,
    /// Damage found at the tail (codec-level or a broken version chain).
    pub damage: Vec<DamageKind>,
}

/// Reads and validates a WAL file without holding it open for writes.
/// Codec damage truncates logically (the returned `valid_len` marks where
/// the file should be cut); a frame that parses but does not chain is
/// [`DamageKind::Malformed`] damage at its own boundary.
pub(crate) fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let scan = frame::scan(&buf);
    let mut damage: Vec<DamageKind> = scan.damage.into_iter().collect();

    let mut frames = scan.frames.into_iter();
    let Some((
        _,
        Frame::Header {
            format: frame::FORMAT_VERSION,
            n_users,
            n_items,
            base_version,
            options,
        },
    )) = frames.next()
    else {
        return Err(StoreError::Corrupt {
            detail: format!("{}: missing or foreign WAL header", path.display()),
        });
    };

    let mut batches = Vec::new();
    let mut tail_version = base_version;
    let mut valid_len = scan.valid_len;
    for (offset, f) in frames {
        match f {
            Frame::Edits {
                from_version,
                edits,
            } if from_version == tail_version && !edits.is_empty() => {
                tail_version += edits.len() as u64;
                batches.push((from_version, edits));
            }
            // A second header or a non-chaining edit frame: the stream is
            // broken here; keep the prefix, cut the rest.
            _ => {
                damage.push(DamageKind::Malformed);
                valid_len = offset;
                break;
            }
        }
    }

    Ok(WalContents {
        n_users,
        n_items,
        options,
        base_version,
        tail_version,
        batches,
        valid_len,
        damage,
    })
}

/// An open per-session WAL positioned for appends.
pub(crate) struct SessionWal {
    path: PathBuf,
    file: File,
    policy: FlushPolicy,
    pub n_users: u64,
    pub n_items: u64,
    pub options: Vec<u16>,
    /// Version of the oldest edit still in the file (the rebase point).
    pub base_version: u64,
    /// Version after the last appended edit.
    pub tail_version: u64,
    /// Appends since the last sync (group-commit debt).
    unsynced: u32,
    /// Byte length of the valid frame prefix — where the next append
    /// belongs, and where a repair truncates to.
    good_len: u64,
    /// A failed append may have left partial bytes past `good_len`; the
    /// next append truncates them first so torn garbage is never built on.
    needs_repair: bool,
}

impl SessionWal {
    /// Creates a fresh WAL: magic + header frame, durably (file and
    /// parent directory synced).
    pub fn create(
        path: &Path,
        policy: FlushPolicy,
        n_users: u64,
        n_items: u64,
        options: &[u16],
        base_version: u64,
    ) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&frame::WAL_MAGIC)?;
        file.write_all(&frame::envelope(&frame::encode_header(
            n_users,
            n_items,
            base_version,
            options,
        )))?;
        file.sync_all()?;
        sync_dir(path.parent().unwrap_or(Path::new(".")))?;
        let good_len = file.metadata()?.len();
        Ok(SessionWal {
            path: path.to_path_buf(),
            file,
            policy,
            n_users,
            n_items,
            options: options.to_vec(),
            base_version,
            tail_version: base_version,
            unsynced: 0,
            good_len,
            needs_repair: false,
        })
    }

    /// Opens an existing WAL, truncating any damaged tail to the last
    /// valid frame boundary (the caller records the damage from the
    /// returned contents). Returns the handle plus the validated
    /// contents.
    pub fn open(path: &Path, policy: FlushPolicy) -> Result<(Self, WalContents), StoreError> {
        let contents = read_wal(path)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() > contents.valid_len {
            file.set_len(contents.valid_len)?;
            file.sync_all()?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(contents.valid_len))?;
        Ok((
            SessionWal {
                path: path.to_path_buf(),
                file,
                policy,
                n_users: contents.n_users,
                n_items: contents.n_items,
                options: contents.options.clone(),
                base_version: contents.base_version,
                tail_version: contents.tail_version,
                unsynced: 0,
                good_len: contents.valid_len,
                needs_repair: false,
            },
            contents,
        ))
    }

    /// Truncates any partial bytes a failed append left past the valid
    /// prefix, so the next frame lands on a clean boundary.
    fn repair(&mut self) -> Result<(), StoreError> {
        if self.needs_repair {
            self.file.set_len(self.good_len)?;
            self.file.seek(SeekFrom::Start(self.good_len))?;
            self.needs_repair = false;
        }
        Ok(())
    }

    /// Appends one committed batch. `from_version` must equal the current
    /// tail (the caller ships contiguous history); durability follows the
    /// flush policy.
    pub fn append(
        &mut self,
        from_version: u64,
        edits: &[ResponseEdit],
        counters: &Counters,
    ) -> Result<(), StoreError> {
        assert_eq!(
            from_version, self.tail_version,
            "WAL appends must chain contiguously"
        );
        if edits.is_empty() {
            return Ok(());
        }
        self.repair()?;
        let payload = frame::envelope(&frame::encode_edits(from_version, edits));
        let mut attempt = 0u32;
        loop {
            match counters.fault(FaultOp::Append) {
                None => break,
                Some(FaultKind::Transient) if attempt < MAX_TRANSIENT_RETRIES => {
                    counters.bump_retry(FaultOp::Append);
                    chaos::backoff(attempt);
                    attempt += 1;
                }
                Some(kind @ FaultKind::Transient) | Some(kind @ FaultKind::Hard) => {
                    return Err(chaos::fault_error(FaultOp::Append, kind).into());
                }
                Some(FaultKind::Torn) => {
                    // Half the envelope reaches the file before the
                    // "device" gives up: exactly the tear the frame
                    // scanner's truncation recovery exists for.
                    let cut = (payload.len() / 2).max(1);
                    let _ = self.file.write_all(&payload[..cut]);
                    self.needs_repair = true;
                    return Err(chaos::fault_error(FaultOp::Append, FaultKind::Torn).into());
                }
            }
        }
        // Time the frame write only when a telemetry hub is recording —
        // the clock reads are not free on the group-commit fast path.
        let started = counters.telemetry().map(|_| std::time::Instant::now());
        if let Err(e) = self.file.write_all(&payload) {
            // A real short write may have landed partial bytes too.
            self.needs_repair = true;
            return Err(e.into());
        }
        if let Some(started) = started {
            counters.record_stage(
                hnd_telemetry::Stage::WalAppend,
                started.elapsed().as_nanos() as u64,
            );
        }
        self.good_len += payload.len() as u64;
        self.tail_version += edits.len() as u64;
        self.unsynced += 1;
        counters.bump_frames(edits.len() as u64);
        match self.policy {
            FlushPolicy::EveryCommit => self.sync(counters)?,
            FlushPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync(counters)?;
                }
            }
            FlushPolicy::Os => {}
        }
        Ok(())
    }

    /// Forces any group-commit debt to disk (spill / shutdown barrier).
    pub fn flush(&mut self, counters: &Counters) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.sync(counters)?;
        }
        Ok(())
    }

    fn sync(&mut self, counters: &Counters) -> Result<(), StoreError> {
        let mut attempt = 0u32;
        loop {
            match counters.fault(FaultOp::Fsync) {
                None => break,
                Some(FaultKind::Transient) if attempt < MAX_TRANSIENT_RETRIES => {
                    counters.bump_retry(FaultOp::Fsync);
                    chaos::backoff(attempt);
                    attempt += 1;
                }
                // Torn is meaningless for fsync; degrade to hard.
                Some(FaultKind::Transient) => {
                    return Err(chaos::fault_error(FaultOp::Fsync, FaultKind::Transient).into());
                }
                Some(_) => {
                    return Err(chaos::fault_error(FaultOp::Fsync, FaultKind::Hard).into());
                }
            }
        }
        let started = counters.telemetry().map(|_| std::time::Instant::now());
        self.file.sync_data()?;
        if let Some(started) = started {
            counters.record_stage(
                hnd_telemetry::Stage::Fsync,
                started.elapsed().as_nanos() as u64,
            );
        }
        self.unsynced = 0;
        counters.bump_fsyncs();
        Ok(())
    }

    /// Rebases the WAL to `new_base` (the version of a just-written
    /// snapshot): atomically replaces the file with a header-only one so
    /// the edit stream stays contiguous from its first frame — a WAL
    /// never carries a version gap.
    pub fn rotate(&mut self, new_base: u64, counters: &Counters) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame::WAL_MAGIC)?;
            f.write_all(&frame::envelope(&frame::encode_header(
                self.n_users,
                self.n_items,
                new_base,
                &self.options,
            )))?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        sync_dir(self.path.parent().unwrap_or(Path::new(".")))?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let end = file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.base_version = new_base;
        self.tail_version = new_base;
        self.unsynced = 0;
        self.good_len = end;
        self.needs_repair = false;
        counters.bump_rotations();
        Ok(())
    }
}
