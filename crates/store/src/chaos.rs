//! Deterministic fault injection under the durable tier.
//!
//! A [`FaultPlan`] sits beneath every store I/O class (WAL append, fsync,
//! snapshot write, WAL/snapshot read) and decides, per *occurrence* of
//! each operation, whether that call fails — and how:
//!
//! * [`FaultKind::Transient`] — an `EINTR`-style hiccup. The store retries
//!   with bounded exponential backoff ([`backoff`], at most
//!   [`MAX_TRANSIENT_RETRIES`] retries per call) and counts the retry in
//!   [`StoreStats`](crate::StoreStats).
//! * [`FaultKind::Hard`] — the call fails outright (`EIO`-style); the
//!   error surfaces to the caller as [`StoreError::Io`](crate::StoreError).
//! * [`FaultKind::Torn`] — a write lands partially before failing. Only
//!   meaningful for WAL appends (half an envelope reaches the file; the
//!   WAL truncates the garbage before the next append, and a cold reopen
//!   truncates it at scan). For reads and the already-atomic snapshot
//!   write path it degrades to [`FaultKind::Hard`].
//!
//! Two modes:
//!
//! * **Seeded** ([`FaultPlan::seeded`]) — each decision is a pure hash of
//!   `(seed, op, occurrence#)`, so the schedule is a function of the call
//!   sequence alone: the same workload replayed against the same seed sees
//!   the *same* faults regardless of wall clock or thread timing per
//!   session (per-session single-writer keeps each session's op sequence
//!   deterministic). This is the chaos-battery mode.
//! * **Scripted** ([`FaultPlan::scripted`]) — an explicit
//!   `(op, occurrence#) → kind` table for pinpoint tests ("fail the 3rd
//!   fsync, hard").
//!
//! The plan keeps per-kind injection counts and an order-independent XOR
//! [`fingerprint`](FaultPlan::fingerprint) of every injected fault, so a
//! determinism proptest can assert two runs saw bitwise-identical fault
//! schedules without recording them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Transient faults are retried at most this many times per call before
/// the call fails with the transient error.
pub const MAX_TRANSIENT_RETRIES: u32 = 3;

/// The store I/O classes a [`FaultPlan`] can inject into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOp {
    /// A WAL edit-frame append (`write(2)`).
    Append,
    /// A WAL durability sync (`fdatasync`).
    Fsync,
    /// A binary snapshot write (tmp + rename).
    SnapshotWrite,
    /// A WAL read pass (load, catch-up, range query, adoption).
    WalRead,
    /// A snapshot read (load).
    SnapshotRead,
}

impl FaultOp {
    /// Every op class, in counter order.
    pub const ALL: [FaultOp; 5] = [
        FaultOp::Append,
        FaultOp::Fsync,
        FaultOp::SnapshotWrite,
        FaultOp::WalRead,
        FaultOp::SnapshotRead,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Append => "append",
            FaultOp::Fsync => "fsync",
            FaultOp::SnapshotWrite => "snapshot_write",
            FaultOp::WalRead => "wal_read",
            FaultOp::SnapshotRead => "snapshot_read",
        }
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// `EINTR`-style: fails once, succeeds on retry.
    Transient,
    /// `EIO`-style: the call fails; retrying is pointless.
    Hard,
    /// The write lands partially before failing (appends only; degrades
    /// to [`FaultKind::Hard`] elsewhere).
    Torn,
}

impl FaultKind {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Hard => "hard",
            FaultKind::Torn => "torn",
        }
    }
}

/// SplitMix64: the decision hash. Pure, so a schedule is a function of
/// `(seed, op, occurrence)` alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum Mode {
    Seeded {
        seed: u64,
        /// Injection probability in parts-per-million of each occurrence.
        intensity_ppm: u64,
    },
    Scripted {
        faults: BTreeMap<(FaultOp, u64), FaultKind>,
    },
}

/// A deterministic fault schedule installed under a
/// [`SessionStore`](crate::SessionStore) via
/// [`SessionStore::inject_faults`](crate::SessionStore::inject_faults).
pub struct FaultPlan {
    mode: Mode,
    /// Per-[`FaultOp`] occurrence counters (how many times each op class
    /// has consulted the plan).
    occurrences: [AtomicU64; 5],
    /// Per-[`FaultKind`] injected counts.
    injected: [AtomicU64; 3],
    /// XOR of a hash of every injected `(op, occurrence, kind)` — an
    /// order-independent schedule fingerprint.
    fingerprint: AtomicU64,
}

impl FaultPlan {
    fn with_mode(mode: Mode) -> Self {
        FaultPlan {
            mode,
            occurrences: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            fingerprint: AtomicU64::new(0),
        }
    }

    /// A seeded plan injecting a fault into roughly `intensity` of all
    /// store I/O calls (clamped to `[0, 1]`). Kind split: ~60% transient,
    /// ~25% hard, ~15% torn.
    pub fn seeded(seed: u64, intensity: f64) -> Self {
        let ppm = (intensity.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        Self::with_mode(Mode::Seeded {
            seed,
            intensity_ppm: ppm,
        })
    }

    /// A scripted plan: fault exactly the listed `(op, occurrence)` calls
    /// (occurrence numbers are zero-based per op class).
    pub fn scripted(faults: impl IntoIterator<Item = (FaultOp, u64, FaultKind)>) -> Self {
        Self::with_mode(Mode::Scripted {
            faults: faults
                .into_iter()
                .map(|(op, n, kind)| ((op, n), kind))
                .collect(),
        })
    }

    /// Consults the plan for the next occurrence of `op`. `Some(kind)`
    /// means the call must fail that way. Torn degrades to hard for
    /// non-append ops at the injection site, not here.
    pub fn next(&self, op: FaultOp) -> Option<FaultKind> {
        let occurrence = self.occurrences[op as usize].fetch_add(1, Ordering::Relaxed);
        let kind = match &self.mode {
            Mode::Seeded {
                seed,
                intensity_ppm,
            } => {
                let h = splitmix64(
                    seed ^ splitmix64((op as u64) << 32 | 0xc4a5) ^ splitmix64(occurrence),
                );
                if h % 1_000_000 >= *intensity_ppm {
                    return None;
                }
                match (h >> 32) % 100 {
                    0..=59 => FaultKind::Transient,
                    60..=84 => FaultKind::Hard,
                    _ => FaultKind::Torn,
                }
            }
            Mode::Scripted { faults } => *faults.get(&(op, occurrence))?,
        };
        self.injected[kind as usize].fetch_add(1, Ordering::Relaxed);
        let stamp =
            splitmix64(((op as u64) << 56) ^ (occurrence << 8) ^ (kind as u64) ^ 0x51ab_c0de);
        self.fingerprint.fetch_xor(stamp, Ordering::Relaxed);
        Some(kind)
    }

    /// How many faults of `kind` this plan has injected so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind as usize].load(Ordering::Relaxed)
    }

    /// Total injected faults of any kind.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Order-independent XOR fingerprint of every injected fault — equal
    /// fingerprints + equal per-kind counts ⇒ identical schedules.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint.load(Ordering::Relaxed)
    }
}

/// Bounded exponential backoff before retrying a transient fault:
/// 50µs · 2^attempt, capped at ~3.2ms.
pub fn backoff(attempt: u32) {
    std::thread::sleep(std::time::Duration::from_micros(50u64 << attempt.min(6)));
}

/// The injected-fault `io::Error` for `kind` at `op` (transient maps to
/// `ErrorKind::Interrupted`, everything else to `ErrorKind::Other`).
pub(crate) fn fault_error(op: FaultOp, kind: FaultKind) -> std::io::Error {
    match kind {
        FaultKind::Transient => std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            format!("injected transient {} fault (retries exhausted)", op.name()),
        ),
        FaultKind::Hard => std::io::Error::other(format!("injected hard {} fault", op.name())),
        FaultKind::Torn => std::io::Error::other(format!("injected torn {} fault", op.name())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &FaultPlan, per_op: u64) -> Vec<(FaultOp, u64, Option<FaultKind>)> {
        let mut out = Vec::new();
        for op in FaultOp::ALL {
            for n in 0..per_op {
                out.push((op, n, plan.next(op)));
            }
        }
        out
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultPlan::seeded(42, 0.2);
        let b = FaultPlan::seeded(42, 0.2);
        assert_eq!(drain(&a, 200), drain(&b, 200));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.total_injected() > 0, "20% over 1000 calls injects");
        for kind in [FaultKind::Transient, FaultKind::Hard, FaultKind::Torn] {
            assert_eq!(a.injected(kind), b.injected(kind));
        }
    }

    #[test]
    fn seeds_differ() {
        let a = FaultPlan::seeded(1, 0.3);
        let b = FaultPlan::seeded(2, 0.3);
        assert_ne!(drain(&a, 200), drain(&b, 200));
    }

    #[test]
    fn zero_intensity_never_injects() {
        let plan = FaultPlan::seeded(7, 0.0);
        assert!(drain(&plan, 100).iter().all(|(_, _, f)| f.is_none()));
        assert_eq!(plan.fingerprint(), 0);
    }

    #[test]
    fn scripted_hits_exact_occurrences() {
        let plan = FaultPlan::scripted([
            (FaultOp::Fsync, 2, FaultKind::Hard),
            (FaultOp::Append, 0, FaultKind::Torn),
        ]);
        assert_eq!(plan.next(FaultOp::Append), Some(FaultKind::Torn));
        assert_eq!(plan.next(FaultOp::Append), None);
        assert_eq!(plan.next(FaultOp::Fsync), None);
        assert_eq!(plan.next(FaultOp::Fsync), None);
        assert_eq!(plan.next(FaultOp::Fsync), Some(FaultKind::Hard));
        assert_eq!(plan.total_injected(), 2);
    }
}
