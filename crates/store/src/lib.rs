//! # hnd-store — the durable session tier
//!
//! At millions-of-users scale a serving fleet is mostly idle, and
//! [`hnd_service`]'s `SessionManager` already tears idle engines down to
//! their [`ResponseLog`]. This crate is the layer below that: the log
//! itself moved **out of memory and onto disk**, crash-safely.
//!
//! Per session the store keeps two files:
//!
//! * an append-only **WAL** of committed [`ResponseEdit`]s — length-
//!   prefixed, CRC-checked frames ([`frame`]), appended on every commit
//!   and fsynced in batches ([`FlushPolicy`]: group commit), and
//! * a compact binary **snapshot** ([`snapshot`]) — the roster state at
//!   one version as length-prefixed `u32`/`u64` arrays mirroring the
//!   serving arenas' CSR shape, so rehydration is a sequential array read
//!   (explicitly *not* the JSON interchange path in
//!   `hnd-datasets::storage`).
//!
//! Recovery ([`SessionStore::load`]) is snapshot + WAL-tail replay: read
//! the snapshot, re-apply every WAL edit past its version through the
//! log's validated [`ResponseLog::replay`], and stop at the first damaged
//! or non-chaining frame — counting the damage in [`StoreStats`], never
//! panicking, never silently keeping bad bytes. The crash battery in
//! `tests/` pins this down: truncation at *every* frame boundary recovers
//! bit-identically to a never-crashed engine over the same committed
//! prefix, and torn/flipped/zeroed tails degrade to the last valid frame.
//!
//! [`hnd_service`]: ../hnd_service/index.html
//! [`ResponseEdit`]: hnd_response::ResponseEdit

pub mod chaos;
mod frame;
mod snapshot;
mod store;
mod wal;

pub use chaos::{FaultKind, FaultOp, FaultPlan, MAX_TRANSIENT_RETRIES};
pub use frame::{crc32, DamageKind, WAL_MAGIC};
pub use snapshot::SNAP_MAGIC;
pub use store::{RecoveryReport, RecoverySource, SessionStore, StoreOpts, StoreStats};
pub use wal::FlushPolicy;

use hnd_response::ResponseError;
use hnd_telemetry::{Stage, TelemetryHub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Errors from the durable tier.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The store holds no files for this session.
    UnknownSession {
        /// The session id asked for.
        id: u64,
    },
    /// A catch-up range reaches outside what the WAL retains (before its
    /// rebase point or past its tail).
    RangeUnavailable {
        /// Session the range was asked of.
        id: u64,
        /// Requested start version (exclusive).
        from: u64,
        /// Requested end version (inclusive).
        to: u64,
        /// Oldest version the WAL can serve from.
        base: u64,
        /// Version after the WAL's last edit.
        head: u64,
    },
    /// On-disk state failed validation beyond tail-damage recovery (bad
    /// magic, snapshot CRC failure with no replayable WAL, …).
    Corrupt {
        /// Human-readable description naming the file.
        detail: String,
    },
    /// Recovered bytes produced an invalid roster or edit stream.
    Response(ResponseError),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::UnknownSession { id } => write!(f, "no durable state for session {id}"),
            StoreError::RangeUnavailable {
                id,
                from,
                to,
                base,
                head,
            } => write!(
                f,
                "session {id}: WAL range {from}..{to} unavailable (retains {base}..{head})"
            ),
            StoreError::Corrupt { detail } => write!(f, "corrupt durable state: {detail}"),
            StoreError::Response(e) => write!(f, "recovered state rejected: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Response(e) => Some(e),
            _ => None,
        }
    }
}

/// Internal atomic counters behind [`StoreStats`] — shared by every
/// session handle so stats are one relaxed load each, no lock.
#[derive(Default)]
pub(crate) struct Counters {
    frames_appended: AtomicU64,
    edits_appended: AtomicU64,
    fsyncs: AtomicU64,
    snapshots_written: AtomicU64,
    wal_rotations: AtomicU64,
    loads: AtomicU64,
    replayed_edits: AtomicU64,
    damage_zero_tail: AtomicU64,
    damage_torn: AtomicU64,
    damage_crc: AtomicU64,
    damage_malformed: AtomicU64,
    snapshot_failures: AtomicU64,
    retries_append: AtomicU64,
    retries_fsync: AtomicU64,
    retries_read: AtomicU64,
    retries_snapshot: AtomicU64,
    faults_transient: AtomicU64,
    faults_hard: AtomicU64,
    faults_torn: AtomicU64,
    /// Telemetry hub installed by the serving layer (write-once so handles
    /// cloned before attachment still observe it). Absent/disabled hubs
    /// make the stage-timing helpers no-ops.
    telemetry: OnceLock<Arc<TelemetryHub>>,
    /// Chaos fault schedule, if one was injected (tests/batteries only).
    chaos: OnceLock<Arc<FaultPlan>>,
}

impl Counters {
    /// Installs the serving layer's telemetry hub (first caller wins).
    pub(crate) fn set_telemetry(&self, hub: Arc<TelemetryHub>) {
        let _ = self.telemetry.set(hub);
    }
    /// The hub, when installed and actively recording.
    pub(crate) fn telemetry(&self) -> Option<&Arc<TelemetryHub>> {
        self.telemetry.get().filter(|h| h.enabled())
    }
    pub(crate) fn record_stage(&self, stage: Stage, ns: u64) {
        if let Some(hub) = self.telemetry() {
            hub.record_stage(stage, ns);
        }
    }
    pub(crate) fn bump_frames(&self, edits: u64) {
        self.frames_appended.fetch_add(1, Ordering::Relaxed);
        self.edits_appended.fetch_add(edits, Ordering::Relaxed);
    }
    pub(crate) fn bump_fsyncs(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_snapshots(&self) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_rotations(&self) {
        self.wal_rotations.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_loads(&self, replayed: u64) {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.replayed_edits.fetch_add(replayed, Ordering::Relaxed);
    }
    pub(crate) fn bump_snapshot_failures(&self) {
        self.snapshot_failures.fetch_add(1, Ordering::Relaxed);
    }
    /// Installs a chaos fault schedule (first caller wins).
    pub(crate) fn set_chaos(&self, plan: Arc<FaultPlan>) {
        let _ = self.chaos.set(plan);
    }
    /// Consults the chaos plan for the next occurrence of `op`, counting
    /// any injected fault by kind. `None` when no plan is installed or the
    /// schedule lets this call through.
    pub(crate) fn fault(&self, op: FaultOp) -> Option<FaultKind> {
        let kind = self.chaos.get()?.next(op)?;
        let slot = match kind {
            FaultKind::Transient => &self.faults_transient,
            FaultKind::Hard => &self.faults_hard,
            FaultKind::Torn => &self.faults_torn,
        };
        slot.fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }
    /// Counts one transient-fault retry against `op`'s class.
    pub(crate) fn bump_retry(&self, op: FaultOp) {
        let slot = match op {
            FaultOp::Append => &self.retries_append,
            FaultOp::Fsync => &self.retries_fsync,
            FaultOp::WalRead | FaultOp::SnapshotRead => &self.retries_read,
            FaultOp::SnapshotWrite => &self.retries_snapshot,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_damage(&self, kind: DamageKind) {
        let slot = match kind {
            DamageKind::ZeroLengthTail => &self.damage_zero_tail,
            DamageKind::TornFrame => &self.damage_torn,
            DamageKind::CrcMismatch => &self.damage_crc,
            DamageKind::Malformed => &self.damage_malformed,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn snapshot(&self) -> StoreStats {
        StoreStats {
            frames_appended: self.frames_appended.load(Ordering::Relaxed),
            edits_appended: self.edits_appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            wal_rotations: self.wal_rotations.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            replayed_edits: self.replayed_edits.load(Ordering::Relaxed),
            damage_zero_tail: self.damage_zero_tail.load(Ordering::Relaxed),
            damage_torn: self.damage_torn.load(Ordering::Relaxed),
            damage_crc: self.damage_crc.load(Ordering::Relaxed),
            damage_malformed: self.damage_malformed.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            retries_append: self.retries_append.load(Ordering::Relaxed),
            retries_fsync: self.retries_fsync.load(Ordering::Relaxed),
            retries_read: self.retries_read.load(Ordering::Relaxed),
            retries_snapshot: self.retries_snapshot.load(Ordering::Relaxed),
            faults_transient: self.faults_transient.load(Ordering::Relaxed),
            faults_hard: self.faults_hard.load(Ordering::Relaxed),
            faults_torn: self.faults_torn.load(Ordering::Relaxed),
        }
    }
}
