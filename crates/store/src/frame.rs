//! The WAL frame codec: length-prefixed, CRC-checked records.
//!
//! A WAL file is the 8-byte magic [`WAL_MAGIC`] followed by a sequence of
//! frames, each laid out as
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload…]
//! ```
//!
//! (all integers little-endian). The payload's first byte is a kind tag:
//!
//! * **Header** (`kind = 1`): roster metadata + the version the first edit
//!   frame chains onto — `[u8 1][u8 format][u64 n_users][u64 n_items]`
//!   `[u64 base_version][u32 n_options][u32 × n_options]`. Always the
//!   first frame; rewritten (with a fresh `base_version`) when the WAL is
//!   rotated after a snapshot rebase.
//! * **Edits** (`kind = 2`): one committed batch —
//!   `[u8 2][u64 from_version][u32 count][(u32 user, u32 item, u32 from,`
//!   `u32 to) × count]` where `0xFFFF_FFFF` encodes `None` (unanswered).
//!   Edit `i` of the batch takes the log from `from_version + i` to
//!   `from_version + i + 1`, so contiguity is checkable frame by frame.
//!
//! The scanner ([`scan`]) walks a buffer until it runs out of bytes or
//! hits damage, classifying the damage ([`DamageKind`]) and reporting the
//! byte offset of the last valid frame boundary so recovery can truncate
//! to it — a torn tail never poisons the valid prefix.

use hnd_response::ResponseEdit;

/// File magic of a per-session WAL.
pub const WAL_MAGIC: [u8; 8] = *b"HNDWAL01";
/// On-disk format version carried in header frames.
pub const FORMAT_VERSION: u8 = 1;
/// `Option<u16>` encoding: `None` as an out-of-`u16` sentinel.
const NONE_CELL: u32 = 0xFFFF_FFFF;
/// Frames beyond this are garbage lengths, not real payloads (a torn
/// length word would otherwise make the scanner wait for gigabytes).
const MAX_PAYLOAD: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding
/// every frame and snapshot body. Table-driven; built once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// How a WAL tail was found damaged (crash mid-write, bit rot, torn
/// sector). Recovery truncates to the last valid frame and counts the
/// damage — it never panics and never silently keeps bad bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The tail is zero bytes where a frame should start (a preallocated
    /// or partially-flushed region that never received its length word).
    ZeroLengthTail,
    /// The length word promises more bytes than the file holds (the
    /// classic torn final frame), or the length itself is garbage.
    TornFrame,
    /// The payload is complete but its checksum disagrees — flipped bits
    /// in the CRC word or the payload.
    CrcMismatch,
    /// The checksum passed but the payload doesn't parse, or an edit
    /// frame doesn't chain onto its predecessor's version.
    Malformed,
}

/// One decoded frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Roster metadata + the version the edit stream starts at.
    Header {
        /// On-disk format version (see [`FORMAT_VERSION`]).
        format: u8,
        /// Users in the roster.
        n_users: u64,
        /// Items in the roster.
        n_items: u64,
        /// Version the first edit frame chains onto.
        base_version: u64,
        /// Options per item.
        options: Vec<u16>,
    },
    /// One committed edit batch chaining onto `from_version`.
    Edits {
        /// Log version before the batch's first edit.
        from_version: u64,
        /// The batch, in commit order.
        edits: Vec<ResponseEdit>,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn cell_to_u32(c: Option<u16>) -> u32 {
    c.map_or(NONE_CELL, u32::from)
}

fn u32_to_cell(v: u32) -> Option<Option<u16>> {
    if v == NONE_CELL {
        Some(None)
    } else {
        u16::try_from(v).ok().map(Some)
    }
}

/// Encodes a header payload (no frame envelope).
pub fn encode_header(n_users: u64, n_items: u64, base_version: u64, options: &[u16]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + 8 * 3 + 4 + 4 * options.len());
    buf.push(1u8);
    buf.push(FORMAT_VERSION);
    put_u64(&mut buf, n_users);
    put_u64(&mut buf, n_items);
    put_u64(&mut buf, base_version);
    put_u32(&mut buf, options.len() as u32);
    for &k in options {
        put_u32(&mut buf, u32::from(k));
    }
    buf
}

/// Encodes an edits payload (no frame envelope).
pub fn encode_edits(from_version: u64, edits: &[ResponseEdit]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + 8 + 4 + 16 * edits.len());
    buf.push(2u8);
    put_u64(&mut buf, from_version);
    put_u32(&mut buf, edits.len() as u32);
    for e in edits {
        put_u32(&mut buf, e.user as u32);
        put_u32(&mut buf, e.item as u32);
        put_u32(&mut buf, cell_to_u32(e.from));
        put_u32(&mut buf, cell_to_u32(e.to));
    }
    buf
}

/// Wraps a payload in the `[len][crc][payload]` envelope.
pub fn envelope(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    put_u32(&mut buf, payload.len() as u32);
    put_u32(&mut buf, crc32(payload));
    buf.extend_from_slice(payload);
    buf
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

fn decode_payload(payload: &[u8]) -> Option<Frame> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let frame = match c.u8()? {
        1 => {
            let format = c.u8()?;
            let n_users = c.u64()?;
            let n_items = c.u64()?;
            let base_version = c.u64()?;
            let n_options = c.u32()? as usize;
            let mut options = Vec::with_capacity(n_options);
            for _ in 0..n_options {
                options.push(u16::try_from(c.u32()?).ok()?);
            }
            Frame::Header {
                format,
                n_users,
                n_items,
                base_version,
                options,
            }
        }
        2 => {
            let from_version = c.u64()?;
            let count = c.u32()? as usize;
            let mut edits = Vec::with_capacity(count);
            for _ in 0..count {
                edits.push(ResponseEdit {
                    user: c.u32()? as usize,
                    item: c.u32()? as usize,
                    from: u32_to_cell(c.u32()?)?,
                    to: u32_to_cell(c.u32()?)?,
                });
            }
            Frame::Edits {
                from_version,
                edits,
            }
        }
        _ => return None,
    };
    (c.pos == payload.len()).then_some(frame)
}

/// The result of scanning a WAL buffer (everything after the magic).
#[derive(Debug)]
pub struct Scan {
    /// Valid frames in file order, each with the byte offset it starts at
    /// (so semantic validation above the codec — e.g. a version-chain
    /// check — can truncate to any frame boundary, not just the last).
    pub frames: Vec<(u64, Frame)>,
    /// Byte length of the valid prefix **including the magic** — the
    /// offset recovery truncates the file to when `damage` is set.
    pub valid_len: u64,
    /// How the tail was damaged, if it was.
    pub damage: Option<DamageKind>,
}

/// Scans a full WAL file image (magic + frames), stopping at the first
/// damaged byte. A missing/garbled magic is [`DamageKind::Malformed`]
/// damage with zero valid frames.
pub fn scan(file: &[u8]) -> Scan {
    if file.len() < WAL_MAGIC.len() || file[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Scan {
            frames: Vec::new(),
            valid_len: 0,
            damage: Some(if file.iter().all(|&b| b == 0) {
                DamageKind::ZeroLengthTail
            } else {
                DamageKind::Malformed
            }),
        };
    }
    let mut frames = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let damage = loop {
        let rem = &file[pos..];
        if rem.is_empty() {
            break None;
        }
        if rem.iter().all(|&b| b == 0) {
            break Some(DamageKind::ZeroLengthTail);
        }
        if rem.len() < 8 {
            break Some(DamageKind::TornFrame);
        }
        let len = u32::from_le_bytes(rem[..4].try_into().unwrap());
        if len == 0 {
            break Some(DamageKind::ZeroLengthTail);
        }
        if len > MAX_PAYLOAD || rem.len() < 8 + len as usize {
            break Some(DamageKind::TornFrame);
        }
        let crc = u32::from_le_bytes(rem[4..8].try_into().unwrap());
        let payload = &rem[8..8 + len as usize];
        if crc32(payload) != crc {
            break Some(DamageKind::CrcMismatch);
        }
        let Some(frame) = decode_payload(payload) else {
            break Some(DamageKind::Malformed);
        };
        frames.push((pos as u64, frame));
        pos += 8 + len as usize;
    };
    Scan {
        frames,
        valid_len: pos as u64,
        damage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edit(user: usize, item: usize, from: Option<u16>, to: Option<u16>) -> ResponseEdit {
        ResponseEdit {
            user,
            item,
            from,
            to,
        }
    }

    fn sample_file() -> Vec<u8> {
        let mut file = WAL_MAGIC.to_vec();
        file.extend(envelope(&encode_header(3, 2, 5, &[4, 3])));
        file.extend(envelope(&encode_edits(
            5,
            &[edit(0, 0, None, Some(2)), edit(1, 1, Some(1), None)],
        )));
        file.extend(envelope(&encode_edits(7, &[edit(2, 0, None, Some(0))])));
        file
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_frames() {
        let scan = scan(&sample_file());
        assert!(scan.damage.is_none());
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(
            scan.frames[0],
            (
                WAL_MAGIC.len() as u64,
                Frame::Header {
                    format: FORMAT_VERSION,
                    n_users: 3,
                    n_items: 2,
                    base_version: 5,
                    options: vec![4, 3],
                }
            )
        );
        let (
            _,
            Frame::Edits {
                from_version,
                ref edits,
            },
        ) = scan.frames[1]
        else {
            panic!("expected edits frame");
        };
        assert_eq!(from_version, 5);
        assert_eq!(edits[0], edit(0, 0, None, Some(2)));
        assert_eq!(edits[1].to, None, "None survives the sentinel encoding");
        assert_eq!(scan.valid_len, sample_file().len() as u64);
    }

    #[test]
    fn classifies_damage_and_keeps_the_valid_prefix() {
        let good = sample_file();

        // Torn final frame: drop the last 3 bytes.
        let torn = &good[..good.len() - 3];
        let s = scan(torn);
        assert_eq!(s.damage, Some(DamageKind::TornFrame));
        assert_eq!(s.frames.len(), 2, "prefix survives");

        // Flipped CRC byte on the final frame.
        let mut flipped = good.clone();
        let final_frame_start = good.len() - (8 + 1 + 8 + 4 + 16);
        flipped[final_frame_start + 4] ^= 0xFF;
        let s = scan(&flipped);
        assert_eq!(s.damage, Some(DamageKind::CrcMismatch));
        assert_eq!(s.frames.len(), 2);
        assert_eq!(s.valid_len, final_frame_start as u64);

        // Zero-length tail: trailing zeros after the last frame.
        let mut zeroed = good.clone();
        zeroed.extend([0u8; 12]);
        let s = scan(&zeroed);
        assert_eq!(s.damage, Some(DamageKind::ZeroLengthTail));
        assert_eq!(s.frames.len(), 3, "all real frames kept");
        assert_eq!(s.valid_len, good.len() as u64);

        // Garbage magic.
        let s = scan(b"NOTAWAL!rest");
        assert_eq!(s.damage, Some(DamageKind::Malformed));
        assert!(s.frames.is_empty());
    }
}
