//! `hnd-calibrate` — measure this host's kernel rates and write the
//! per-host catalog.
//!
//! ```text
//! hnd-calibrate [--quick] [--force] [--out PATH] [--check]
//! ```
//!
//! * `--quick`  restricted grid (CI smoke; sub-second)
//! * `--force`  recalibrate even when a current catalog already exists
//! * `--out`    write to PATH instead of the default per-host location
//!   (`$HND_CATALOG` / `~/.cache/hnd/kernel-catalog.json`)
//! * `--check`  after calibrating (or loading a current catalog), re-run a
//!   spot measurement per class and fail unless the median predicted-vs-
//!   actual error is ≤ 2× — the CI planner smoke.

use hnd_plan::{calibrate, CalibrationOpts, CostModel, KernelCatalog, KernelClass};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut force = false;
    let mut check = false;
    let mut out: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--force" => force = true,
            "--check" => check = true,
            "--out" => match argv.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("hnd-calibrate: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hnd-calibrate: unknown flag {other:?}");
                eprintln!("usage: hnd-calibrate [--quick] [--force] [--out PATH] [--check]");
                return ExitCode::FAILURE;
            }
        }
    }
    let path = out.unwrap_or_else(hnd_plan::catalog_path);
    let opts = if quick {
        CalibrationOpts::quick()
    } else {
        CalibrationOpts::default()
    };

    let catalog = if !force {
        match KernelCatalog::load_checked(&path) {
            Ok(existing) => {
                println!(
                    "catalog current at {} ({} entries, {}/c{}) — use --force to re-measure",
                    path.display(),
                    existing.entries.len(),
                    existing.fingerprint.isa,
                    existing.fingerprint.cores
                );
                existing
            }
            Err(reason) => {
                println!("calibrating ({reason})…");
                run_and_save(&opts, &path)
            }
        }
    } else {
        run_and_save(&opts, &path)
    };

    if check {
        return check_catalog(&catalog, &opts);
    }
    ExitCode::SUCCESS
}

fn run_and_save(opts: &CalibrationOpts, path: &std::path::Path) -> KernelCatalog {
    let started = std::time::Instant::now();
    let catalog = calibrate(opts);
    if let Err(e) = catalog.save(path) {
        eprintln!("hnd-calibrate: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "measured {} rates ({}/c{}) in {:.1}s → {}",
        catalog.entries.len(),
        catalog.fingerprint.isa,
        catalog.fingerprint.cores,
        started.elapsed().as_secs_f64(),
        path.display()
    );
    catalog
}

/// Re-measures every measured grid point with a fresh pass and compares
/// against the catalog's prediction at that exact point. Median ratio per
/// class must stay within 2× either way.
fn check_catalog(catalog: &KernelCatalog, opts: &CalibrationOpts) -> ExitCode {
    let fresh = calibrate(opts);
    let model = CostModel::new(catalog.clone());
    let mut worst_median = 0.0f64;
    let mut failed = false;
    for class in KernelClass::ALL {
        let fresh_entries = fresh.class_entries(class);
        if fresh_entries.is_empty() {
            continue;
        }
        let mut ratios: Vec<f64> = fresh_entries
            .iter()
            .filter_map(|e| {
                let predicted = model.rate(class, e.dim, e.density, e.threads)?;
                if predicted <= 0.0 || e.ns_per_unit <= 0.0 {
                    return None;
                }
                let r = e.ns_per_unit / predicted;
                Some(if r < 1.0 { 1.0 / r } else { r })
            })
            .collect();
        if ratios.is_empty() {
            continue;
        }
        ratios.sort_by(f64::total_cmp);
        let median = ratios[ratios.len() / 2];
        worst_median = worst_median.max(median);
        let verdict = if median <= 2.0 { "ok" } else { "FAIL" };
        println!(
            "  {:<14} median predicted-vs-actual {median:.2}× [{verdict}]",
            class.name()
        );
        if median > 2.0 {
            failed = true;
        }
    }
    if failed {
        eprintln!("hnd-calibrate --check: median error exceeds 2× — recalibrate (--force)");
        return ExitCode::FAILURE;
    }
    println!("check passed (worst class median {worst_median:.2}×)");
    ExitCode::SUCCESS
}
