//! The self-calibration pass: microbenchmark the primitive kernels on the
//! current host and distill the measurements into a [`KernelCatalog`].
//!
//! Each measured class exercises the *same code paths* the serving stack
//! runs — [`hnd_linalg::HybridPattern`] lanes with the runtime-dispatched
//! SIMD word kernels, in-place pattern patches, full rebuilds — over a
//! small `(lane dimension × density × thread count)` grid. Workloads are
//! deterministic (the shared LCG), timings take the best of several
//! passes with an adaptive repetition count, and every rate is normalized
//! per unit of work so the cost model can interpolate between grid points.
//!
//! The thread axis chunks lanes across scoped threads exactly like the
//! engine's `par_fill` does at production sizes, so multi-core boxes get
//! real scaling measurements instead of the 1-vCPU numbers the historical
//! hand constants were tuned on.

use crate::catalog::{CatalogEntry, HostFingerprint, KernelCatalog, KernelClass, CATALOG_VERSION};
use hnd_linalg::{parallel, DensityPlan, HybridPattern, PatternDelta};
use std::time::Instant;

/// Grid configuration of one calibration pass.
#[derive(Debug, Clone)]
pub struct CalibrationOpts {
    /// Lane dimensions measured (bit-slots / gathered-span lengths).
    pub dims: Vec<usize>,
    /// Lane densities measured for the density-sensitive classes.
    pub densities: Vec<f64>,
    /// Kernel thread counts measured (deduplicated, each ≥ 1).
    pub threads: Vec<usize>,
    /// Target wall time per measurement in nanoseconds (per best-of pass).
    pub target_ns: f64,
}

impl Default for CalibrationOpts {
    /// The full grid: covers row-lane dimensions (~hundreds of option
    /// columns) through column-lane dimensions (tens of thousands of
    /// users), sparse through dense, serial through every-core.
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut threads = vec![1usize];
        if cores >= 4 {
            threads.push(cores / 2);
        }
        if cores > 1 {
            threads.push(cores);
        }
        threads.dedup();
        CalibrationOpts {
            dims: vec![256, 4096, 65536],
            densities: vec![0.05, 0.20, 0.60],
            threads,
            target_ns: 2e6,
        }
    }
}

impl CalibrationOpts {
    /// The restricted grid for CI smoke and tests: two dims, two
    /// densities, serial only — runs in well under a second.
    pub fn quick() -> Self {
        CalibrationOpts {
            dims: vec![256, 4096],
            densities: vec![0.10, 0.60],
            threads: vec![1],
            target_ns: 3e5,
        }
    }
}

/// The shared deterministic LCG (same constants as `hnd_bench::lcg`; the
/// bench crate depends on this one, not vice versa, so the step is
/// duplicated here once).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Best-of-3 adaptive timing: repeats `f` until one pass costs at least
/// `target_ns`, returns the minimum per-call nanoseconds observed.
fn time_ns(target_ns: f64, mut f: impl FnMut()) -> f64 {
    // One untimed warmup call (page in, branch-predict, detect ISA).
    f();
    let mut reps = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        if elapsed >= target_ns || reps >= 1 << 20 {
            let mut best = elapsed / reps as f64;
            for _ in 0..2 {
                let start = Instant::now();
                for _ in 0..reps {
                    f();
                }
                best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
            }
            return best;
        }
        reps = (reps * ((target_ns / elapsed.max(1.0)) as usize + 1)).clamp(reps + 1, 1 << 20);
    }
}

/// Deterministic membership test for the synthetic calibration patterns:
/// lane `i` contains slot `j` iff `hash(i, j) < density`.
fn cell_occupied(seed: u64, i: usize, j: usize, density: f64) -> bool {
    let mut state = seed ^ ((i as u64) << 32) ^ (j as u64).wrapping_mul(0x9E3779B97F4A7C15);
    (lcg(&mut state) % 10_000) as f64 / 10_000.0 < density
}

/// Builds a `lanes × dim` pattern whose rows each hold ~`density · dim`
/// entries, in the requested format.
fn build_pattern(
    lanes: usize,
    dim: usize,
    density: f64,
    bitmap: bool,
    slack: usize,
) -> HybridPattern {
    let plan = if bitmap {
        DensityPlan::force_bitmap()
    } else {
        DensityPlan::force_csr()
    };
    let pairs: Vec<(usize, usize)> = (0..lanes)
        .flat_map(|i| {
            (0..dim)
                .filter(move |&j| cell_occupied(0xCA11B, i, j, density))
                .map(move |j| (i, j))
        })
        .collect();
    HybridPattern::with_plan(lanes, dim, pairs, slack, slack, plan)
}

/// Lane count giving each gather pass a meaningful working set without
/// letting the biggest grid cells dominate calibration time.
fn lanes_for(dim: usize) -> usize {
    (1_000_000 / dim).clamp(32, 2048)
}

/// Runs `f(lane_index)` for every lane, chunked over `t` scoped threads —
/// the calibration mirror of the engine's output-parallel gather loops
/// (without `par_fill`'s small-output cutoff, so the thread axis stays
/// measurable at calibration sizes).
fn for_lanes_threaded(lanes: usize, t: usize, f: impl Fn(usize) + Sync) {
    if t <= 1 || lanes < 2 {
        for i in 0..lanes {
            f(i);
        }
        return;
    }
    let chunk = lanes.div_ceil(t);
    std::thread::scope(|scope| {
        for c in 0..t {
            let f = &f;
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(lanes);
            if start < end {
                scope.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
            }
        }
    });
}

/// Measures the gather classes (CSR + bitmap) for one `(dim, density,
/// threads)` grid cell.
fn measure_gathers(
    opts: &CalibrationOpts,
    dim: usize,
    density: f64,
    t: usize,
) -> Vec<CatalogEntry> {
    let lanes = lanes_for(dim);
    let x: Vec<f64> = (0..dim).map(|j| 1.0 + (j % 7) as f64 * 0.125).collect();
    let mut out = Vec::new();
    for bitmap in [false, true] {
        let pattern = build_pattern(lanes, dim, density, bitmap, 0);
        let nnz = pattern.nnz().max(1);
        let sink: Vec<std::sync::atomic::AtomicU64> = (0..lanes)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let pass_ns = time_ns(opts.target_ns, || {
            for_lanes_threaded(lanes, t, |i| {
                let s = pattern.row_lane(i).sum(&x);
                sink[i].store(s.to_bits(), std::sync::atomic::Ordering::Relaxed);
            });
        });
        let (class, units) = if bitmap {
            // Bitmap scans are flat in density: normalize per bit-slot.
            (KernelClass::BitmapScan, (lanes * dim) as f64)
        } else {
            (KernelClass::CsrGather, nnz as f64)
        };
        out.push(CatalogEntry {
            class,
            dim,
            density,
            threads: t,
            ns_per_unit: pass_ns / units,
        });
    }
    out
}

/// Measures per-edit patch cost (CSR sorted-prefix shifts vs bitmap bit
/// flips) with the *long* lanes on the column side, mirroring serving
/// deltas where the expensive shift is the user-dimension mirror lane.
fn measure_patches(opts: &CalibrationOpts, dim: usize, density: f64) -> Vec<CatalogEntry> {
    let cols = 64usize;
    let rows = dim;
    let mut out = Vec::new();
    for bitmap in [false, true] {
        // Slack 96: the probe columns overlap, so one (short) mirror lane
        // may absorb most of the 64 adds of a timed call.
        let mut pattern = build_pattern(rows, cols, density, bitmap, 96);
        // One add+remove pair per probe row: state returns to baseline
        // every timed call, so repetitions neither fill slack nor drift
        // density. Probe rows spread across the pattern; the edited column
        // rotates so the (long) column mirror lanes share the load.
        let probes: Vec<(u32, u32)> = (0..64u32)
            .map(|k| {
                let r = (k as usize * rows / 64) as u32;
                let c = (0..cols as u32)
                    .find(|&c| !cell_occupied(0xCA11B, r as usize, c as usize, density))
                    .unwrap_or(0);
                (r, c)
            })
            .collect();
        let adds = PatternDelta {
            adds: probes.clone(),
            removes: Vec::new(),
        };
        let removes = PatternDelta {
            adds: Vec::new(),
            removes: probes,
        };
        let edits = (adds.adds.len() + removes.removes.len()) as f64;
        let per_call = time_ns(opts.target_ns, || {
            pattern.apply_delta(&adds).expect("slack covers probes");
            pattern.apply_delta(&removes).expect("probe entries exist");
        });
        out.push(CatalogEntry {
            class: if bitmap {
                KernelClass::BitFlip
            } else {
                KernelClass::CsrPatch
            },
            dim,
            density,
            threads: 1,
            ns_per_unit: per_call / edits,
        });
    }
    out
}

/// Measures full-pattern rebuild cost, normalized per stored entry.
fn measure_rebuild(opts: &CalibrationOpts, dim: usize, density: f64) -> CatalogEntry {
    let cols = 256usize;
    let pairs: Vec<(usize, usize)> = (0..dim)
        .flat_map(|i| {
            (0..cols)
                .filter(move |&j| cell_occupied(0xB01D, i, j, density))
                .map(move |j| (i, j))
        })
        .collect();
    let nnz = pairs.len().max(1);
    let per_call = time_ns(opts.target_ns, || {
        let p = HybridPattern::with_plan(
            dim,
            cols,
            pairs.iter().copied(),
            8,
            8,
            DensityPlan::default(),
        );
        std::hint::black_box(p.nnz());
    });
    CatalogEntry {
        class: KernelClass::LaneRebuild,
        dim: nnz,
        density,
        threads: 1,
        ns_per_unit: per_call / nnz as f64,
    }
}

/// Measures the per-element cost of composing shard partial reductions
/// (the sharded backend's column-gather epilogue: summing `shards`
/// partial vectors into the output).
fn measure_compose(opts: &CalibrationOpts, dim: usize) -> CatalogEntry {
    let shards = 4usize;
    let partials: Vec<Vec<f64>> = (0..shards)
        .map(|s| (0..dim).map(|j| (s + j) as f64 * 0.5).collect())
        .collect();
    let mut out = vec![0.0f64; dim];
    let per_call = time_ns(opts.target_ns, || {
        out.fill(0.0);
        for p in &partials {
            for (o, v) in out.iter_mut().zip(p) {
                *o += v;
            }
        }
        std::hint::black_box(out[0]);
    });
    CatalogEntry {
        class: KernelClass::ShardCompose,
        dim,
        density: 0.0,
        threads: 1,
        ns_per_unit: per_call / (shards * dim) as f64,
    }
}

/// Runs the calibration pass and returns a fresh catalog stamped with this
/// host's fingerprint.
pub fn calibrate(opts: &CalibrationOpts) -> KernelCatalog {
    let mut entries = Vec::new();
    for &t in &opts.threads {
        parallel::with_threads(t, || {
            for &dim in &opts.dims {
                for &density in &opts.densities {
                    entries.extend(measure_gathers(opts, dim, density, t));
                }
            }
        });
    }
    // Patch/rebuild/compose run on the caller's thread (the engine's delta
    // and rebuild paths are serial per session); density sensitivity is
    // what the grid sweeps.
    for &dim in &opts.dims {
        for &density in &opts.densities {
            entries.extend(measure_patches(opts, dim, density));
        }
        entries.push(measure_rebuild(
            opts,
            dim,
            opts.densities[opts.densities.len() / 2],
        ));
        entries.push(measure_compose(opts, dim));
    }
    KernelCatalog {
        version: CATALOG_VERSION,
        fingerprint: HostFingerprint::current(),
        entries,
        corrections: [1.0; KernelClass::ALL.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_produces_sane_rates() {
        let catalog = calibrate(&CalibrationOpts::quick());
        assert!(catalog.is_current());
        for class in [
            KernelClass::CsrGather,
            KernelClass::BitmapScan,
            KernelClass::CsrPatch,
            KernelClass::BitFlip,
            KernelClass::LaneRebuild,
            KernelClass::ShardCompose,
        ] {
            let entries = catalog.class_entries(class);
            assert!(!entries.is_empty(), "{class:?} must be measured");
            for e in &entries {
                assert!(
                    e.ns_per_unit.is_finite() && e.ns_per_unit > 0.0,
                    "{class:?} rate must be positive, got {}",
                    e.ns_per_unit
                );
                // No primitive on any remotely modern machine costs a
                // millisecond per unit — catches broken normalization.
                assert!(e.ns_per_unit < 1e6, "{class:?} rate implausible");
            }
        }
        assert!(catalog.class_entries(KernelClass::Solve).is_empty());
    }

    #[test]
    fn deterministic_pattern_generation() {
        let a = build_pattern(16, 256, 0.3, false, 0);
        let b = build_pattern(16, 256, 0.3, false, 0);
        assert_eq!(a.nnz(), b.nnz());
        let lo = build_pattern(16, 256, 0.05, false, 0);
        assert!(lo.nnz() < a.nnz(), "density knob must matter");
    }
}
