//! The planner: per-session configuration decisions driven by the cost
//! model, plus the predicted-vs-actual feedback loop that keeps the
//! catalog honest.
//!
//! A [`Planner`] is built once per process (usually leaked to `'static`
//! so the `Copy` engine options can carry a reference) and shared by every
//! engine. [`Planner::plan`] turns a [`SessionShape`] into a
//! [`PlanDecision`]: backend + shard count, measured-break-even
//! [`DensityPlan`], and the delta-vs-rebuild patch budget. Engines report
//! `(predicted, actual)` nanoseconds per kernel class through
//! [`Planner::observe`]; [`Planner::refresh`] folds the observed ratios
//! into the catalog's correction factors with an exponential blend.

use crate::catalog::{catalog_path, KernelCatalog, KernelClass};
use crate::model::{CostModel, SessionShape};
use hnd_linalg::{parallel, DensityPlan};
use hnd_shard::ShardPlan;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Whether an engine consults its planner or pins the PR-5 constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Plan per session from the cost model when a planner is available.
    #[default]
    Auto,
    /// Ignore any planner: hand-tuned fallback constants only (the
    /// `HND_PLAN=static` behavior, for A/B runs and debugging).
    Static,
}

impl PlanMode {
    /// Resolves the `HND_PLAN` environment override: `static` pins the
    /// fallback constants, anything else (or unset) means [`PlanMode::Auto`].
    pub fn from_env() -> PlanMode {
        match std::env::var("HND_PLAN") {
            Ok(v) if v.eq_ignore_ascii_case("static") => PlanMode::Static,
            _ => PlanMode::Auto,
        }
    }
}

/// Everything an engine needs to configure itself for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDecision {
    /// `None` → single-pattern backend; `Some(plan)` → sharded execution
    /// with the plan's exact shard count.
    pub shard_plan: Option<ShardPlan>,
    /// Number of shards behind `shard_plan` (1 for the single backend).
    pub shards: usize,
    /// Lane-format thresholds derived from measured break-evens.
    pub density_plan: DensityPlan,
    /// Patch up to this many sparse-lane edits before a rebuild wins.
    pub patch_budget: usize,
    /// Entry count the decision was computed for (re-plan on 2× drift).
    pub planned_nnz: usize,
    /// Predicted nanoseconds for one apply pass under this decision.
    pub predicted_apply_ns: f64,
    /// Predicted nanoseconds per sparse-lane patch edit.
    pub predicted_patch_edit_ns: f64,
    /// Predicted nanoseconds for a full rebuild.
    pub predicted_rebuild_ns: f64,
    /// Predicted nanoseconds for a cold power-method solve.
    pub predicted_solve_ns: f64,
}

impl PlanDecision {
    /// Whether skipping a solve for a wave of `edits` pending edits is
    /// worth the bound evaluation: the solve being avoided must cost more
    /// than pricing the wave (one perturbation-bound pass over the edits,
    /// which scales like the patch path). With an unmeasured model (both
    /// predictions zero) this stays `true` — the skip path's own safety
    /// gates still apply.
    pub fn skip_profitable(&self, edits: usize) -> bool {
        self.predicted_solve_ns > edits as f64 * self.predicted_patch_edit_ns
    }
}

/// Per-class feedback accumulators (nanosecond sums; `u64` keeps the
/// planner lock-free on the observe path and `Eq`-friendly upstream).
#[derive(Debug, Default)]
struct Feedback {
    predicted_ns: AtomicU64,
    actual_ns: AtomicU64,
}

/// Shard counts the planner evaluates (beyond this, compose overhead and
/// scheduling noise dominate on every box we target).
const SHARD_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];

/// Sessions below this entry count never shard: the catalog grids don't
/// extend that low and the fixed per-shard overhead is unamortizable.
const SHARD_NNZ_FLOOR: usize = 100_000;

/// Patch budgets never drop below this many edits (a rebuild can never
/// beat a handful of memmoves, whatever the model says).
const MIN_PATCH_BUDGET: usize = 16;

/// The cost-model planner. Shared immutably (`&'static`) across engines;
/// feedback goes through atomics and the model behind a mutex.
pub struct Planner {
    model: Mutex<CostModel>,
    feedback: [Feedback; KernelClass::ALL.len()],
    /// Exponential blend weight folded into corrections per refresh.
    alpha: f64,
}

impl std::fmt::Debug for Planner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Planner")
            .field("fingerprint", &self.lock().catalog().fingerprint)
            .field("alpha", &self.alpha)
            .finish_non_exhaustive()
    }
}

impl PartialEq for Planner {
    /// Identity comparison: two planner references are equal when they are
    /// the same planner (options structs only need to compare wiring).
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

impl Planner {
    /// Wraps a calibrated catalog.
    pub fn new(catalog: KernelCatalog) -> Self {
        Planner {
            model: Mutex::new(CostModel::new(catalog)),
            feedback: Default::default(),
            alpha: 0.3,
        }
    }

    /// Leaks a planner to `'static` so `Copy` option structs can carry it.
    pub fn leaked(catalog: KernelCatalog) -> &'static Planner {
        Box::leak(Box::new(Planner::new(catalog)))
    }

    /// The process-wide planner: lazily loads the per-host catalog from
    /// [`catalog_path`] on first use. `None` when no current catalog
    /// exists (stale fingerprint, wrong version, or never calibrated) or
    /// when `HND_PLAN=static` pins the fallback constants — engines then
    /// run on the hand-tuned PR-5 defaults, bit-identical to before.
    pub fn shared() -> Option<&'static Planner> {
        static SHARED: OnceLock<Option<&'static Planner>> = OnceLock::new();
        *SHARED.get_or_init(|| {
            if PlanMode::from_env() == PlanMode::Static {
                return None;
            }
            let catalog = KernelCatalog::load_checked(&catalog_path()).ok()?;
            Some(Planner::leaked(catalog))
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CostModel> {
        self.model.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs `f` against the wrapped cost model (read-only snapshot view).
    pub fn with_model<R>(&self, f: impl FnOnce(&CostModel) -> R) -> R {
        f(&self.lock())
    }

    /// Plans one session. `allow_sharded` gates the sharded backend (the
    /// engine passes `false` when its solver family has no sharded path or
    /// options pin a shard plan already).
    pub fn plan(&self, shape: &SessionShape, allow_sharded: bool) -> PlanDecision {
        let threads = parallel::threads();
        let model = self.lock();

        // Density plan from measured break-evens: row lanes span the
        // option columns, mirror column lanes span the users. A break-even
        // above 1.0 means bitmaps never win at that dimension.
        let fallback = DensityPlan::default();
        let to_threshold = |be: Option<f64>, fallback: f64| match be {
            Some(d) if d <= 1.0 => d.max(0.02),
            Some(_) => f64::INFINITY,
            None => fallback,
        };
        let density_plan = DensityPlan {
            row_density: to_threshold(
                model.break_even_density(shape.cols.max(1), threads),
                fallback.row_density,
            ),
            col_density: to_threshold(
                model.break_even_density(shape.users.max(1), threads),
                fallback.col_density,
            ),
            min_dim: 128,
        };

        // Backend: argmin of predicted apply cost over shard candidates.
        let mut shards = 1usize;
        let mut predicted_apply_ns = model.predict_apply(shape, &density_plan, threads, 1);
        if allow_sharded && shape.nnz >= SHARD_NNZ_FLOOR {
            for &s in &SHARD_CANDIDATES[1..] {
                // Keep shards meaningful: at least ~4k users each.
                if shape.users / s < 4096 {
                    break;
                }
                let cost = model.predict_apply(shape, &density_plan, threads, s);
                if cost < predicted_apply_ns {
                    predicted_apply_ns = cost;
                    shards = s;
                }
            }
        }

        // Delta-vs-rebuild cutoff: patch while cumulative patch cost stays
        // under one rebuild.
        let predicted_rebuild_ns = model.predict_rebuild(shape);
        let predicted_patch_edit_ns = model
            .rate(
                KernelClass::CsrPatch,
                shape.users.max(1),
                shape.density(),
                1,
            )
            .unwrap_or(0.0);
        let patch_budget = if predicted_patch_edit_ns > 0.0 && predicted_rebuild_ns > 0.0 {
            ((predicted_rebuild_ns / predicted_patch_edit_ns) as usize).max(MIN_PATCH_BUDGET)
        } else {
            // No measurement: keep the PR-5 heuristic.
            shape.nnz / 8 + MIN_PATCH_BUDGET
        };

        let predicted_solve_ns = model.predict_solve(shape, &density_plan, threads, shards, 1.0);

        PlanDecision {
            shard_plan: (shards > 1).then(|| ShardPlan::exactly(shards)),
            shards,
            density_plan,
            patch_budget,
            planned_nnz: shape.nnz,
            predicted_apply_ns,
            predicted_patch_edit_ns,
            predicted_rebuild_ns,
            predicted_solve_ns,
        }
    }

    /// Records one predicted-vs-actual pair for a kernel class. Lock-free;
    /// engines call this on their hot paths.
    pub fn observe(&self, class: KernelClass, predicted_ns: u64, actual_ns: u64) {
        let fb = &self.feedback[class.index()];
        fb.predicted_ns.fetch_add(predicted_ns, Ordering::Relaxed);
        fb.actual_ns.fetch_add(actual_ns, Ordering::Relaxed);
    }

    /// Per-class observed drift `actual / predicted` since the last
    /// refresh (`None` where nothing was observed).
    pub fn drift(&self) -> [Option<f64>; KernelClass::ALL.len()] {
        let mut out = [None; KernelClass::ALL.len()];
        for (i, fb) in self.feedback.iter().enumerate() {
            let p = fb.predicted_ns.load(Ordering::Relaxed);
            let a = fb.actual_ns.load(Ordering::Relaxed);
            if p > 0 && a > 0 {
                out[i] = Some(a as f64 / p as f64);
            }
        }
        out
    }

    /// Folds accumulated drift into the catalog's per-class correction
    /// factors (`corr ← corr · ratio^α`, the exponential blend) and resets
    /// the accumulators. Ratios are clamped to one decade per refresh so a
    /// single anomalous window cannot wreck the model.
    pub fn refresh(&self) {
        let drift = self.drift();
        let mut model = self.lock();
        for (i, ratio) in drift.iter().enumerate() {
            if let Some(r) = ratio {
                let r = r.clamp(0.1, 10.0);
                let corrections = &mut model.catalog_mut().corrections;
                corrections[i] = (corrections[i] * r.powf(self.alpha)).clamp(0.05, 20.0);
            }
            self.feedback[i].predicted_ns.store(0, Ordering::Relaxed);
            self.feedback[i].actual_ns.store(0, Ordering::Relaxed);
        }
    }

    /// Persists the (possibly refreshed) catalog.
    pub fn persist(&self, path: &Path) -> Result<(), crate::catalog::CatalogError> {
        self.lock().catalog().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{calibrate, CalibrationOpts};
    use crate::model::SessionShape;

    fn quick_planner() -> Planner {
        Planner::new(calibrate(&CalibrationOpts::quick()))
    }

    fn shape(users: usize, cols: usize, density: f64) -> SessionShape {
        let row_counts = vec![(density * cols as f64) as usize; users];
        let col_counts = vec![(density * users as f64) as usize; cols];
        SessionShape::from_counts(&row_counts, &col_counts)
    }

    #[test]
    fn small_sessions_stay_single_backend() {
        let planner = quick_planner();
        let decision = planner.plan(&shape(2000, 50, 0.2), true);
        assert_eq!(decision.shards, 1);
        assert!(decision.shard_plan.is_none());
        assert!(decision.patch_budget >= MIN_PATCH_BUDGET);
        assert!(decision.predicted_apply_ns > 0.0);
        assert!(decision.predicted_rebuild_ns > 0.0);
    }

    #[test]
    fn sharding_respects_gate() {
        let planner = quick_planner();
        let big = shape(100_000, 40, 0.5);
        let gated = planner.plan(&big, false);
        assert_eq!(gated.shards, 1, "allow_sharded=false must pin Single");
        let open = planner.plan(&big, true);
        if open.shards > 1 {
            let plan = open.shard_plan.expect("sharded decision carries a plan");
            assert_eq!(plan.shard_count(big.nnz), open.shards);
        }
    }

    #[test]
    fn feedback_blends_corrections() {
        let planner = quick_planner();
        let before =
            planner.with_model(|m| m.catalog().corrections[KernelClass::CsrGather.index()]);
        // Report the kernel running 4× slower than predicted.
        planner.observe(KernelClass::CsrGather, 1_000, 4_000);
        assert!(planner.drift()[KernelClass::CsrGather.index()].unwrap() > 3.9);
        planner.refresh();
        let after = planner.with_model(|m| m.catalog().corrections[KernelClass::CsrGather.index()]);
        assert!(after > before, "correction must move toward observed cost");
        // Accumulators reset on refresh.
        assert!(planner.drift()[KernelClass::CsrGather.index()].is_none());
    }

    #[test]
    fn plan_mode_env_parsing() {
        // Uses the parsing helper directly (env mutation in tests races).
        assert_eq!(PlanMode::default(), PlanMode::Auto);
    }
}
