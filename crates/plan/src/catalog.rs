//! The measured kernel-cost catalog: what the primitive kernels actually
//! cost **on this host**.
//!
//! A [`KernelCatalog`] is the persisted result of one calibration pass
//! ([`crate::calibrate`]): for each primitive kernel class the serving
//! stack is built from, a small grid of `(lane dimension × density ×
//! thread count)` measurements, each normalized to a per-unit rate
//! (ns/entry for gathers, ns/bit-slot for bitmap scans, ns/edit for
//! patches, …). The [`crate::CostModel`] interpolates these entries;
//! nothing downstream ever reads a hand-tuned constant when a catalog is
//! present.
//!
//! Catalogs are **per host**: a [`HostFingerprint`] (SIMD tier × core
//! count × schema version) is stored alongside the entries, and
//! [`KernelCatalog::load_checked`] treats any mismatch as *stale* — the
//! caller recalibrates instead of planning from another machine's numbers.
//! This is what retires the "re-measure thresholds on a multi-core box"
//! debt: wherever the binary lands, the first calibration pass measures
//! that box and every threshold is derived from those measurements.

use serde::{DeError, Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// Schema version of the persisted catalog. Bump on any change to the
/// entry layout or rate units; older files are then treated as stale.
pub const CATALOG_VERSION: u32 = 1;

/// The primitive kernel classes the calibration pass measures. Every
/// hot-path cost the planner reasons about decomposes into these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelClass {
    /// Sparse (u32-index) lane gather: `Σ x[idx]` — unit: ns per stored
    /// entry.
    CsrGather,
    /// Bitmap lane word scan (SIMD-dispatched) — unit: ns per bit-slot
    /// scanned (cost is flat in density, linear in lane dimension).
    BitmapScan,
    /// In-place CSR/CSC patch of a sparse lane (sorted-prefix shift under
    /// slack) — unit: ns per pattern edit.
    CsrPatch,
    /// Bitmap-lane edit (one bit flip, no slack accounting) — unit: ns per
    /// pattern edit.
    BitFlip,
    /// Full lane/arena rebuild (`HybridPattern::with_plan`) — unit: ns per
    /// stored entry.
    LaneRebuild,
    /// Per-shard partial-reduction compose (summing shard partials into
    /// the output vector) — unit: ns per composed element
    /// (`shards × columns`).
    ShardCompose,
    /// Whole-solve feedback class: carries no calibration entries (solve
    /// cost is predicted as iterations × apply cost), only the
    /// predicted-vs-actual correction blended in from serving feedback.
    Solve,
}

impl KernelClass {
    /// Every class, in stable serialization order.
    pub const ALL: [KernelClass; 7] = [
        KernelClass::CsrGather,
        KernelClass::BitmapScan,
        KernelClass::CsrPatch,
        KernelClass::BitFlip,
        KernelClass::LaneRebuild,
        KernelClass::ShardCompose,
        KernelClass::Solve,
    ];

    /// Stable snake_case name (the persisted form).
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::CsrGather => "csr_gather",
            KernelClass::BitmapScan => "bitmap_scan",
            KernelClass::CsrPatch => "csr_patch",
            KernelClass::BitFlip => "bit_flip",
            KernelClass::LaneRebuild => "lane_rebuild",
            KernelClass::ShardCompose => "shard_compose",
            KernelClass::Solve => "solve",
        }
    }

    /// Parses the persisted name.
    pub fn from_name(name: &str) -> Option<KernelClass> {
        KernelClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Dense index into per-class arrays (drift accumulators, corrections).
    pub fn index(self) -> usize {
        KernelClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("class listed in ALL")
    }
}

/// Identity of the machine a catalog was measured on. Planning from
/// another machine's rates is worse than falling back to the documented
/// constants, so any mismatch invalidates the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Detected SIMD tier (`avx512` / `avx2` / `scalar`).
    pub isa: String,
    /// Available hardware parallelism at calibration time.
    pub cores: usize,
}

impl HostFingerprint {
    /// The fingerprint of the current process's host.
    pub fn current() -> Self {
        HostFingerprint {
            isa: hnd_linalg::simd::kernel_isa().name().to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// One measured rate: kernel `class` at lane dimension `dim`, lane density
/// `density`, `threads` kernel threads → `ns_per_unit` (unit per class,
/// see [`KernelClass`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogEntry {
    /// The measured kernel class.
    pub class: KernelClass,
    /// Lane dimension of the measurement (bit-slots for bitmap scans,
    /// gathered-span length for CSR; total stored entries for
    /// [`KernelClass::LaneRebuild`]).
    pub dim: usize,
    /// Lane density of the measurement workload.
    pub density: f64,
    /// Kernel thread count in effect ([`hnd_linalg::parallel::threads`]).
    pub threads: usize,
    /// Measured cost, normalized per unit of work.
    pub ns_per_unit: f64,
}

/// The versioned, per-host measured cost catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCatalog {
    /// Schema version ([`CATALOG_VERSION`] when freshly calibrated).
    pub version: u32,
    /// Host the rates were measured on.
    pub fingerprint: HostFingerprint,
    /// Measured rates (grid points; the cost model interpolates).
    pub entries: Vec<CatalogEntry>,
    /// Per-class multiplicative corrections blended in from serving
    /// feedback (predicted-vs-actual, see `Planner::refresh`). `1.0` =
    /// uncorrected. Indexed by [`KernelClass::index`].
    pub corrections: [f64; KernelClass::ALL.len()],
}

/// Why a persisted catalog was rejected.
#[derive(Debug)]
pub enum CatalogError {
    /// File could not be read or written.
    Io(std::io::Error),
    /// File parsed but does not describe a catalog (or wrong types).
    Malformed(String),
    /// Valid catalog, wrong host or schema version — recalibrate.
    Stale {
        /// What the file carries.
        found: String,
        /// What this host/build expects.
        expected: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog io error: {e}"),
            CatalogError::Malformed(m) => write!(f, "malformed catalog: {m}"),
            CatalogError::Stale { found, expected } => {
                write!(f, "stale catalog: found {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

impl Serialize for KernelCatalog {
    fn to_value(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("class".into(), Value::String(e.class.name().into())),
                    ("dim".into(), Value::Int(e.dim as i64)),
                    ("density".into(), Value::Float(e.density)),
                    ("threads".into(), Value::Int(e.threads as i64)),
                    ("ns_per_unit".into(), Value::Float(e.ns_per_unit)),
                ])
            })
            .collect();
        let corrections = KernelClass::ALL
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("class".into(), Value::String(c.name().into())),
                    ("factor".into(), Value::Float(self.corrections[c.index()])),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), Value::Int(i64::from(self.version))),
            ("isa".into(), Value::String(self.fingerprint.isa.clone())),
            ("cores".into(), Value::Int(self.fingerprint.cores as i64)),
            ("entries".into(), Value::Array(entries)),
            ("corrections".into(), Value::Array(corrections)),
        ])
    }
}

impl Deserialize for KernelCatalog {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = |k: &str| {
            value
                .get(k)
                .ok_or_else(|| DeError::new(format!("catalog missing field {k:?}")))
        };
        let version = u32::from_value(field("version")?)?;
        let fingerprint = HostFingerprint {
            isa: String::from_value(field("isa")?)?,
            cores: usize::from_value(field("cores")?)?,
        };
        let Value::Array(raw_entries) = field("entries")? else {
            return Err(DeError::new("catalog entries must be an array"));
        };
        let mut entries = Vec::with_capacity(raw_entries.len());
        for e in raw_entries {
            let class_name = String::from_value(
                e.get("class")
                    .ok_or_else(|| DeError::new("entry missing class"))?,
            )?;
            let class = KernelClass::from_name(&class_name)
                .ok_or_else(|| DeError::new(format!("unknown kernel class {class_name:?}")))?;
            entries.push(CatalogEntry {
                class,
                dim: usize::from_value(e.get("dim").unwrap_or(&Value::Null))?,
                density: f64::from_value(e.get("density").unwrap_or(&Value::Null))?,
                threads: usize::from_value(e.get("threads").unwrap_or(&Value::Null))?,
                ns_per_unit: f64::from_value(e.get("ns_per_unit").unwrap_or(&Value::Null))?,
            });
        }
        let mut corrections = [1.0; KernelClass::ALL.len()];
        if let Some(Value::Array(raw)) = value.get("corrections") {
            for c in raw {
                let name = String::from_value(
                    c.get("class")
                        .ok_or_else(|| DeError::new("correction missing class"))?,
                )?;
                let class = KernelClass::from_name(&name)
                    .ok_or_else(|| DeError::new(format!("unknown kernel class {name:?}")))?;
                corrections[class.index()] =
                    f64::from_value(c.get("factor").unwrap_or(&Value::Null))?;
            }
        }
        Ok(KernelCatalog {
            version,
            fingerprint,
            entries,
            corrections,
        })
    }
}

impl KernelCatalog {
    /// `true` when the catalog was measured on this host under the current
    /// schema.
    pub fn is_current(&self) -> bool {
        self.version == CATALOG_VERSION && self.fingerprint == HostFingerprint::current()
    }

    /// Serializes and writes the catalog to `path` (creating parent
    /// directories).
    pub fn save(&self, path: &Path) -> Result<(), CatalogError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(CatalogError::Io)?;
            }
        }
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| CatalogError::Malformed(e.to_string()))?;
        std::fs::write(path, text).map_err(CatalogError::Io)
    }

    /// Loads `path` without validating the fingerprint (inspection /
    /// tests).
    pub fn load(path: &Path) -> Result<Self, CatalogError> {
        let text = std::fs::read_to_string(path).map_err(CatalogError::Io)?;
        serde_json::from_str(&text).map_err(|e| CatalogError::Malformed(e.to_string()))
    }

    /// Loads `path` and rejects catalogs measured on a different host or
    /// under a different schema version as [`CatalogError::Stale`].
    pub fn load_checked(path: &Path) -> Result<Self, CatalogError> {
        let catalog = Self::load(path)?;
        if !catalog.is_current() {
            let here = HostFingerprint::current();
            return Err(CatalogError::Stale {
                found: format!(
                    "v{} {}/c{}",
                    catalog.version, catalog.fingerprint.isa, catalog.fingerprint.cores
                ),
                expected: format!("v{CATALOG_VERSION} {}/c{}", here.isa, here.cores),
            });
        }
        Ok(catalog)
    }

    /// Entries of one class, sorted by `(threads, dim, density)`.
    pub fn class_entries(&self, class: KernelClass) -> Vec<CatalogEntry> {
        let mut out: Vec<CatalogEntry> = self
            .entries
            .iter()
            .copied()
            .filter(|e| e.class == class)
            .collect();
        out.sort_by(|a, b| {
            (a.threads, a.dim)
                .cmp(&(b.threads, b.dim))
                .then(a.density.total_cmp(&b.density))
        });
        out
    }
}

/// The per-host catalog path: `$HND_CATALOG` when set, else
/// `$HOME/.cache/hnd/kernel-catalog.json`, else a temp-dir fallback.
pub fn catalog_path() -> PathBuf {
    if let Ok(p) = std::env::var("HND_CATALOG") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    if let Ok(home) = std::env::var("HOME") {
        if !home.is_empty() {
            return Path::new(&home).join(".cache/hnd/kernel-catalog.json");
        }
    }
    std::env::temp_dir().join("hnd-kernel-catalog.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_round_trip() {
        for c in KernelClass::ALL {
            assert_eq!(KernelClass::from_name(c.name()), Some(c));
        }
        assert_eq!(KernelClass::from_name("warp_drive"), None);
    }

    #[test]
    fn fingerprint_matches_host() {
        let fp = HostFingerprint::current();
        assert!(!fp.isa.is_empty());
        assert!(fp.cores >= 1);
        assert_eq!(fp, HostFingerprint::current());
    }

    #[test]
    fn class_entries_sorted() {
        let mk = |dim, threads, d| CatalogEntry {
            class: KernelClass::CsrGather,
            dim,
            density: d,
            threads,
            ns_per_unit: 1.0,
        };
        let cat = KernelCatalog {
            version: CATALOG_VERSION,
            fingerprint: HostFingerprint::current(),
            entries: vec![mk(4096, 1, 0.6), mk(256, 1, 0.1), mk(256, 2, 0.1)],
            corrections: [1.0; KernelClass::ALL.len()],
        };
        let sorted = cat.class_entries(KernelClass::CsrGather);
        assert_eq!(sorted[0].dim, 256);
        assert_eq!(sorted[0].threads, 1);
        assert_eq!(sorted.last().unwrap().threads, 2);
        assert!(cat.class_entries(KernelClass::Solve).is_empty());
    }
}
