#![warn(missing_docs)]

//! # hnd-plan
//!
//! Self-calibrating kernel-cost catalog and cost-model planner for the
//! spectral serving stack.
//!
//! PRs 1–5 tuned every hot-path layout decision by hand on one 1-vCPU
//! AVX-512 box: the density promotion thresholds (~12% rows / ~28%
//! columns), the 16 MiB shard working set, the ~nnz/8 delta-vs-rebuild
//! cutoff, the shard activation floors. Those constants are right on that
//! box and guesses everywhere else. This crate makes the system measure
//! itself instead:
//!
//! * [`calibrate`] microbenchmarks the primitive kernels the stack is
//!   built from — CSR gathers, bitmap word scans, in-place patches, bit
//!   flips, lane rebuilds, shard partial composes — over density × size ×
//!   thread grids, on the machine it runs on.
//! * [`KernelCatalog`] persists the measured rates per host (versioned,
//!   fingerprint-checked: a catalog from another ISA or core count is
//!   stale and recalibrated, never trusted).
//! * [`CostModel`] interpolates the catalog into predicted nanoseconds
//!   for composite engine operations (`predict_apply` / `predict_delta` /
//!   `predict_rebuild` / `predict_solve`).
//! * [`Planner`] turns predictions into per-session decisions — backend
//!   (single vs sharded + shard count), lane-format thresholds at the
//!   *measured* break-even density, and the patch-vs-rebuild budget — and
//!   closes the loop: engines report predicted-vs-actual nanoseconds,
//!   [`Planner::refresh`] blends the drift back into the catalog.
//!
//! Everything degrades gracefully: with no catalog present (or
//! `HND_PLAN=static`), [`Planner::shared`] returns `None` and the serving
//! layer runs on the documented hand-tuned fallbacks, bit-identical to
//! PR 5.

pub mod calibrate;
pub mod catalog;
pub mod model;
pub mod planner;

pub use calibrate::{calibrate, CalibrationOpts};
pub use catalog::{
    catalog_path, CatalogEntry, CatalogError, HostFingerprint, KernelCatalog, KernelClass,
    CATALOG_VERSION,
};
pub use model::{density_bucket, CostModel, SessionShape, HIST_BUCKETS};
pub use planner::{PlanDecision, PlanMode, Planner};
