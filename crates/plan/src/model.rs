//! The kernel cost model: turns raw [`KernelCatalog`] measurements into
//! predicted nanosecond costs for the engine's composite operations.
//!
//! Rates are looked up per kernel class at the nearest measured thread
//! count and density, log-interpolated across the dimension axis (cache
//! effects make per-unit cost roughly piecewise-linear in `log dim`), and
//! scaled by the catalog's per-class feedback corrections. Composite
//! predictions then assemble per-lane costs over a session's density
//! histogram — the same bucketing the planner uses to describe sessions.

use crate::catalog::{CatalogEntry, KernelCatalog, KernelClass};
use hnd_linalg::DensityPlan;

/// Number of density buckets in a [`SessionShape`] histogram.
pub const HIST_BUCKETS: usize = 8;

/// Upper edges of the density buckets (the last bucket is open-ended).
pub const HIST_EDGES: [f64; HIST_BUCKETS] = [0.05, 0.10, 0.20, 0.30, 0.45, 0.60, 0.80, 1.01];

/// Representative density used when predicting the cost of a bucket.
fn bucket_mid(bucket: usize) -> f64 {
    let hi = HIST_EDGES[bucket].min(1.0);
    let lo = if bucket == 0 {
        0.0
    } else {
        HIST_EDGES[bucket - 1]
    };
    (lo + hi) * 0.5
}

/// Bucket index of a lane density.
pub fn density_bucket(density: f64) -> usize {
    HIST_EDGES
        .iter()
        .position(|&edge| density < edge)
        .unwrap_or(HIST_BUCKETS - 1)
}

/// The shape summary a [`Planner`](crate::planner::Planner) needs about a
/// session: dimensions, total entries, and per-lane density histograms for
/// both gather directions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionShape {
    /// Number of users (rows of the pattern; the column-lane dimension).
    pub users: usize,
    /// Number of one-hot option columns (the row-lane dimension).
    pub cols: usize,
    /// Total stored entries.
    pub nnz: usize,
    /// Fraction of user rows per density bucket.
    pub row_hist: [f64; HIST_BUCKETS],
    /// Fraction of option columns per density bucket.
    pub col_hist: [f64; HIST_BUCKETS],
}

impl SessionShape {
    /// Builds the shape from per-lane entry counts (the engine gets these
    /// straight from `ResponseMatrix::row_counts`/`col_counts`).
    pub fn from_counts(row_counts: &[usize], col_counts: &[usize]) -> Self {
        let users = row_counts.len();
        let cols = col_counts.len();
        let nnz = row_counts.iter().sum();
        let hist = |counts: &[usize], dim: usize| {
            let mut h = [0.0f64; HIST_BUCKETS];
            if counts.is_empty() || dim == 0 {
                return h;
            }
            for &c in counts {
                h[density_bucket(c as f64 / dim as f64)] += 1.0;
            }
            for v in &mut h {
                *v /= counts.len() as f64;
            }
            h
        };
        SessionShape {
            users,
            cols,
            nnz,
            row_hist: hist(row_counts, cols),
            col_hist: hist(col_counts, users),
        }
    }

    /// Overall matrix density.
    pub fn density(&self) -> f64 {
        if self.users == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.users * self.cols) as f64
        }
    }
}

/// Cost predictions for the engine's composite operations, interpolated
/// from one host's [`KernelCatalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    catalog: KernelCatalog,
}

impl CostModel {
    /// Wraps a catalog. The model borrows the catalog's correction factors
    /// at every lookup, so a refreshed catalog immediately shifts costs.
    pub fn new(catalog: KernelCatalog) -> Self {
        CostModel { catalog }
    }

    /// The wrapped catalog.
    pub fn catalog(&self) -> &KernelCatalog {
        &self.catalog
    }

    /// Mutable access for feedback blending.
    pub fn catalog_mut(&mut self) -> &mut KernelCatalog {
        &mut self.catalog
    }

    /// Per-unit rate for `class` at the given lane dimension, density and
    /// thread count: nearest measured threads, nearest measured density,
    /// log-dim interpolation between bracketing grid dims, clamped at the
    /// grid edges, scaled by the class's feedback correction. `None` when
    /// the catalog holds no measurements for the class.
    pub fn rate(
        &self,
        class: KernelClass,
        dim: usize,
        density: f64,
        threads: usize,
    ) -> Option<f64> {
        let entries = self.catalog.class_entries(class);
        if entries.is_empty() {
            return None;
        }
        // Nearest measured thread count (ties resolve to the smaller).
        let t = entries
            .iter()
            .map(|e| e.threads)
            .min_by_key(|&t| (t.abs_diff(threads), t))?;
        let at_t: Vec<&CatalogEntry> = entries.iter().filter(|e| e.threads == t).collect();
        // Nearest measured density.
        let d = at_t.iter().map(|e| e.density).min_by(|a, b| {
            (a - density)
                .abs()
                .partial_cmp(&(b - density).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        let at_d: Vec<&CatalogEntry> = at_t
            .into_iter()
            .filter(|e| (e.density - d).abs() < 1e-12)
            .collect();
        let correction = self.catalog.corrections[class.index()];
        // Log-dim interpolation between the bracketing grid points.
        let dim = dim.max(1) as f64;
        let mut lower: Option<&CatalogEntry> = None;
        let mut upper: Option<&CatalogEntry> = None;
        for e in &at_d {
            if (e.dim as f64) <= dim && lower.is_none_or(|l| e.dim > l.dim) {
                lower = Some(e);
            }
            if (e.dim as f64) >= dim && upper.is_none_or(|u| e.dim < u.dim) {
                upper = Some(e);
            }
        }
        let rate = match (lower, upper) {
            (Some(l), Some(u)) if l.dim == u.dim => l.ns_per_unit,
            (Some(l), Some(u)) => {
                let lx = (l.dim as f64).ln();
                let ux = (u.dim as f64).ln();
                let w = (dim.ln() - lx) / (ux - lx);
                l.ns_per_unit * (1.0 - w) + u.ns_per_unit * w
            }
            (Some(e), None) | (None, Some(e)) => e.ns_per_unit,
            (None, None) => return None,
        };
        Some(rate * correction)
    }

    /// The lane density at which a bitmap lane becomes cheaper to gather
    /// than a CSR lane of the same dimension: the flat per-slot scan cost
    /// divided by the per-entry gather cost. Values above 1.0 mean the
    /// bitmap never wins at this dimension (the planner then forces CSR).
    pub fn break_even_density(&self, dim: usize, threads: usize) -> Option<f64> {
        // csr rate varies (mildly) with density: one fixed-point pass from
        // a mid-density seed is plenty for a threshold.
        let mut d = 0.2f64;
        for _ in 0..2 {
            let bitmap = self.rate(KernelClass::BitmapScan, dim, d, threads)?;
            let csr = self.rate(KernelClass::CsrGather, dim, d, threads)?;
            if csr <= 0.0 {
                return None;
            }
            d = (bitmap / csr).clamp(0.01, 1.5);
        }
        Some(d)
    }

    /// Per-lane gather cost under `plan`: bitmap lanes pay the flat
    /// per-slot scan, sparse lanes pay per stored entry.
    fn lane_cost(&self, plan: &DensityPlan, dim: usize, density: f64, threads: usize) -> f64 {
        let lane_nnz = density * dim as f64;
        let bitmap = plan.row_is_bitmap(lane_nnz.round() as usize, dim);
        if bitmap {
            self.rate(KernelClass::BitmapScan, dim, density, threads)
                .map_or(0.0, |r| r * dim as f64)
        } else {
            self.rate(KernelClass::CsrGather, dim, density, threads)
                .map_or(0.0, |r| r * lane_nnz)
        }
    }

    /// Predicted nanoseconds for one full apply (row gather `C·w` plus
    /// mirror-column gather `Cᵀ·s`) under `plan`, with the column pass
    /// optionally split over `shards` (each shard sees `users/shards`
    /// column-lane entries; partial vectors are then composed).
    pub fn predict_apply(
        &self,
        shape: &SessionShape,
        plan: &DensityPlan,
        threads: usize,
        shards: usize,
    ) -> f64 {
        let shards = shards.max(1);
        let mut total = 0.0;
        // Row pass: `users` lanes of dimension `cols`.
        for (b, frac) in shape.row_hist.iter().enumerate() {
            if *frac > 0.0 {
                total += *frac
                    * shape.users as f64
                    * self.lane_cost(plan, shape.cols, bucket_mid(b), threads);
            }
        }
        // Column pass: `cols` lanes of dimension `users`; sharding shortens
        // the lane (better cache locality, captured by the dim axis) but
        // each shard still walks its own share of the entries, so per-entry
        // work is preserved and only the rate's dim argument changes.
        let col_dim = (shape.users / shards).max(1);
        for (b, frac) in shape.col_hist.iter().enumerate() {
            if *frac > 0.0 {
                let density = bucket_mid(b);
                let lane_nnz = density * shape.users as f64;
                let bitmap = plan.col_is_bitmap(lane_nnz.round() as usize, shape.users);
                let cost = if bitmap {
                    self.rate(KernelClass::BitmapScan, col_dim, density, threads)
                        .map_or(0.0, |r| r * shape.users as f64)
                } else {
                    self.rate(KernelClass::CsrGather, col_dim, density, threads)
                        .map_or(0.0, |r| r * lane_nnz)
                };
                total += *frac * shape.cols as f64 * cost;
            }
        }
        if shards > 1 {
            let compose = self
                .rate(KernelClass::ShardCompose, shape.cols, 0.0, threads)
                .unwrap_or(0.0);
            total += compose * (shards * shape.cols) as f64;
        }
        total
    }

    /// Predicted nanoseconds to patch a delta in place: `sparse_edits`
    /// edits touching at least one sparse (CSR) lane pay the memmove-bound
    /// patch rate at the long (user) dimension; `bitmap_edits` pay the
    /// flat bit-flip rate.
    pub fn predict_delta(
        &self,
        shape: &SessionShape,
        sparse_edits: usize,
        bitmap_edits: usize,
    ) -> f64 {
        let patch = self
            .rate(KernelClass::CsrPatch, shape.users, shape.density(), 1)
            .unwrap_or(0.0);
        let flip = self
            .rate(KernelClass::BitFlip, shape.users, shape.density(), 1)
            .unwrap_or(0.0);
        patch * sparse_edits as f64 + flip * bitmap_edits as f64
    }

    /// Predicted nanoseconds for a full pattern rebuild (sort + dedup +
    /// lane layout over all entries). The rebuild class is keyed by total
    /// entry count rather than lane dimension.
    pub fn predict_rebuild(&self, shape: &SessionShape) -> f64 {
        self.rate(
            KernelClass::LaneRebuild,
            shape.nnz.max(1),
            shape.density(),
            1,
        )
        .map_or(0.0, |r| r * shape.nnz.max(1) as f64)
    }

    /// Predicted nanoseconds for a cold spectral solve: a nominal
    /// iteration budget of apply passes, scaled by a per-solver-family
    /// multiplier (relative pass counts observed in the solver benches)
    /// and the solve-class feedback correction.
    pub fn predict_solve(
        &self,
        shape: &SessionShape,
        plan: &DensityPlan,
        threads: usize,
        shards: usize,
        solver_factor: f64,
    ) -> f64 {
        const NOMINAL_ITERATIONS: f64 = 60.0;
        let apply = self.predict_apply(shape, plan, threads, shards);
        let correction = self.catalog.corrections[KernelClass::Solve.index()];
        NOMINAL_ITERATIONS * solver_factor * apply * correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{CatalogEntry, HostFingerprint, KernelCatalog, CATALOG_VERSION};

    fn toy_catalog() -> KernelCatalog {
        let mut entries = Vec::new();
        for &(dim, rate) in &[(256usize, 1.0f64), (4096, 2.0)] {
            entries.push(CatalogEntry {
                class: KernelClass::CsrGather,
                dim,
                density: 0.2,
                threads: 1,
                ns_per_unit: rate,
            });
            entries.push(CatalogEntry {
                class: KernelClass::BitmapScan,
                dim,
                density: 0.2,
                threads: 1,
                ns_per_unit: rate * 0.25,
            });
        }
        KernelCatalog {
            version: CATALOG_VERSION,
            fingerprint: HostFingerprint::current(),
            entries,
            corrections: [1.0; KernelClass::ALL.len()],
        }
    }

    #[test]
    fn rate_interpolates_log_dim() {
        let model = CostModel::new(toy_catalog());
        let r256 = model.rate(KernelClass::CsrGather, 256, 0.2, 1).unwrap();
        let r1024 = model.rate(KernelClass::CsrGather, 1024, 0.2, 1).unwrap();
        let r4096 = model.rate(KernelClass::CsrGather, 4096, 0.2, 1).unwrap();
        assert_eq!(r256, 1.0);
        assert_eq!(r4096, 2.0);
        assert!(r256 < r1024 && r1024 < r4096);
        // 1024 is the log-midpoint of [256, 4096].
        assert!((r1024 - 1.5).abs() < 1e-9);
        // Clamped outside the grid.
        assert_eq!(model.rate(KernelClass::CsrGather, 16, 0.2, 1).unwrap(), 1.0);
        assert_eq!(
            model.rate(KernelClass::CsrGather, 1 << 20, 0.2, 1).unwrap(),
            2.0
        );
    }

    #[test]
    fn break_even_matches_rate_ratio() {
        let model = CostModel::new(toy_catalog());
        // bitmap per-slot = 0.25 × csr per-entry at every dim → d* = 0.25.
        let d = model.break_even_density(1024, 1).unwrap();
        assert!((d - 0.25).abs() < 1e-9);
    }

    #[test]
    fn corrections_scale_rates() {
        let mut catalog = toy_catalog();
        catalog.corrections[KernelClass::CsrGather.index()] = 2.0;
        let model = CostModel::new(catalog);
        assert_eq!(
            model.rate(KernelClass::CsrGather, 256, 0.2, 1).unwrap(),
            2.0
        );
    }

    #[test]
    fn histogram_buckets_partition() {
        assert_eq!(density_bucket(0.0), 0);
        assert_eq!(density_bucket(0.07), 1);
        assert_eq!(density_bucket(1.0), HIST_BUCKETS - 1);
        let shape = SessionShape::from_counts(&[1, 10, 10, 10], &[4, 4, 4, 4, 4, 4, 4, 4, 3, 0]);
        assert_eq!(shape.users, 4);
        assert_eq!(shape.cols, 10);
        assert_eq!(shape.nnz, 31);
        let row_sum: f64 = shape.row_hist.iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
    }
}
