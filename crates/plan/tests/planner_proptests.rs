//! Planner decision properties over randomized session shapes, run
//! against one real (quick) calibration of the build host — the planner
//! must behave sanely whatever sessions it is asked to plan, not just on
//! the bench shapes.

use hnd_plan::{calibrate, CalibrationOpts, Planner, SessionShape, HIST_BUCKETS};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One calibration pass shared by every proptest case (measuring inside
/// each case would swamp the suite).
fn planner() -> &'static Planner {
    static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
    PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())))
}

fn shape_strategy() -> impl Strategy<Value = SessionShape> {
    (2usize..5_000, 2usize..400, 0.01f64..0.95).prop_map(|(users, cols, density)| {
        let per_row = ((density * cols as f64) as usize).min(cols);
        let per_col = ((density * users as f64) as usize).min(users);
        SessionShape::from_counts(&vec![per_row; users], &vec![per_col; cols])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decisions_are_sane_and_deterministic(shape in shape_strategy()) {
        let p = planner();
        let a = p.plan(&shape, true);
        let b = p.plan(&shape, true);
        prop_assert_eq!(a, b, "planning is a pure function of the shape");

        prop_assert!(a.shards >= 1);
        prop_assert_eq!(a.shard_plan.is_some(), a.shards > 1);
        prop_assert!(a.patch_budget >= 16);
        prop_assert_eq!(a.planned_nnz, shape.nnz);
        prop_assert!(a.predicted_apply_ns.is_finite() && a.predicted_apply_ns >= 0.0);
        prop_assert!(a.predicted_rebuild_ns.is_finite() && a.predicted_rebuild_ns >= 0.0);
        prop_assert!(a.predicted_solve_ns >= a.predicted_apply_ns,
            "a solve is at least one apply pass");

        // Derived thresholds stay in the meaningful range.
        prop_assert!(a.density_plan.row_density >= 0.02);
        prop_assert!(a.density_plan.col_density >= 0.02);
        prop_assert_eq!(a.density_plan.min_dim, 128);

        // Gating off the sharded backend is always honored.
        let single = p.plan(&shape, false);
        prop_assert_eq!(single.shards, 1);
        prop_assert!(single.shard_plan.is_none());
    }

    #[test]
    fn small_sessions_never_shard(
        users in 2usize..3_000,
        cols in 2usize..50,
        density in 0.01f64..0.9,
    ) {
        // nnz < 100k by construction (3000 × 50 × 0.9 < 100k floor does
        // not always hold, so filter explicitly).
        let per_row = ((density * cols as f64) as usize).min(cols);
        let shape = SessionShape::from_counts(&vec![per_row; users], &vec![0; cols]);
        prop_assume!(shape.nnz < 100_000);
        let decision = planner().plan(&shape, true);
        prop_assert_eq!(decision.shards, 1, "below the nnz floor sharding is off");
    }

    #[test]
    fn bigger_sessions_predict_bigger_costs(
        users in 50usize..2_000,
        cols in 10usize..200,
        density in 0.05f64..0.5,
    ) {
        let p = planner();
        let small = SessionShape::from_counts(
            &vec![((density * cols as f64) as usize).min(cols); users],
            &vec![((density * users as f64) as usize).min(users); cols],
        );
        let big = SessionShape::from_counts(
            &vec![((density * cols as f64) as usize).min(cols); users * 2],
            &vec![((density * users as f64 * 2.0) as usize).min(users * 2); cols],
        );
        let d_small = p.plan(&small, false);
        let d_big = p.plan(&big, false);
        prop_assert!(
            d_big.predicted_apply_ns >= d_small.predicted_apply_ns,
            "doubling the users cannot make an apply cheaper ({} vs {})",
            d_big.predicted_apply_ns,
            d_small.predicted_apply_ns
        );
    }

    #[test]
    fn histograms_partition_lanes(shape in shape_strategy()) {
        let row_sum: f64 = shape.row_hist.iter().sum();
        let col_sum: f64 = shape.col_hist.iter().sum();
        prop_assert!((row_sum - 1.0).abs() < 1e-9);
        prop_assert!((col_sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(shape.row_hist.len(), HIST_BUCKETS);
    }
}
