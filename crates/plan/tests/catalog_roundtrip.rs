//! Catalog persistence battery: serde round-trips over arbitrary
//! measurement grids, and the staleness rules that keep one host from
//! planning with another host's rates.

use hnd_plan::{
    CatalogEntry, CatalogError, HostFingerprint, KernelCatalog, KernelClass, CATALOG_VERSION,
};
use proptest::prelude::*;
use serde::Deserialize;

fn entry_strategy() -> impl Strategy<Value = CatalogEntry> {
    (
        0usize..KernelClass::ALL.len(),
        1usize..1_000_000,
        0.0f64..1.0,
        1usize..65,
        1e-3f64..1e5,
    )
        .prop_map(|(class, dim, density, threads, ns)| CatalogEntry {
            class: KernelClass::ALL[class],
            dim,
            density,
            threads,
            ns_per_unit: ns,
        })
}

fn catalog_strategy() -> impl Strategy<Value = KernelCatalog> {
    (
        proptest::collection::vec(entry_strategy(), 0..40),
        proptest::collection::vec(0.05f64..20.0, KernelClass::ALL.len()),
    )
        .prop_map(|(entries, corr)| {
            let mut corrections = [1.0; KernelClass::ALL.len()];
            corrections.copy_from_slice(&corr);
            KernelCatalog {
                version: CATALOG_VERSION,
                fingerprint: HostFingerprint::current(),
                entries,
                corrections,
            }
        })
}

fn assert_catalogs_equal(a: &KernelCatalog, b: &KernelCatalog) {
    assert_eq!(a.version, b.version);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.class, y.class);
        assert_eq!(x.dim, y.dim);
        assert_eq!(x.threads, y.threads);
        // Display-formatted f64 round-trips exactly (shortest repr).
        assert_eq!(x.density.to_bits(), y.density.to_bits());
        assert_eq!(x.ns_per_unit.to_bits(), y.ns_per_unit.to_bits());
    }
    for (x, y) in a.corrections.iter().zip(&b.corrections) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

proptest! {
    #[test]
    fn serde_round_trip(catalog in catalog_strategy()) {
        let text = serde_json::to_string_pretty(&catalog).unwrap();
        let value = serde_json::from_str(&text).unwrap();
        let back = KernelCatalog::from_value(&value).unwrap();
        assert_catalogs_equal(&catalog, &back);
    }

    #[test]
    fn compact_and_pretty_agree(catalog in catalog_strategy()) {
        let compact: KernelCatalog =
            serde_json::from_str(&serde_json::to_string(&catalog).unwrap()).unwrap();
        let pretty: KernelCatalog =
            serde_json::from_str(&serde_json::to_string_pretty(&catalog).unwrap()).unwrap();
        assert_catalogs_equal(&compact, &pretty);
    }
}

/// A temp file path unique to this test binary run.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hnd-plan-test-{}-{name}.json", std::process::id()))
}

#[test]
fn save_load_checked_accepts_current_host() {
    let catalog = KernelCatalog {
        version: CATALOG_VERSION,
        fingerprint: HostFingerprint::current(),
        entries: vec![CatalogEntry {
            class: KernelClass::CsrGather,
            dim: 256,
            density: 0.2,
            threads: 1,
            ns_per_unit: 1.25,
        }],
        corrections: [1.0; KernelClass::ALL.len()],
    };
    let path = temp_path("current");
    catalog.save(&path).unwrap();
    let loaded = KernelCatalog::load_checked(&path).unwrap();
    assert_catalogs_equal(&catalog, &loaded);
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_fingerprint_is_rejected_but_loadable() {
    let mut catalog = KernelCatalog {
        version: CATALOG_VERSION,
        fingerprint: HostFingerprint {
            isa: "imaginary-isa".into(),
            cores: 4096,
        },
        entries: Vec::new(),
        corrections: [1.0; KernelClass::ALL.len()],
    };
    let path = temp_path("stale-fp");
    catalog.save(&path).unwrap();
    // Un-checked load still works (inspection)…
    assert!(KernelCatalog::load(&path).is_ok());
    // …but the planner-facing loader calls it stale.
    match KernelCatalog::load_checked(&path) {
        Err(CatalogError::Stale { found, expected }) => {
            assert!(found.contains("imaginary-isa"), "found: {found}");
            assert!(
                expected.contains(&HostFingerprint::current().isa),
                "expected: {expected}"
            );
        }
        other => panic!("want Stale, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();

    // Same for a right-host catalog from an older schema version.
    catalog.fingerprint = HostFingerprint::current();
    catalog.version = CATALOG_VERSION - 1;
    let path = temp_path("stale-version");
    catalog.save(&path).unwrap();
    assert!(matches!(
        KernelCatalog::load_checked(&path),
        Err(CatalogError::Stale { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_and_malformed_files_error_cleanly() {
    let missing = temp_path("does-not-exist");
    assert!(matches!(
        KernelCatalog::load_checked(&missing),
        Err(CatalogError::Io(_))
    ));
    let path = temp_path("garbage");
    std::fs::write(&path, "{\"version\": \"not a number\"}").unwrap();
    assert!(matches!(
        KernelCatalog::load(&path),
        Err(CatalogError::Malformed(_))
    ));
    std::fs::remove_file(&path).ok();
}
