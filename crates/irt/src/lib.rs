#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-coupled numerics mirror the published algorithms

//! # hnd-irt
//!
//! Item Response Theory (Sections II-D and Appendix C of the paper): the
//! mathematically principled models behind standardized testing, used here
//! both to *generate* realistic synthetic ability-discovery workloads and to
//! *estimate* abilities (the paper's "cheating" GRM-estimator baseline).
//!
//! * [`binary`] — dichotomous models: 1PL (Rasch), 2PL, 3PL, GLAD.
//! * [`poly`] — polytomous models: Graded Response (GRM), Bock's nominal
//!   categories, Samejima's MCQ model with random guessing.
//! * [`generate`](crate::generate()) — synthetic dataset generators for every experimental
//!   setup of Section IV (including the ideal C1P limit `a → ∞`).
//! * [`presets`] — frozen item-parameter tables standing in for external
//!   resources (DeMars' American Experience test, the half-moon
//!   distribution of Vania et al.) — see DESIGN.md §4 for the substitution
//!   rationale.
//! * [`estimate`] — a marginal-maximum-likelihood EM estimator for the GRM
//!   with EAP ability scoring (the GIRTH-package substitute).
//!
//! Option-quality convention: in every polytomous model of this crate a
//! *larger option index means a better option*; the correct option of an
//! item is the one with the highest index (GRM) or the highest slope
//! (Bock/Samejima). Spectral rankers never see this convention (one-hot
//! columns are unordered); only the cheating baselines consume it.

pub mod binary;
pub mod estimate;
pub mod estimate_binary;
pub mod generate;
pub mod poly;
pub mod presets;

pub use binary::{sigmoid, BinaryModel, Glad, OnePl, ThreePl, TwoPl};
pub use estimate::{GrmEstimator, GrmFit};
pub use estimate_binary::{ThreePlEstimator, ThreePlFit};
pub use generate::{
    generate, generate_binary, generate_c1p, generate_from_items, GeneratorConfig, ModelKind,
    SyntheticDataset,
};
pub use poly::{BockItem, GrmItem, PolytomousModel, SamejimaItem};
