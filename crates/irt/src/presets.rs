//! Frozen item-parameter presets standing in for external resources.
//!
//! The paper's Appendix D-C simulates "realistic" data from two published
//! parameter sources that are not redistributable:
//!
//! 1. DeMars' *American Experience* test — 40 binary 3PL items whose
//!    estimates appear on p. 87 of the book. [`american_experience_items`]
//!    freezes a table drawn once from the parameter ranges that chapter
//!    reports (discriminations ≈ 0.4–2.2, difficulties ≈ N(0,1), guessing
//!    ≈ 0.05–0.35) so every run of the Figure 12 experiment uses identical
//!    items. See DESIGN.md §4 for the substitution rationale.
//! 2. Vania et al.'s *half-moon* finding: across 29 NLU datasets the
//!    (log-discrimination, difficulty) scatter forms a crescent — the most
//!    discriminative items are either easy or hard. [`half_moon_items`]
//!    samples that crescent parametrically (Figure 13a).

use crate::binary::ThreePl;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// The frozen 40-item binary 3PL test used by the Figure 12 experiment.
///
/// Triples are `(discrimination a, difficulty b, guessing c)`.
pub fn american_experience_items() -> Vec<ThreePl> {
    const PARAMS: [(f64, f64, f64); 40] = [
        (1.12, -1.73, 0.19),
        (0.74, -0.96, 0.12),
        (1.45, -0.53, 0.24),
        (0.58, 0.21, 0.17),
        (1.88, 0.44, 0.21),
        (0.93, -1.18, 0.09),
        (1.27, 0.87, 0.28),
        (0.66, 1.42, 0.14),
        (2.05, -0.31, 0.22),
        (0.81, -2.04, 0.11),
        (1.53, 1.07, 0.31),
        (0.47, -0.62, 0.08),
        (1.19, 0.02, 0.18),
        (1.71, -1.35, 0.26),
        (0.88, 0.63, 0.13),
        (1.34, 1.78, 0.23),
        (0.55, -0.18, 0.16),
        (1.96, 0.29, 0.27),
        (0.72, -1.51, 0.10),
        (1.08, 0.95, 0.20),
        (1.62, -0.74, 0.25),
        (0.91, 1.23, 0.15),
        (1.41, -0.09, 0.29),
        (0.63, 0.51, 0.07),
        (2.18, -1.02, 0.33),
        (0.78, 1.61, 0.12),
        (1.25, -0.41, 0.19),
        (1.57, 0.73, 0.24),
        (0.84, -1.87, 0.17),
        (1.02, 0.14, 0.21),
        (1.79, 1.33, 0.30),
        (0.52, -0.85, 0.06),
        (1.37, 0.38, 0.22),
        (0.96, -0.24, 0.14),
        (1.66, -1.12, 0.28),
        (0.69, 0.82, 0.11),
        (1.14, 1.94, 0.25),
        (1.49, -0.58, 0.18),
        (0.76, 0.07, 0.09),
        (1.91, -0.37, 0.32),
    ];
    PARAMS
        .iter()
        .map(|&(a, b, c)| ThreePl {
            discrimination: a,
            difficulty: b,
            guessing: c,
        })
        .collect()
}

/// Standard-normal abilities, as \[13\] reports for the American Experience
/// population (`θ ∼ N(0, 1)`).
pub fn standard_normal_abilities(n: usize, rng: &mut impl Rng) -> Vec<f64> {
    let normal = Normal::new(0.0, 1.0).expect("valid normal");
    (0..n).map(|_| normal.sample(rng)).collect()
}

/// Samples `n` binary 3PL items whose (log a, b) pairs trace the half-moon
/// crescent of Figure 13a: `log a ∈ [−1, 1]`, `b ∈ [−2, 3]`, with the most
/// discriminative items at intermediate-extreme difficulties; guessing
/// `c ∼ U[0, 0.5]` as hinted by \[65\].
pub fn half_moon_items(n: usize, rng: &mut impl Rng) -> Vec<ThreePl> {
    let noise_a = Normal::new(0.0, 0.15).expect("valid normal");
    let noise_b = Normal::new(0.0, 0.20).expect("valid normal");
    (0..n)
        .map(|_| {
            let t = std::f64::consts::PI * rng.gen::<f64>();
            let log_a = -0.2 + 0.8 * t.sin() + noise_a.sample(rng);
            let b = 0.5 - 2.4 * t.cos() + noise_b.sample(rng);
            ThreePl {
                discrimination: log_a.exp(),
                difficulty: b,
                guessing: 0.5 * rng.gen::<f64>(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn american_experience_is_frozen_and_plausible() {
        let items = american_experience_items();
        assert_eq!(items.len(), 40);
        for it in &items {
            assert!((0.4..=2.3).contains(&it.discrimination));
            assert!((-2.5..=2.5).contains(&it.difficulty));
            assert!((0.05..=0.35).contains(&it.guessing));
        }
        // Frozen: two calls agree exactly.
        assert_eq!(items, american_experience_items());
    }

    #[test]
    fn normal_abilities_have_right_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let thetas = standard_normal_abilities(20_000, &mut rng);
        let mean: f64 = thetas.iter().sum::<f64>() / thetas.len() as f64;
        let var: f64 =
            thetas.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / thetas.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn half_moon_covers_expected_ranges() {
        let mut rng = StdRng::seed_from_u64(12);
        let items = half_moon_items(5000, &mut rng);
        let mut min_b = f64::INFINITY;
        let mut max_b = f64::NEG_INFINITY;
        for it in &items {
            assert!(it.discrimination > 0.0);
            assert!((0.0..=0.5).contains(&it.guessing));
            min_b = min_b.min(it.difficulty);
            max_b = max_b.max(it.difficulty);
        }
        assert!(min_b < -1.5, "easy end reached: {min_b}");
        assert!(max_b > 2.5, "hard end reached: {max_b}");
    }

    #[test]
    fn half_moon_crescent_shape() {
        // Items of middling difficulty must be (on average) more
        // discriminative than extreme ones — that's the crescent.
        let mut rng = StdRng::seed_from_u64(13);
        let items = half_moon_items(5000, &mut rng);
        let mid: Vec<f64> = items
            .iter()
            .filter(|i| (0.0..1.0).contains(&i.difficulty))
            .map(|i| i.discrimination.ln())
            .collect();
        let extreme: Vec<f64> = items
            .iter()
            .filter(|i| i.difficulty < -1.5 || i.difficulty > 2.5)
            .map(|i| i.discrimination.ln())
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&mid) > avg(&extreme) + 0.4,
            "mid {} vs extreme {}",
            avg(&mid),
            avg(&extreme)
        );
    }
}
