//! Polytomous IRT models (Appendix C-B of the paper).
//!
//! These model the probability of choosing each *option* of a
//! multiple-choice item. Convention: option index `k−1` is the best
//! (chosen by high-ability users), option `0` the worst — i.e. option
//! quality increases with index.

use crate::binary::sigmoid;

/// A polytomous item model: a categorical distribution over options as a
/// function of ability.
pub trait PolytomousModel {
    /// Number of options `k` of this item.
    fn n_options(&self) -> usize;

    /// Fills `out` (length `k`) with `P(option h | θ)`; the entries sum
    /// to 1.
    fn option_probs(&self, theta: f64, out: &mut [f64]);

    /// Convenience: allocates the probability vector.
    fn option_probs_vec(&self, theta: f64) -> Vec<f64> {
        let mut v = vec![0.0; self.n_options()];
        self.option_probs(theta, &mut v);
        v
    }
}

/// Samejima's Graded Response Model (GRM).
///
/// One discrimination `a` per item, `k−1` ordered thresholds
/// `b_1 < … < b_{k−1}`. The cumulative probability of reaching at least
/// option `h` is `P*_h(θ) = σ(a(θ − b_h))`; the option probability is the
/// difference of adjacent cumulatives. In the `a → ∞` limit the response
/// function becomes the pair of Heaviside steps of Section II-D — the ideal
/// C1P case.
#[derive(Debug, Clone, PartialEq)]
pub struct GrmItem {
    /// Item discrimination `a` (> 0).
    pub discrimination: f64,
    /// Ordered thresholds `b_1 < … < b_{k−1}`.
    pub thresholds: Vec<f64>,
}

impl GrmItem {
    /// Creates a GRM item; thresholds are sorted defensively.
    ///
    /// # Panics
    /// Panics if no thresholds are given (an item needs ≥ 2 options).
    pub fn new(discrimination: f64, mut thresholds: Vec<f64>) -> Self {
        assert!(
            !thresholds.is_empty(),
            "GRM item needs at least one threshold (two options)"
        );
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("NaN threshold"));
        GrmItem {
            discrimination,
            thresholds,
        }
    }

    /// Cumulative probability `P*_h(θ)` of choosing option `≥ h`
    /// (`P*_0 = 1`, `P*_k = 0`).
    pub fn cumulative(&self, theta: f64, h: usize) -> f64 {
        let k = self.n_options();
        if h == 0 {
            1.0
        } else if h >= k {
            0.0
        } else {
            sigmoid(self.discrimination * (theta - self.thresholds[h - 1]))
        }
    }
}

impl PolytomousModel for GrmItem {
    fn n_options(&self) -> usize {
        self.thresholds.len() + 1
    }

    fn option_probs(&self, theta: f64, out: &mut [f64]) {
        let k = self.n_options();
        debug_assert_eq!(out.len(), k);
        for (h, o) in out.iter_mut().enumerate() {
            *o = (self.cumulative(theta, h) - self.cumulative(theta, h + 1)).max(0.0);
        }
    }
}

/// Bock's nominal category model — multinomial logistic regression in
/// slope/intercept parameterization: `P_h(θ) ∝ exp(α_h θ + β_h)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BockItem {
    /// Per-option slopes `α_h`; the option with the largest slope is the
    /// correct one (chosen almost surely as `θ → ∞`).
    pub slopes: Vec<f64>,
    /// Per-option intercepts `β_h`.
    pub intercepts: Vec<f64>,
}

impl BockItem {
    /// Creates a Bock item.
    ///
    /// # Panics
    /// Panics if slopes/intercepts lengths differ or fewer than 2 options.
    pub fn new(slopes: Vec<f64>, intercepts: Vec<f64>) -> Self {
        assert_eq!(slopes.len(), intercepts.len(), "slope/intercept mismatch");
        assert!(slopes.len() >= 2, "Bock item needs at least 2 options");
        BockItem { slopes, intercepts }
    }

    /// The paper's GRM↔Bock correspondence (Figure 2, Appendix D-D):
    /// a GRM with discrimination `a` behaves approximately like a Bock item
    /// with slopes `α_h = h·a` (h = 0..k−1). Intercepts are derived from
    /// the GRM thresholds: `β_h = −a·Σ_{l≤h} b_l`.
    pub fn from_grm_approximation(grm: &GrmItem) -> Self {
        let k = grm.n_options();
        let a = grm.discrimination;
        let mut slopes = Vec::with_capacity(k);
        let mut intercepts = Vec::with_capacity(k);
        let mut cum_b = 0.0;
        for h in 0..k {
            slopes.push(h as f64 * a);
            if h > 0 {
                cum_b += grm.thresholds[h - 1];
            }
            intercepts.push(-a * cum_b);
        }
        BockItem { slopes, intercepts }
    }
}

impl PolytomousModel for BockItem {
    fn n_options(&self) -> usize {
        self.slopes.len()
    }

    fn option_probs(&self, theta: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.slopes.len());
        // Log-sum-exp for numerical stability at large |α·θ|.
        let mut max_logit = f64::NEG_INFINITY;
        for (h, o) in out.iter_mut().enumerate() {
            *o = self.slopes[h] * theta + self.intercepts[h];
            max_logit = max_logit.max(*o);
        }
        let mut z = 0.0;
        for o in out.iter_mut() {
            *o = (*o - max_logit).exp();
            z += *o;
        }
        for o in out.iter_mut() {
            *o /= z;
        }
    }
}

/// Samejima's multiple-choice model with random guessing: Bock plus a
/// latent "don't know" option 0 whose probability mass is redistributed
/// uniformly over the `k` real options.
///
/// `P_h(θ) = (exp(α_h θ + β_h) + exp(α_0 θ + β_0)/k) / Σ_{l=0}^{k} exp(α_l θ + β_l)`
#[derive(Debug, Clone, PartialEq)]
pub struct SamejimaItem {
    /// Per-option slopes (real options only).
    pub slopes: Vec<f64>,
    /// Per-option intercepts (real options only).
    pub intercepts: Vec<f64>,
    /// Slope of the latent "don't know" option (usually 0).
    pub dont_know_slope: f64,
    /// Intercept of the latent "don't know" option (β₀ → −∞ recovers Bock).
    pub dont_know_intercept: f64,
}

impl SamejimaItem {
    /// Creates a Samejima item with the conventional `α₀ = 0, β₀ = 0`
    /// "don't know" anchor.
    ///
    /// # Panics
    /// Panics if slopes/intercepts lengths differ or fewer than 2 options.
    pub fn new(slopes: Vec<f64>, intercepts: Vec<f64>) -> Self {
        assert_eq!(slopes.len(), intercepts.len(), "slope/intercept mismatch");
        assert!(slopes.len() >= 2, "Samejima item needs at least 2 options");
        SamejimaItem {
            slopes,
            intercepts,
            dont_know_slope: 0.0,
            dont_know_intercept: 0.0,
        }
    }
}

impl PolytomousModel for SamejimaItem {
    fn n_options(&self) -> usize {
        self.slopes.len()
    }

    fn option_probs(&self, theta: f64, out: &mut [f64]) {
        let k = self.slopes.len();
        debug_assert_eq!(out.len(), k);
        let dk_logit = self.dont_know_slope * theta + self.dont_know_intercept;
        let mut max_logit = dk_logit;
        for (h, o) in out.iter_mut().enumerate() {
            *o = self.slopes[h] * theta + self.intercepts[h];
            max_logit = max_logit.max(*o);
        }
        let dk = (dk_logit - max_logit).exp();
        let mut z = dk;
        for o in out.iter_mut() {
            *o = (*o - max_logit).exp();
            z += *o;
        }
        for o in out.iter_mut() {
            *o = (*o + dk / k as f64) / z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{BinaryModel, TwoPl};

    fn assert_distribution(probs: &[f64]) {
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "probs sum to {sum}");
        assert!(probs.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
    }

    #[test]
    fn grm_probabilities_form_distribution() {
        let item = GrmItem::new(2.0, vec![-0.5, 0.0, 0.5]);
        for theta in [-3.0, -0.4, 0.0, 0.7, 2.5] {
            assert_distribution(&item.option_probs_vec(theta));
        }
    }

    #[test]
    fn grm_best_option_dominates_at_high_ability() {
        let item = GrmItem::new(3.0, vec![-0.5, 0.5]);
        let p = item.option_probs_vec(5.0);
        assert!(p[2] > 0.99, "high ability must pick the best option");
        let p = item.option_probs_vec(-5.0);
        assert!(p[0] > 0.99, "low ability must pick the worst option");
    }

    #[test]
    fn grm_with_two_options_is_2pl() {
        // Figure 2: GRM specializes to 2PL for k = 2.
        let grm = GrmItem::new(1.8, vec![0.3]);
        let two = TwoPl {
            discrimination: 1.8,
            difficulty: 0.3,
        };
        for theta in [-2.0, 0.0, 0.3, 1.5] {
            let p = grm.option_probs_vec(theta);
            assert!((p[1] - two.prob_correct(theta)).abs() < 1e-12);
        }
    }

    #[test]
    fn grm_infinite_discrimination_is_heaviside() {
        // Section II-D: the a→∞ GRM is the pair of step functions — the
        // consistent-responses / C1P ideal case.
        let item = GrmItem::new(1e6, vec![-0.5, 0.5]);
        let cases = [(-1.0, 0usize), (0.0, 1), (1.0, 2)];
        for (theta, expect) in cases {
            let p = item.option_probs_vec(theta);
            assert!(
                p[expect] > 1.0 - 1e-6,
                "θ={theta} should pick {expect}: {p:?}"
            );
        }
    }

    #[test]
    fn grm_thresholds_sorted_defensively() {
        let item = GrmItem::new(1.0, vec![0.5, -0.5]);
        assert_eq!(item.thresholds, vec![-0.5, 0.5]);
    }

    #[test]
    fn bock_probabilities_form_distribution() {
        let item = BockItem::new(vec![0.0, 1.0, 3.0], vec![0.5, 0.0, -1.0]);
        for theta in [-3.0, 0.0, 0.5, 4.0] {
            assert_distribution(&item.option_probs_vec(theta));
        }
    }

    #[test]
    fn bock_largest_slope_wins_eventually() {
        let item = BockItem::new(vec![0.0, 1.0, 3.0], vec![0.5, 0.0, -1.0]);
        let p = item.option_probs_vec(10.0);
        assert!(p[2] > 0.99);
        let p = item.option_probs_vec(-10.0);
        assert!(
            p[0] > 0.99,
            "smallest slope dominates at low ability: {p:?}"
        );
    }

    #[test]
    fn bock_is_stable_at_extreme_logits() {
        let item = BockItem::new(vec![0.0, 50.0], vec![0.0, 0.0]);
        let p = item.option_probs_vec(100.0);
        assert_distribution(&p);
        assert!(p[1] > 1.0 - 1e-12);
    }

    #[test]
    fn bock_approximates_grm_figure8() {
        // Figure 8a: GRM(a=8, b=(−0.2,0.2)) ≈ Bock(α=(0,8,16), β derived).
        let grm = GrmItem::new(8.0, vec![-0.2, 0.2]);
        let bock = BockItem::from_grm_approximation(&grm);
        assert_eq!(bock.slopes, vec![0.0, 8.0, 16.0]);
        // The correspondence is approximate; probabilities should agree to
        // within a few percentage points over the ability range.
        for theta in [-0.6, -0.2, 0.0, 0.2, 0.6] {
            let pg = grm.option_probs_vec(theta);
            let pb = bock.option_probs_vec(theta);
            for h in 0..3 {
                assert!(
                    (pg[h] - pb[h]).abs() < 0.15,
                    "θ={theta}, option {h}: GRM {} vs Bock {}",
                    pg[h],
                    pb[h]
                );
            }
        }
    }

    #[test]
    fn samejima_probabilities_form_distribution() {
        let item = SamejimaItem::new(vec![1.0, 2.0, 4.0], vec![0.0, 0.2, -0.5]);
        for theta in [-3.0, 0.0, 2.0] {
            assert_distribution(&item.option_probs_vec(theta));
        }
    }

    #[test]
    fn samejima_low_ability_guesses_uniformly() {
        // With α₀ = 0 and all real slopes positive, θ → −∞ leaves only the
        // "don't know" mass, split uniformly: each option tends to 1/k.
        let item = SamejimaItem::new(vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]);
        let p = item.option_probs_vec(-30.0);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-6, "expected uniform, got {p:?}");
        }
    }

    #[test]
    fn samejima_recovers_bock_when_dont_know_vanishes() {
        // Figure 2 dashed arrow: β₀ → −∞ turns Samejima into Bock.
        let slopes = vec![0.5, 1.5];
        let intercepts = vec![0.1, -0.1];
        let mut s = SamejimaItem::new(slopes.clone(), intercepts.clone());
        s.dont_know_intercept = -1e9;
        let b = BockItem::new(slopes, intercepts);
        for theta in [-1.0, 0.0, 1.0] {
            let ps = s.option_probs_vec(theta);
            let pb = b.option_probs_vec(theta);
            for h in 0..2 {
                assert!((ps[h] - pb[h]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn samejima_high_ability_picks_best() {
        let item = SamejimaItem::new(vec![1.0, 2.0, 4.0], vec![0.0, 0.0, 0.0]);
        let p = item.option_probs_vec(20.0);
        assert!(p[2] > 0.99);
    }
}
