//! Dichotomous IRT models (Appendix C-A of the paper).
//!
//! All four are variations of the logistic response function: the
//! probability of answering item `i` correctly as a function of latent
//! ability `θ`. Figure 2 of the paper shows how they specialize into each
//! other; the unit tests below verify exactly those arrows.

/// The standard logistic function `σ(x) = 1 / (1 + e^{−x})`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Numerically stable branch for large negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// A binary item model: probability of a correct response given ability.
pub trait BinaryModel {
    /// `P(correct | θ)`.
    fn prob_correct(&self, theta: f64) -> f64;
}

/// 1PL / Rasch model: `P(θ) = σ(θ − b)` — difficulty only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePl {
    /// Item difficulty `b`.
    pub difficulty: f64,
}

impl BinaryModel for OnePl {
    fn prob_correct(&self, theta: f64) -> f64 {
        sigmoid(theta - self.difficulty)
    }
}

/// 2PL model: `P(θ) = σ(a (θ − b))` — adds discrimination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPl {
    /// Discrimination `a` (how sharply the item separates abilities).
    pub discrimination: f64,
    /// Difficulty `b`.
    pub difficulty: f64,
}

impl BinaryModel for TwoPl {
    fn prob_correct(&self, theta: f64) -> f64 {
        sigmoid(self.discrimination * (theta - self.difficulty))
    }
}

impl From<OnePl> for TwoPl {
    /// 1PL is 2PL with all discriminations tied to 1 (Figure 2).
    fn from(m: OnePl) -> Self {
        TwoPl {
            discrimination: 1.0,
            difficulty: m.difficulty,
        }
    }
}

/// GLAD (Whitehill et al.): `P(θ) = σ(a·θ)` — a 2PL with `b = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Glad {
    /// Discrimination `a` (the GLAD paper's `β` item-difficulty inverse).
    pub discrimination: f64,
}

impl BinaryModel for Glad {
    fn prob_correct(&self, theta: f64) -> f64 {
        sigmoid(self.discrimination * theta)
    }
}

impl From<Glad> for TwoPl {
    /// GLAD is 2PL with all difficulties tied to 0 (Figure 2).
    fn from(m: Glad) -> Self {
        TwoPl {
            discrimination: m.discrimination,
            difficulty: 0.0,
        }
    }
}

/// 3PL model: `P(θ) = c + (1 − c)·σ(a (θ − b))` — adds random guessing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreePl {
    /// Discrimination `a`.
    pub discrimination: f64,
    /// Difficulty `b`.
    pub difficulty: f64,
    /// Pseudo-guessing floor `c` (a reasonable value is `1/k`).
    pub guessing: f64,
}

impl BinaryModel for ThreePl {
    fn prob_correct(&self, theta: f64) -> f64 {
        self.guessing
            + (1.0 - self.guessing) * sigmoid(self.discrimination * (theta - self.difficulty))
    }
}

impl From<TwoPl> for ThreePl {
    /// 2PL is 3PL with guessing tied to 0 (Figure 2).
    fn from(m: TwoPl) -> Self {
        ThreePl {
            discrimination: m.discrimination,
            difficulty: m.difficulty,
            guessing: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THETAS: [f64; 7] = [-3.0, -1.0, -0.5, 0.0, 0.5, 1.0, 3.0];

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 1.0 - 1e-12);
        assert!(sigmoid(-50.0) < 1e-12);
        // σ(x) + σ(−x) = 1.
        for x in [-4.0, -0.3, 0.0, 2.2] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn one_pl_monotone_in_ability_and_difficulty() {
        let easy = OnePl { difficulty: -1.0 };
        let hard = OnePl { difficulty: 1.0 };
        for w in THETAS.windows(2) {
            assert!(easy.prob_correct(w[0]) < easy.prob_correct(w[1]));
        }
        for t in THETAS {
            assert!(easy.prob_correct(t) > hard.prob_correct(t));
        }
    }

    #[test]
    fn figure2_arrow_2pl_specializes_to_1pl() {
        let one = OnePl { difficulty: 0.3 };
        let two = TwoPl::from(one);
        for t in THETAS {
            assert!((one.prob_correct(t) - two.prob_correct(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn figure2_arrow_2pl_specializes_to_glad() {
        let glad = Glad {
            discrimination: 2.5,
        };
        let two = TwoPl::from(glad);
        for t in THETAS {
            assert!((glad.prob_correct(t) - two.prob_correct(t)).abs() < 1e-12);
        }
        // GLAD property: a user of ability 0 is at exactly 50%.
        assert!((glad.prob_correct(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure2_arrow_3pl_specializes_to_2pl() {
        let two = TwoPl {
            discrimination: 1.7,
            difficulty: -0.2,
        };
        let three = ThreePl::from(two);
        for t in THETAS {
            assert!((two.prob_correct(t) - three.prob_correct(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn three_pl_guessing_floor() {
        let m = ThreePl {
            discrimination: 2.0,
            difficulty: 0.0,
            guessing: 0.25,
        };
        assert!(m.prob_correct(-50.0) >= 0.25 - 1e-12);
        assert!(m.prob_correct(50.0) <= 1.0 + 1e-12);
        // Midpoint: c + (1-c)/2.
        assert!((m.prob_correct(0.0) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn high_discrimination_approaches_step_function() {
        let m = TwoPl {
            discrimination: 1e4,
            difficulty: 0.5,
        };
        assert!(m.prob_correct(0.49) < 1e-10);
        assert!(m.prob_correct(0.51) > 1.0 - 1e-10);
    }
}
