//! Marginal-maximum-likelihood 3PL estimation for binary items.
//!
//! An extension beyond the paper's baselines, directly motivated by its
//! Figure 4c observation: *"the GRM-estimator works poorly for Samejima
//! because it does not take random guessing into account."* The 3PL model
//! has the guessing floor the GRM lacks, so on binary data with guessing
//! (the Figure 12/13 workloads) this estimator is the better "cheating"
//! reference. Same EM skeleton as [`crate::estimate::GrmEstimator`]:
//! quadrature E-step under a standard-normal prior, projected gradient
//! ascent M-step, EAP scoring.

use crate::binary::{BinaryModel, ThreePl};
use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix};

/// Configuration of the 3PL MML-EM estimator.
#[derive(Debug, Clone)]
pub struct ThreePlEstimator {
    /// Number of quadrature nodes.
    pub quadrature_points: usize,
    /// Ability grid range.
    pub theta_range: (f64, f64),
    /// Maximum EM iterations.
    pub max_em_iters: usize,
    /// EM convergence tolerance on the max EAP ability change.
    pub tol: f64,
    /// Gradient-ascent steps per item per M-step.
    pub m_step_iters: usize,
}

impl Default for ThreePlEstimator {
    fn default() -> Self {
        ThreePlEstimator {
            quadrature_points: 31,
            theta_range: (-4.0, 4.0),
            max_em_iters: 40,
            tol: 1e-4,
            m_step_iters: 6,
        }
    }
}

/// A fitted 3PL model.
#[derive(Debug, Clone)]
pub struct ThreePlFit {
    /// Estimated items.
    pub items: Vec<ThreePl>,
    /// EAP ability estimate per user.
    pub abilities: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the EM tolerance was met.
    pub converged: bool,
    /// Final marginal log-likelihood.
    pub log_likelihood: f64,
}

/// Item parameters as the unconstrained optimization vector
/// `(a, b, logit c)` with projection.
fn project(params: &mut [f64; 3]) {
    params[0] = params[0].clamp(0.05, 20.0);
    params[1] = params[1].clamp(-6.0, 6.0);
    params[2] = params[2].clamp(-8.0, 0.0); // logit of c ∈ (~0.0003, 0.5]
}

fn params_to_item(p: &[f64; 3]) -> ThreePl {
    ThreePl {
        discrimination: p[0],
        difficulty: p[1],
        guessing: 0.5 / (1.0 + (-p[2]).exp()), // c ∈ (0, 0.5]
    }
}

/// Expected log-likelihood of one item given expected correct counts `r1`
/// and answer counts `r_total` per quadrature node.
fn objective(item: &ThreePl, r1: &[f64], r_total: &[f64], nodes: &[f64]) -> f64 {
    let mut q = 0.0;
    for (qi, &theta) in nodes.iter().enumerate() {
        let p = item.prob_correct(theta).clamp(1e-12, 1.0 - 1e-12);
        q += r1[qi] * p.ln() + (r_total[qi] - r1[qi]) * (1.0 - p).ln();
    }
    q
}

fn maximize_item(
    item: &ThreePl,
    r1: &[f64],
    r_total: &[f64],
    nodes: &[f64],
    iters: usize,
) -> ThreePl {
    let logit_c = {
        let c = (item.guessing / 0.5).clamp(1e-4, 1.0 - 1e-4);
        (c / (1.0 - c)).ln()
    };
    let mut params = [item.discrimination, item.difficulty, logit_c];
    project(&mut params);
    let mut best = objective(&params_to_item(&params), r1, r_total, nodes);
    const EPS: f64 = 1e-5;
    for _ in 0..iters {
        let mut grad = [0.0; 3];
        for p in 0..3 {
            let mut plus = params;
            plus[p] += EPS;
            project(&mut plus);
            let mut minus = params;
            minus[p] -= EPS;
            project(&mut minus);
            let denom = plus[p] - minus[p];
            if denom.abs() < 1e-12 {
                continue;
            }
            grad[p] = (objective(&params_to_item(&plus), r1, r_total, nodes)
                - objective(&params_to_item(&minus), r1, r_total, nodes))
                / denom;
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-9 {
            break;
        }
        let mut step = 0.5 / gnorm.max(1.0);
        let mut improved = false;
        for _ in 0..20 {
            let mut cand = params;
            for p in 0..3 {
                cand[p] += step * grad[p];
            }
            project(&mut cand);
            let val = objective(&params_to_item(&cand), r1, r_total, nodes);
            if val > best {
                params = cand;
                best = val;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    params_to_item(&params)
}

impl ThreePlEstimator {
    /// Fits a 3PL model to *binary* responses (every item must have exactly
    /// 2 options; option 1 is "correct" per the [`crate::generate_binary`]
    /// convention) and produces EAP abilities.
    ///
    /// # Errors
    /// Rejects non-binary items via [`RankError::InvalidInput`].
    pub fn fit(&self, matrix: &ResponseMatrix) -> Result<ThreePlFit, RankError> {
        let m = matrix.n_users();
        let n = matrix.n_items();
        for i in 0..n {
            if matrix.options_of(i) != 2 {
                return Err(RankError::InvalidInput(format!(
                    "item {i} is not binary (has {} options)",
                    matrix.options_of(i)
                )));
            }
        }
        let nq = self.quadrature_points;
        let (lo, hi) = self.theta_range;
        let nodes: Vec<f64> = (0..nq)
            .map(|q| lo + (hi - lo) * q as f64 / (nq - 1) as f64)
            .collect();
        let weights: Vec<f64> = nodes.iter().map(|t| (-0.5 * t * t).exp()).collect();
        let z: f64 = weights.iter().sum();
        let log_prior: Vec<f64> = weights.iter().map(|w| (w / z).ln()).collect();

        let mut items = vec![
            ThreePl {
                discrimination: 1.0,
                difficulty: 0.0,
                guessing: 0.2,
            };
            n
        ];
        let mut abilities = vec![0.0; m];
        let mut iterations = 0;
        let mut converged = false;
        let mut log_likelihood = f64::NEG_INFINITY;

        for em in 0..self.max_em_iters {
            iterations = em + 1;
            // Cache per-item log probabilities on the grid.
            let grids: Vec<(Vec<f64>, Vec<f64>)> = items
                .iter()
                .map(|item| {
                    let mut lp1 = vec![0.0; nq];
                    let mut lp0 = vec![0.0; nq];
                    for (q, &theta) in nodes.iter().enumerate() {
                        let p = item.prob_correct(theta).clamp(1e-12, 1.0 - 1e-12);
                        lp1[q] = p.ln();
                        lp0[q] = (1.0 - p).ln();
                    }
                    (lp1, lp0)
                })
                .collect();
            // E-step.
            let mut r1 = vec![vec![0.0; nq]; n];
            let mut r_total = vec![vec![0.0; nq]; n];
            let mut new_abilities = vec![0.0; m];
            let mut ll = 0.0;
            let mut log_post = vec![0.0; nq];
            for j in 0..m {
                log_post.copy_from_slice(&log_prior);
                for (i, (lp1, lp0)) in grids.iter().enumerate() {
                    match matrix.choice(j, i) {
                        Some(1) => {
                            for q in 0..nq {
                                log_post[q] += lp1[q];
                            }
                        }
                        Some(_) => {
                            for q in 0..nq {
                                log_post[q] += lp0[q];
                            }
                        }
                        None => {}
                    }
                }
                let max_lp = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut zj = 0.0;
                let mut posterior = vec![0.0; nq];
                for q in 0..nq {
                    posterior[q] = (log_post[q] - max_lp).exp();
                    zj += posterior[q];
                }
                ll += max_lp + zj.ln();
                let mut eap = 0.0;
                for q in 0..nq {
                    posterior[q] /= zj;
                    eap += posterior[q] * nodes[q];
                }
                new_abilities[j] = eap;
                for i in 0..n {
                    if let Some(choice) = matrix.choice(j, i) {
                        for q in 0..nq {
                            r_total[i][q] += posterior[q];
                            if choice == 1 {
                                r1[i][q] += posterior[q];
                            }
                        }
                    }
                }
            }
            log_likelihood = ll;
            let max_change = abilities
                .iter()
                .zip(&new_abilities)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            abilities = new_abilities;
            if em > 0 && max_change < self.tol {
                converged = true;
                break;
            }
            // M-step.
            for (i, item) in items.iter_mut().enumerate() {
                *item = maximize_item(item, &r1[i], &r_total[i], &nodes, self.m_step_iters);
            }
        }
        Ok(ThreePlFit {
            items,
            abilities,
            iterations,
            converged,
            log_likelihood,
        })
    }
}

impl AbilityRanker for ThreePlEstimator {
    fn name(&self) -> &'static str {
        "3PL-estimator"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        let fit = self.fit(matrix)?;
        Ok(Ranking {
            scores: fit.abilities,
            iterations: fit.iterations,
            converged: fit.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_binary;
    use crate::presets::{american_experience_items, standard_normal_abilities};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spearman_local(a: &[f64], b: &[f64]) -> f64 {
        fn ranks(x: &[f64]) -> Vec<f64> {
            let mut idx: Vec<usize> = (0..x.len()).collect();
            idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap());
            let mut r = vec![0.0; x.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        }
        let (ra, rb) = (ranks(a), ranks(b));
        let n = a.len() as f64;
        let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (ra[i] - ma) * (rb[i] - mb);
            va += (ra[i] - ma) * (ra[i] - ma);
            vb += (rb[i] - mb) * (rb[i] - mb);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn recovers_abilities_on_3pl_data() {
        let mut rng = StdRng::seed_from_u64(41);
        let items = american_experience_items();
        let abilities = standard_normal_abilities(150, &mut rng);
        let ds = generate_binary(&items, &abilities, &mut rng);
        let fit = ThreePlEstimator::default().fit(&ds.responses).unwrap();
        let rho = spearman_local(&fit.abilities, &ds.abilities);
        assert!(rho > 0.85, "3PL EAP should track truth: {rho}");
        assert!(fit.log_likelihood.is_finite());
    }

    #[test]
    fn estimated_guessing_is_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        // High-guessing items: c = 0.33.
        let items = vec![
            ThreePl {
                discrimination: 1.5,
                difficulty: 0.0,
                guessing: 0.33,
            };
            60
        ];
        let abilities = standard_normal_abilities(400, &mut rng);
        let ds = generate_binary(&items, &abilities, &mut rng);
        let fit = ThreePlEstimator::default().fit(&ds.responses).unwrap();
        let mean_c: f64 =
            fit.items.iter().map(|i| i.guessing).sum::<f64>() / fit.items.len() as f64;
        assert!(
            (0.15..=0.5).contains(&mean_c),
            "mean estimated guessing {mean_c} should be near 0.33"
        );
    }

    #[test]
    fn rejects_non_binary_items() {
        let m = ResponseMatrix::from_choices(1, &[3], &[&[Some(0)]]).unwrap();
        assert!(ThreePlEstimator::default().fit(&m).is_err());
    }

    #[test]
    fn projection_bounds_hold() {
        let mut p = [100.0, 10.0, 5.0];
        project(&mut p);
        assert_eq!(p[0], 20.0);
        assert_eq!(p[1], 6.0);
        assert_eq!(p[2], 0.0);
        let item = params_to_item(&p);
        assert!(item.guessing <= 0.5);
    }
}
