//! Synthetic ability-discovery workload generators (Section IV-A/B).
//!
//! Parameter conventions follow the paper's defaults: abilities
//! `θ ∼ U[0,1]`, option difficulties `b ∼ U[−0.5, 0.5]`, discriminations
//! `a ∼ U[0, 10]`, `m = n = 100`, `k = 3`. The GRM discrimination is scaled
//! by `2/(k+1)` relative to Bock's per-option slopes so the two models have
//! comparable average discrimination (Appendix D-D).

use crate::binary::{BinaryModel, ThreePl};
use crate::poly::{BockItem, GrmItem, PolytomousModel, SamejimaItem};
use hnd_response::{ResponseMatrix, ResponseMatrixBuilder};
use rand::Rng;

/// Which polytomous model generates the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Graded Response Model — ordered categories, no guessing.
    Grm,
    /// Bock nominal categories — no guessing (crowdsourcing scenario).
    Bock,
    /// Samejima MCQ model — random guessing (educational scenario); the
    /// paper's most general generator.
    Samejima,
}

impl ModelKind {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Grm => "GRM",
            ModelKind::Bock => "Bock",
            ModelKind::Samejima => "Samejima",
        }
    }
}

/// Configuration of the synthetic generator. Defaults match Section IV-A.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of users `m`.
    pub n_users: usize,
    /// Number of items `n`.
    pub n_items: usize,
    /// Options per item `k` (all items share `k`, as in Section IV).
    pub n_options: u16,
    /// Generating model.
    pub model: ModelKind,
    /// Ability distribution `θ ∼ U[lo, hi]`.
    pub ability_range: (f64, f64),
    /// Difficulty distribution `b ∼ U[lo, hi]`.
    pub difficulty_range: (f64, f64),
    /// Max discrimination: Bock/Samejima slopes `∼ U[0, amax]`; GRM uses
    /// `a ∼ U[0, 2·amax/(k+1)]` for comparability.
    pub max_discrimination: f64,
    /// Probability that a given user answers a given item (Figure 4g).
    pub answer_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_users: 100,
            n_items: 100,
            n_options: 3,
            model: ModelKind::Samejima,
            ability_range: (0.0, 1.0),
            difficulty_range: (-0.5, 0.5),
            max_discrimination: 10.0,
            answer_probability: 1.0,
        }
    }
}

/// A generated workload with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The observable input of the ability-discovery problem.
    pub responses: ResponseMatrix,
    /// Latent ground-truth abilities (never shown to the rankers).
    pub abilities: Vec<f64>,
    /// Best option per item — consumed only by the cheating baselines.
    pub correct_options: Vec<u16>,
    /// Fraction of answered items where the correct option was chosen
    /// (the x-axis of Figures 4f / 9c / 9g).
    pub mean_user_accuracy: f64,
}

/// Samples one option index from a categorical distribution.
fn sample_option(probs: &[f64], rng: &mut impl Rng) -> u16 {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (h, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return h as u16;
        }
    }
    (probs.len() - 1) as u16
}

fn uniform_in(range: (f64, f64), rng: &mut impl Rng) -> f64 {
    range.0 + (range.1 - range.0) * rng.gen::<f64>()
}

enum AnyItem {
    Grm(GrmItem),
    Bock(BockItem),
    Samejima(SamejimaItem),
}

impl AnyItem {
    fn option_probs(&self, theta: f64, out: &mut [f64]) {
        match self {
            AnyItem::Grm(i) => i.option_probs(theta, out),
            AnyItem::Bock(i) => i.option_probs(theta, out),
            AnyItem::Samejima(i) => i.option_probs(theta, out),
        }
    }
}

fn sample_item(config: &GeneratorConfig, rng: &mut impl Rng) -> AnyItem {
    let k = config.n_options as usize;
    match config.model {
        ModelKind::Grm => {
            let a_max = 2.0 * config.max_discrimination / (k as f64 + 1.0);
            let a = rng.gen::<f64>() * a_max;
            let thresholds: Vec<f64> = (0..k - 1)
                .map(|_| uniform_in(config.difficulty_range, rng))
                .collect();
            AnyItem::Grm(GrmItem::new(a.max(1e-6), thresholds))
        }
        ModelKind::Bock | ModelKind::Samejima => {
            // Per-option slopes, sorted ascending so option index = quality
            // (the rankers are index-blind; the cheating baselines rely on
            // the convention).
            let mut slopes: Vec<f64> = (0..k)
                .map(|_| rng.gen::<f64>() * config.max_discrimination)
                .collect();
            slopes.sort_by(|a, b| a.partial_cmp(b).expect("NaN slope"));
            let intercepts: Vec<f64> = slopes
                .iter()
                .map(|&a| -a * uniform_in(config.difficulty_range, rng))
                .collect();
            if config.model == ModelKind::Bock {
                AnyItem::Bock(BockItem::new(slopes, intercepts))
            } else {
                AnyItem::Samejima(SamejimaItem::new(slopes, intercepts))
            }
        }
    }
}

/// Generates a synthetic dataset according to `config`.
///
/// # Panics
/// Panics on degenerate configurations (zero users/items, `k < 2`,
/// `answer_probability ∉ [0, 1]`).
pub fn generate(config: &GeneratorConfig, rng: &mut impl Rng) -> SyntheticDataset {
    assert!(config.n_users > 0 && config.n_items > 0, "empty problem");
    assert!(config.n_options >= 2, "need at least 2 options");
    assert!(
        (0.0..=1.0).contains(&config.answer_probability),
        "answer probability must be in [0,1]"
    );
    let k = config.n_options as usize;
    let abilities: Vec<f64> = (0..config.n_users)
        .map(|_| uniform_in(config.ability_range, rng))
        .collect();
    let items: Vec<AnyItem> = (0..config.n_items)
        .map(|_| sample_item(config, rng))
        .collect();
    // With the ascending-slope convention the best option is always k−1.
    let correct_options = vec![(k - 1) as u16; config.n_items];

    let mut builder =
        ResponseMatrixBuilder::homogeneous(config.n_users, config.n_items, config.n_options)
            .expect("validated above");
    let mut probs = vec![0.0; k];
    let mut correct = 0usize;
    let mut answered = 0usize;
    for (j, &theta) in abilities.iter().enumerate() {
        for (i, item) in items.iter().enumerate() {
            if config.answer_probability < 1.0 && rng.gen::<f64>() >= config.answer_probability {
                continue;
            }
            item.option_probs(theta, &mut probs);
            let choice = sample_option(&probs, rng);
            builder.set(j, i, Some(choice)).expect("choice within k");
            answered += 1;
            if choice == correct_options[i] {
                correct += 1;
            }
        }
    }
    SyntheticDataset {
        responses: builder.build(),
        abilities,
        correct_options,
        mean_user_accuracy: if answered == 0 {
            0.0
        } else {
            correct as f64 / answered as f64
        },
    }
}

/// Generates an *ideal* consistent (C1P) dataset: the `a → ∞` GRM limit
/// where each user deterministically picks the option whose threshold
/// interval contains their ability (Section IV-B item 6).
///
/// Following Appendix D-D, abilities are drawn asymmetrically (10% in
/// `[0, 0.5]`, 90% in `[0.5, 1]`) so the response matrix is not mirror
/// symmetric and entropy-based orientation has signal to work with;
/// thresholds are uniform in `[0, 1]`.
pub fn generate_c1p(
    n_users: usize,
    n_items: usize,
    n_options: u16,
    rng: &mut impl Rng,
) -> SyntheticDataset {
    assert!(n_users > 0 && n_items > 0 && n_options >= 2);
    let k = n_options as usize;
    let abilities: Vec<f64> = (0..n_users)
        .map(|_| {
            if rng.gen::<f64>() < 0.1 {
                0.5 * rng.gen::<f64>()
            } else {
                0.5 + 0.5 * rng.gen::<f64>()
            }
        })
        .collect();
    let mut builder =
        ResponseMatrixBuilder::homogeneous(n_users, n_items, n_options).expect("validated above");
    let mut correct = 0usize;
    for i in 0..n_items {
        let mut thresholds: Vec<f64> = (0..k - 1).map(|_| rng.gen::<f64>()).collect();
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        for (j, &theta) in abilities.iter().enumerate() {
            let opt = thresholds.iter().filter(|&&b| theta >= b).count() as u16;
            builder.set(j, i, Some(opt)).expect("opt < k");
            if opt == n_options - 1 {
                correct += 1;
            }
        }
    }
    SyntheticDataset {
        responses: builder.build(),
        abilities,
        correct_options: vec![n_options - 1; n_items],
        mean_user_accuracy: correct as f64 / (n_users * n_items) as f64,
    }
}

/// Generates responses from explicitly constructed polytomous items — used
/// by the Figure 6 stability study, which needs full control over slopes
/// and difficulties. `correct_options[i]` must identify the best option of
/// item `i` (the generators cannot infer it for arbitrary models).
///
/// # Panics
/// Panics on empty inputs or mismatched `correct_options` length.
pub fn generate_from_items<M: PolytomousModel>(
    items: &[M],
    correct_options: &[u16],
    abilities: &[f64],
    rng: &mut impl Rng,
) -> SyntheticDataset {
    assert!(!items.is_empty() && !abilities.is_empty());
    assert_eq!(items.len(), correct_options.len(), "correct_options length");
    let options: Vec<u16> = items.iter().map(|i| i.n_options() as u16).collect();
    let mut builder = ResponseMatrixBuilder::new(abilities.len(), items.len(), &options)
        .expect("validated above");
    let mut correct = 0usize;
    for (j, &theta) in abilities.iter().enumerate() {
        for (i, item) in items.iter().enumerate() {
            let mut probs = vec![0.0; item.n_options()];
            item.option_probs(theta, &mut probs);
            let choice = sample_option(&probs, rng);
            builder.set(j, i, Some(choice)).expect("choice within k");
            if choice == correct_options[i] {
                correct += 1;
            }
        }
    }
    SyntheticDataset {
        responses: builder.build(),
        abilities: abilities.to_vec(),
        correct_options: correct_options.to_vec(),
        mean_user_accuracy: correct as f64 / (items.len() * abilities.len()) as f64,
    }
}

/// Generates binary (k = 2) responses from explicit 3PL items — the
/// simulated-realistic workloads of Figures 12 and 13. Option 1 is correct,
/// option 0 wrong.
pub fn generate_binary(
    items: &[ThreePl],
    abilities: &[f64],
    rng: &mut impl Rng,
) -> SyntheticDataset {
    assert!(!items.is_empty() && !abilities.is_empty());
    let mut builder = ResponseMatrixBuilder::homogeneous(abilities.len(), items.len(), 2)
        .expect("validated above");
    let mut correct = 0usize;
    for (j, &theta) in abilities.iter().enumerate() {
        for (i, item) in items.iter().enumerate() {
            let p = item.prob_correct(theta);
            let choice = u16::from(rng.gen::<f64>() < p);
            builder.set(j, i, Some(choice)).expect("binary choice");
            correct += choice as usize;
        }
    }
    SyntheticDataset {
        responses: builder.build(),
        abilities: abilities.to_vec(),
        correct_options: vec![1; items.len()],
        mean_user_accuracy: correct as f64 / (items.len() * abilities.len()) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Local C1P oracle: sort users by true ability and check that every
    /// one-hot column is consecutive.
    fn is_consistent_when_sorted(ds: &SyntheticDataset) -> bool {
        let mut order: Vec<usize> = (0..ds.abilities.len()).collect();
        order.sort_by(|&a, &b| ds.abilities[a].partial_cmp(&ds.abilities[b]).unwrap());
        let sorted = ds.responses.permute_users(&order);
        let c = sorted.to_binary_csr();
        for col in 0..c.cols() {
            let rows: Vec<usize> = (0..c.rows())
                .filter(|&r| c.row_iter(r).any(|(cc, _)| cc == col))
                .collect();
            if rows.len() >= 2 && rows[rows.len() - 1] - rows[0] + 1 != rows.len() {
                return false;
            }
        }
        true
    }

    #[test]
    fn shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(
            &GeneratorConfig {
                n_users: 30,
                n_items: 20,
                n_options: 4,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(ds.responses.n_users(), 30);
        assert_eq!(ds.responses.n_items(), 20);
        assert_eq!(ds.responses.max_options(), 4);
        assert_eq!(ds.abilities.len(), 30);
        assert!(ds.abilities.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!((0.0..=1.0).contains(&ds.mean_user_accuracy));
        assert_eq!(ds.responses.density(), 1.0);
    }

    #[test]
    fn all_models_generate() {
        let mut rng = StdRng::seed_from_u64(2);
        for model in [ModelKind::Grm, ModelKind::Bock, ModelKind::Samejima] {
            let ds = generate(
                &GeneratorConfig {
                    n_users: 20,
                    n_items: 15,
                    model,
                    ..Default::default()
                },
                &mut rng,
            );
            assert_eq!(ds.responses.n_users(), 20, "{}", model.name());
        }
    }

    #[test]
    fn answer_probability_thins_responses() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate(
            &GeneratorConfig {
                n_users: 100,
                n_items: 100,
                answer_probability: 0.7,
                ..Default::default()
            },
            &mut rng,
        );
        let d = ds.responses.density();
        assert!((d - 0.7).abs() < 0.03, "density {d} should be ≈ 0.7");
    }

    #[test]
    fn better_users_answer_better_statistically() {
        // Spearman-free sanity check: top-quartile users by ability must hit
        // the correct option more often than bottom-quartile users.
        let mut rng = StdRng::seed_from_u64(4);
        let ds = generate(
            &GeneratorConfig {
                n_users: 200,
                n_items: 50,
                ..Default::default()
            },
            &mut rng,
        );
        let mut idx: Vec<usize> = (0..200).collect();
        idx.sort_by(|&a, &b| ds.abilities[a].partial_cmp(&ds.abilities[b]).unwrap());
        let acc = |users: &[usize]| -> f64 {
            let mut c = 0;
            let mut t = 0;
            for &u in users {
                for i in 0..50 {
                    if let Some(o) = ds.responses.choice(u, i) {
                        t += 1;
                        if o == ds.correct_options[i] {
                            c += 1;
                        }
                    }
                }
            }
            c as f64 / t as f64
        };
        let low = acc(&idx[..50]);
        let high = acc(&idx[150..]);
        assert!(
            high > low + 0.1,
            "high-ability accuracy {high} must clearly beat {low}"
        );
    }

    #[test]
    fn grm_empirical_frequencies_match_model() {
        // Statistical test of the sampler itself.
        let item = GrmItem::new(2.0, vec![-0.3, 0.4]);
        let theta = 0.2;
        let expect = item.option_probs_vec(theta);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        const N: usize = 20_000;
        for _ in 0..N {
            counts[sample_option(&expect, &mut rng) as usize] += 1;
        }
        for h in 0..3 {
            let freq = counts[h] as f64 / N as f64;
            assert!(
                (freq - expect[h]).abs() < 0.015,
                "option {h}: {freq} vs {}",
                expect[h]
            );
        }
    }

    #[test]
    fn c1p_generator_is_consistent() {
        let mut rng = StdRng::seed_from_u64(6);
        let ds = generate_c1p(40, 30, 3, &mut rng);
        assert!(is_consistent_when_sorted(&ds), "C1P data must be pre-P");
        assert_eq!(ds.responses.density(), 1.0);
    }

    #[test]
    fn c1p_abilities_are_asymmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let ds = generate_c1p(1000, 5, 3, &mut rng);
        let above = ds.abilities.iter().filter(|&&t| t >= 0.5).count();
        assert!(
            (850..=950).contains(&above),
            "≈90% of abilities should be in [0.5,1], got {above}/1000"
        );
    }

    #[test]
    fn high_discrimination_grm_approaches_consistency() {
        // Section II-D: IRT → C1P as a → ∞.
        let mut rng = StdRng::seed_from_u64(8);
        let ds = generate(
            &GeneratorConfig {
                n_users: 30,
                n_items: 20,
                model: ModelKind::Grm,
                max_discrimination: 1e7,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(is_consistent_when_sorted(&ds));
    }

    #[test]
    fn binary_generator_uses_3pl() {
        let items = vec![
            ThreePl {
                discrimination: 2.0,
                difficulty: 0.0,
                guessing: 0.25
            };
            30
        ];
        let mut rng = StdRng::seed_from_u64(9);
        let abilities: Vec<f64> = (0..100).map(|i| (i as f64) / 50.0 - 1.0).collect();
        let ds = generate_binary(&items, &abilities, &mut rng);
        assert_eq!(ds.responses.max_options(), 2);
        // Guessing floor: even the weakest users score ≥ ~25%.
        assert!(ds.mean_user_accuracy > 0.3);
    }
}
