//! Marginal-maximum-likelihood GRM estimation — the GIRTH substitute.
//!
//! The paper's "GRM-estimator" baseline fits a Graded Response Model to the
//! observed responses and ranks users by the estimated abilities. It is a
//! *cheating* baseline: it must be told the quality order of each item's
//! options (our generators encode quality as the option index, see the
//! crate docs). This module implements the standard MML-EM procedure:
//!
//! * **E-step** — posterior ability distribution per user on a fixed
//!   quadrature grid under a standard-normal prior, then expected response
//!   counts `r_{i,h,q}`.
//! * **M-step** — per-item maximization of the expected complete-data
//!   log-likelihood over `(a_i, b_{i,1} < … < b_{i,k−1})` by projected
//!   gradient ascent with numerical gradients and backtracking line search.
//! * **Scoring** — EAP (expected a posteriori) abilities.

use crate::poly::{GrmItem, PolytomousModel};
use hnd_response::{AbilityRanker, RankError, Ranking, ResponseMatrix};

/// Configuration of the GRM MML-EM estimator.
#[derive(Debug, Clone)]
pub struct GrmEstimator {
    /// Number of quadrature nodes (equally spaced over `theta_range`).
    pub quadrature_points: usize,
    /// Ability grid range (standard-normal prior is truncated here).
    pub theta_range: (f64, f64),
    /// Maximum EM iterations.
    pub max_em_iters: usize,
    /// EM convergence tolerance on the max EAP ability change.
    pub tol: f64,
    /// Gradient-ascent steps per item per M-step.
    pub m_step_iters: usize,
}

impl Default for GrmEstimator {
    fn default() -> Self {
        GrmEstimator {
            quadrature_points: 31,
            theta_range: (-4.0, 4.0),
            max_em_iters: 40,
            tol: 1e-4,
            m_step_iters: 6,
        }
    }
}

/// A fitted GRM.
#[derive(Debug, Clone)]
pub struct GrmFit {
    /// Estimated items (discrimination + ordered thresholds).
    pub items: Vec<GrmItem>,
    /// EAP ability estimate per user.
    pub abilities: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the EM tolerance was met.
    pub converged: bool,
    /// Final marginal log-likelihood.
    pub log_likelihood: f64,
}

struct Quadrature {
    nodes: Vec<f64>,
    log_prior: Vec<f64>,
}

fn quadrature(points: usize, range: (f64, f64)) -> Quadrature {
    let (lo, hi) = range;
    let nodes: Vec<f64> = (0..points)
        .map(|q| lo + (hi - lo) * q as f64 / (points - 1) as f64)
        .collect();
    // Standard-normal prior, normalized over the grid.
    let weights: Vec<f64> = nodes.iter().map(|t| (-0.5 * t * t).exp()).collect();
    let z: f64 = weights.iter().sum();
    let log_prior = weights.iter().map(|w| (w / z).ln()).collect();
    Quadrature { nodes, log_prior }
}

/// Per-item expected log-likelihood `Q_i = Σ_{h,q} r_{ihq} · ln P_h(θ_q)`.
fn item_objective(item: &GrmItem, r: &[f64], nodes: &[f64]) -> f64 {
    let k = item.n_options();
    let mut probs = vec![0.0; k];
    let mut q_val = 0.0;
    for (q, &theta) in nodes.iter().enumerate() {
        item.option_probs(theta, &mut probs);
        for h in 0..k {
            let cnt = r[h * nodes.len() + q];
            if cnt > 0.0 {
                q_val += cnt * probs[h].max(1e-12).ln();
            }
        }
    }
    q_val
}

/// Projects the raw parameter vector `(a, b₁…b_{k−1})` onto the feasible
/// region: `a ∈ [0.05, 100]`, thresholds sorted in `[-6, 6]` with a minimum
/// gap so categories never collapse.
fn project(params: &mut [f64]) {
    params[0] = params[0].clamp(0.05, 100.0);
    let b = &mut params[1..];
    b.sort_by(|a, b| a.partial_cmp(b).expect("NaN threshold"));
    for i in 0..b.len() {
        b[i] = b[i].clamp(-6.0, 6.0);
        if i > 0 && b[i] < b[i - 1] + 1e-3 {
            b[i] = b[i - 1] + 1e-3;
        }
    }
}

fn params_to_item(params: &[f64]) -> GrmItem {
    GrmItem::new(params[0], params[1..].to_vec())
}

/// One M-step for a single item: projected gradient ascent with numerical
/// central-difference gradients and backtracking line search.
fn maximize_item(item: &GrmItem, r: &[f64], nodes: &[f64], iters: usize) -> GrmItem {
    let mut params: Vec<f64> = std::iter::once(item.discrimination)
        .chain(item.thresholds.iter().copied())
        .collect();
    let mut best = item_objective(&params_to_item(&params), r, nodes);
    const EPS: f64 = 1e-5;
    for _ in 0..iters {
        // Numerical gradient.
        let mut grad = vec![0.0; params.len()];
        for (p, g) in grad.iter_mut().enumerate() {
            let mut plus = params.clone();
            plus[p] += EPS;
            project(&mut plus);
            let mut minus = params.clone();
            minus[p] -= EPS;
            project(&mut minus);
            let denom = plus[p] - minus[p];
            if denom.abs() < 1e-12 {
                continue;
            }
            *g = (item_objective(&params_to_item(&plus), r, nodes)
                - item_objective(&params_to_item(&minus), r, nodes))
                / denom;
        }
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if gnorm < 1e-9 {
            break;
        }
        // Backtracking line search.
        let mut step = 0.5 / gnorm.max(1.0);
        let mut improved = false;
        for _ in 0..20 {
            let mut cand: Vec<f64> = params
                .iter()
                .zip(&grad)
                .map(|(p, g)| p + step * g)
                .collect();
            project(&mut cand);
            let val = item_objective(&params_to_item(&cand), r, nodes);
            if val > best {
                params = cand;
                best = val;
                improved = true;
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    params_to_item(&params)
}

impl GrmEstimator {
    /// Fits a GRM to the responses and produces EAP abilities.
    ///
    /// Option indices are interpreted as ordinal quality (this crate's
    /// convention); unanswered items are skipped in the likelihood.
    ///
    /// # Errors
    /// Rejects matrices with a single-option item (GRM needs `k ≥ 2`) via
    /// [`RankError::InvalidInput`].
    pub fn fit(&self, matrix: &ResponseMatrix) -> Result<GrmFit, RankError> {
        let m = matrix.n_users();
        let n = matrix.n_items();
        for i in 0..n {
            if matrix.options_of(i) < 2 {
                return Err(RankError::InvalidInput(format!(
                    "item {i} has fewer than 2 options"
                )));
            }
        }
        let quad = quadrature(self.quadrature_points, self.theta_range);
        let nq = quad.nodes.len();

        // Initial items: a = 1, evenly spread thresholds.
        let mut items: Vec<GrmItem> = (0..n)
            .map(|i| {
                let k = matrix.options_of(i) as usize;
                let thresholds: Vec<f64> = (1..k)
                    .map(|h| -1.0 + 2.0 * (h as f64 - 0.5) / (k as f64 - 1.0))
                    .collect();
                GrmItem::new(1.0, thresholds)
            })
            .collect();

        let mut abilities = vec![0.0; m];
        let mut iterations = 0;
        let mut converged = false;
        let mut log_likelihood = f64::NEG_INFINITY;

        // Per-item option probabilities on the grid, recomputed each E-step.
        for em in 0..self.max_em_iters {
            iterations = em + 1;
            // Cache log P_{i,h}(θ_q).
            let log_probs: Vec<Vec<f64>> = items
                .iter()
                .map(|item| {
                    let k = item.n_options();
                    let mut grid = vec![0.0; k * nq];
                    let mut probs = vec![0.0; k];
                    for (q, &theta) in quad.nodes.iter().enumerate() {
                        item.option_probs(theta, &mut probs);
                        for h in 0..k {
                            grid[h * nq + q] = probs[h].max(1e-12).ln();
                        }
                    }
                    grid
                })
                .collect();

            // E-step: posteriors and expected counts.
            let mut r: Vec<Vec<f64>> = items
                .iter()
                .map(|item| vec![0.0; item.n_options() * nq])
                .collect();
            let mut new_abilities = vec![0.0; m];
            let mut ll = 0.0;
            let mut log_post = vec![0.0; nq];
            for j in 0..m {
                log_post.copy_from_slice(&quad.log_prior);
                for (i, lp) in log_probs.iter().enumerate() {
                    if let Some(h) = matrix.choice(j, i) {
                        let row = &lp[h as usize * nq..(h as usize + 1) * nq];
                        for q in 0..nq {
                            log_post[q] += row[q];
                        }
                    }
                }
                let max_lp = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut z = 0.0;
                let mut posterior = vec![0.0; nq];
                for q in 0..nq {
                    posterior[q] = (log_post[q] - max_lp).exp();
                    z += posterior[q];
                }
                ll += max_lp + z.ln();
                let mut eap = 0.0;
                for q in 0..nq {
                    posterior[q] /= z;
                    eap += posterior[q] * quad.nodes[q];
                }
                new_abilities[j] = eap;
                for (i, ri) in r.iter_mut().enumerate() {
                    if let Some(h) = matrix.choice(j, i) {
                        let base = h as usize * nq;
                        for q in 0..nq {
                            ri[base + q] += posterior[q];
                        }
                    }
                }
            }
            log_likelihood = ll;

            let max_change = abilities
                .iter()
                .zip(&new_abilities)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            abilities = new_abilities;
            if em > 0 && max_change < self.tol {
                converged = true;
                break;
            }

            // M-step.
            for (i, item) in items.iter_mut().enumerate() {
                *item = maximize_item(item, &r[i], &quad.nodes, self.m_step_iters);
            }
        }

        Ok(GrmFit {
            items,
            abilities,
            iterations,
            converged,
            log_likelihood,
        })
    }
}

impl AbilityRanker for GrmEstimator {
    fn name(&self) -> &'static str {
        "GRM-estimator"
    }

    fn rank(&self, matrix: &ResponseMatrix) -> Result<Ranking, RankError> {
        let fit = self.fit(matrix)?;
        Ok(Ranking {
            scores: fit.abilities,
            iterations: fit.iterations,
            converged: fit.converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Spearman helper local to the tests (hnd-eval would be a cycle).
    fn spearman_local(a: &[f64], b: &[f64]) -> f64 {
        fn ranks(x: &[f64]) -> Vec<f64> {
            let mut idx: Vec<usize> = (0..x.len()).collect();
            idx.sort_by(|&i, &j| x[i].partial_cmp(&x[j]).unwrap());
            let mut r = vec![0.0; x.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        }
        let (ra, rb) = (ranks(a), ranks(b));
        let n = a.len() as f64;
        let ma = ra.iter().sum::<f64>() / n;
        let mb = rb.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (ra[i] - ma) * (rb[i] - mb);
            va += (ra[i] - ma) * (ra[i] - ma);
            vb += (rb[i] - mb) * (rb[i] - mb);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn quadrature_prior_normalizes() {
        let q = quadrature(31, (-4.0, 4.0));
        let sum: f64 = q.log_prior.iter().map(|lp| lp.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(q.nodes.len(), 31);
        assert_eq!(q.nodes[0], -4.0);
        assert_eq!(*q.nodes.last().unwrap(), 4.0);
    }

    #[test]
    fn projection_enforces_order_and_bounds() {
        let mut p = vec![500.0, 2.0, -3.0, 2.0];
        project(&mut p);
        assert_eq!(p[0], 100.0);
        assert!(p[1] <= p[2] && p[2] <= p[3]);
        assert!(p[2] >= p[1] + 1e-3 - 1e-12);
    }

    #[test]
    fn recovers_ability_ranking_on_grm_data() {
        let mut rng = StdRng::seed_from_u64(21);
        let ds = generate(
            &GeneratorConfig {
                n_users: 120,
                n_items: 30,
                n_options: 3,
                model: ModelKind::Grm,
                // Map abilities into the prior's scale a bit.
                ability_range: (-1.5, 1.5),
                difficulty_range: (-1.0, 1.0),
                max_discrimination: 6.0,
                ..Default::default()
            },
            &mut rng,
        );
        let fit = GrmEstimator::default().fit(&ds.responses).unwrap();
        let rho = spearman_local(&fit.abilities, &ds.abilities);
        assert!(rho > 0.85, "EAP abilities should track truth, ρ = {rho}");
    }

    #[test]
    fn m_step_never_decreases_objective() {
        let mut rng = StdRng::seed_from_u64(22);
        let nodes: Vec<f64> = (0..21).map(|q| -3.0 + 0.3 * q as f64).collect();
        // Random expected counts.
        let r: Vec<f64> = (0..3 * nodes.len())
            .map(|_| rand::Rng::gen::<f64>(&mut rng) * 5.0)
            .collect();
        let item = GrmItem::new(1.0, vec![-0.5, 0.5]);
        let before = item_objective(&item, &r, &nodes);
        let improved = maximize_item(&item, &r, &nodes, 8);
        let after = item_objective(&improved, &r, &nodes);
        assert!(after >= before - 1e-9, "{after} < {before}");
    }

    #[test]
    fn handles_missing_responses() {
        let mut rng = StdRng::seed_from_u64(23);
        let ds = generate(
            &GeneratorConfig {
                n_users: 60,
                n_items: 25,
                answer_probability: 0.6,
                model: ModelKind::Grm,
                ability_range: (-1.5, 1.5),
                ..Default::default()
            },
            &mut rng,
        );
        let fit = GrmEstimator::default().fit(&ds.responses).unwrap();
        assert_eq!(fit.abilities.len(), 60);
        assert!(fit.log_likelihood.is_finite());
        let rho = spearman_local(&fit.abilities, &ds.abilities);
        assert!(rho > 0.5, "ρ = {rho}");
    }

    #[test]
    fn ranker_interface_works() {
        let mut rng = StdRng::seed_from_u64(24);
        let ds = generate(
            &GeneratorConfig {
                n_users: 40,
                n_items: 15,
                model: ModelKind::Grm,
                ..Default::default()
            },
            &mut rng,
        );
        let ranking = GrmEstimator::default().rank(&ds.responses).unwrap();
        assert_eq!(ranking.scores.len(), 40);
        assert!(ranking.iterations >= 1);
    }
}
