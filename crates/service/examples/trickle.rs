//! A live classroom: answers trickle in, rankings stay warm.
//!
//! Simulates a cohort of students answering a quiz over many small
//! submission waves, serving `current_ranking` after each wave through the
//! incremental [`RankingEngine`] — delta-patched kernels plus warm-started
//! solves — and comparing against a cold engine that rebuilds+resolves
//! from scratch at the same cadence.
//!
//! Run with: `cargo run --release -p hnd-service --example trickle`

use hnd_service::{EngineOpts, RankingEngine, SolverOpts};
use std::time::Instant;

/// A deterministic pseudo-random stream (no RNG dependency): the latent
/// ability of user `u` decides how likely their answers are correct.
struct Stream {
    state: u64,
}

impl Stream {
    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 11
    }

    fn unit(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 53) as f64
    }
}

/// |Spearman rank correlation| between two score vectors.
fn spearman_abs(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap().then(i.cmp(&j)));
        let mut r = vec![0.0f64; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = ra.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - mean) * (y - mean);
        var += (x - mean) * (x - mean);
    }
    (cov / var).abs()
}

fn main() {
    let m = 600; // students
    let n = 80; // questions
    let k = 3u16; // options per question
    let waves = 40;
    let wave_size = 1200; // answers per wave

    let opts = EngineOpts {
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut warm_engine = RankingEngine::new(m, n, &vec![k; n], opts).unwrap();

    // Latent abilities: user u answers correctly with probability tied to
    // their rank; the "correct" option of item i is i % k.
    let mut stream = Stream { state: 0xC1A55 };
    let mut answers: Vec<(usize, usize, Option<u16>)> = Vec::new();
    for _ in 0..waves * wave_size {
        let u = (stream.next() as usize) % m;
        let i = (stream.next() as usize) % n;
        let ability = u as f64 / m as f64;
        let correct = i as u16 % k;
        let choice = if stream.unit() < 0.25 + 0.7 * ability {
            correct
        } else {
            (correct + 1 + (stream.next() % (k as u64 - 1)) as u16) % k
        };
        answers.push((u, i, Some(choice)));
    }

    println!("classroom: {m} students × {n} questions, {waves} waves of {wave_size} answers");
    println!();
    println!("wave  version  warm-iters  warm-time    cold-time    speedup");

    let mut total_warm = 0.0f64;
    let mut total_cold = 0.0f64;
    for (wave, chunk) in answers.chunks(wave_size).enumerate() {
        warm_engine.submit_responses(chunk.iter().copied()).unwrap();

        let t = Instant::now();
        let ranking = warm_engine.current_ranking().unwrap();
        let warm_time = t.elapsed().as_secs_f64();

        // Cold baseline at the same state: fresh engine, bulk load, solve.
        let t = Instant::now();
        let mut cold_engine = RankingEngine::new(m, n, &vec![k; n], opts).unwrap();
        cold_engine
            .submit_responses(answers[..(wave + 1) * wave_size].iter().copied())
            .unwrap();
        let cold_ranking = cold_engine.current_ranking().unwrap();
        let cold_time = t.elapsed().as_secs_f64();

        total_warm += warm_time;
        total_cold += cold_time;

        // Warm and cold agree up to tolerance and the C1P reversal
        // symmetry (exact orders may differ on near-ties while data is
        // sparse, so compare by rank correlation).
        let rho = spearman_abs(&ranking.scores, &cold_ranking.scores);
        assert!(
            rho > 0.98,
            "warm and cold rankings diverged at wave {wave}: |rho| = {rho:.4}"
        );

        if wave % 5 == 0 || wave == waves - 1 {
            println!(
                "{wave:>4}  {version:>7}  {iters:>10}  {wt:>9.2} ms  {ct:>9.2} ms  {sp:>6.1}×",
                version = warm_engine.version(),
                iters = warm_engine.stats().last_iterations,
                wt = warm_time * 1e3,
                ct = cold_time * 1e3,
                sp = cold_time / warm_time.max(1e-9),
            );
        }
    }

    let stats = warm_engine.stats();
    println!();
    println!(
        "totals: warm path {:.1} ms vs cold path {:.1} ms ({:.1}× overall)",
        total_warm * 1e3,
        total_cold * 1e3,
        total_cold / total_warm.max(1e-9)
    );
    println!(
        "engine: {} delta applies, {} rebuilds, {} warm solves, {} cold solves",
        stats.delta_applies, stats.rebuilds, stats.warm_solves, stats.cold_solves
    );
}
