//! The incremental [`RankingEngine`]: one session's solve path.
//!
//! The engine owns the four pieces the incremental pipeline threads
//! together — the versioned [`ResponseLog`], the in-place-patched kernel
//! context ([`ResponseOps`]), the unified solver
//! ([`SpectralSolver`](hnd_core::SpectralSolver)), and the version-keyed
//! [`WarmStartCache`] — and exposes the two-call serving API:
//! [`RankingEngine::submit_responses`] → [`RankingEngine::current_ranking`].
//!
//! A `current_ranking` call at an already-solved version is a cache hit
//! (no numerics at all). Otherwise the engine drains the log's delta,
//! patches the kernel context in `O(nnz(delta))` (falling back to a
//! slack-capacity rebuild only when a row/column span is exhausted), and
//! warm-starts the solver from the nearest cached state — on small deltas
//! the iteration converges in a handful of steps instead of dozens, and
//! the multi-million-entry pattern is never rebuilt.

use crate::cache::{CachedSolve, WarmStartCache};
use hnd_core::{SolveState, SolverKind, SolverOpts, SpectralSolver, Target};
use hnd_linalg::{DensityPlan, FormatCounts};
use hnd_plan::{KernelClass, PlanDecision, PlanMode, Planner, SessionShape};
use hnd_response::{
    RankError, Ranking, ResponseDelta, ResponseEdit, ResponseError, ResponseLog, ResponseMatrix,
    ResponseOps,
};
use hnd_shard::{ShardPlan, ShardedOps};
use hnd_telemetry::{EventKind, Probe, SkipRefusal, Stage};
use std::time::Instant;

/// Accuracy tier of the approximate query API ([`RankingEngine::top_k`],
/// [`RankingEngine::rank_of`]). [`RankingEngine::current_ranking`] is
/// always exact — tiers exist only where the caller opted into a weaker
/// question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryTier {
    /// Run the solver to its full tolerance, exactly like
    /// [`RankingEngine::current_ranking`].
    Exact,
    /// Early-terminate once the requested answer is *certified* decided by
    /// the per-entry convergence envelopes (`hnd_core::approx`), and skip
    /// the solve entirely when the pending wave provably cannot change it.
    /// The default: same answer as `Exact` within the certified bound, at
    /// a fraction of the iterations.
    #[default]
    Certified,
    /// Dashboard tier: cap the iteration budget at
    /// [`COARSE_MAX_ITER`] and serve whatever the solver reached — no
    /// certificate, lowest latency.
    Coarse,
}

/// Iteration cap of [`QueryTier::Coarse`] solves.
pub const COARSE_MAX_ITER: usize = 32;

/// Safety multiplier on the self-calibrated per-edit influence rates used
/// by the delta-skip fast path (the rates are running maxima of observed
/// score perturbations; the margin absorbs waves a little more influential
/// than anything seen so far).
const SKIP_SAFETY: f64 = 2.0;

/// Certified-tier solves run this much tighter than the configured
/// tolerance. The skip path's stability margins compete with the solver
/// noise of the cached scores: at the user tolerance, adjacent-gap noise
/// is the same order as real top-k boundary gaps on large rosters, and
/// nothing could ever be certified stable. Tightening costs only
/// `ln(1/factor)` extra iterations on a linearly converging solve and is
/// repaid by every skipped solve it unlocks.
const CERT_TOL_FACTOR: f64 = 1e-3;

/// Noise band of a skip decision, in units of the cached solve's
/// tolerance: each cached score carries up to ~one tolerance of solver
/// error, so an adjacent gap carries two, and the floor/ceiling sweep
/// compares two such gaps.
const SKIP_NOISE: f64 = 4.0;

/// Per-observation decay of the calibrated influence rates. A pure
/// running maximum ratchets upward forever: one unusually influential
/// wave in ten thousand permanently over-bounds every later skip
/// decision. Decaying the old rate only when a *fresh above-noise
/// observation* arrives (quiet stretches keep the bound frozen — no
/// evidence, no relaxation) makes the calibration track the recent
/// worst case with a half-life of ~34 observations.
const RATE_DECAY: f64 = 0.98;

/// Maximum pending-wave span (in edits) the skip path will evaluate.
/// The per-edit ripple bound grows linearly in the span while real
/// perturbations partially cancel, so past a few dozen edits the bound
/// is hopeless anyway and the evaluation is pure overhead.
const SKIP_SPAN_MAX: usize = 32;

/// The last approximate solve, kept *outside* the exact warm-start cache
/// so `current_ranking` cache hits stay exact-by-default. The normalized
/// score copy is the coordinate system of the skip path's perturbation
/// bounds (solver scores are only unit-norm up to the cumsum map).
struct ApproxSolve {
    version: u64,
    /// The `k` whose head this solve certifies (`usize::MAX` for a
    /// rank-stable or exact solve — every head is covered).
    k: usize,
    /// Whether the entry is backed by a certificate (certified/exact
    /// solves) — only these may seed the skip path.
    certified: bool,
    ranking: Ranking,
    /// `ranking.scores` normalized to unit L2.
    norm_scores: Vec<f64>,
    /// Indices of `norm_scores` sorted best-first — computed once per
    /// solve so each skip evaluation stays O(m), not O(m log m) (at large
    /// rosters the sort would rival the warm solve it skips).
    order: Vec<usize>,
    /// The residual tolerance the producing solve ran at — the resolution
    /// of `norm_scores`, and hence the noise band of any skip decision
    /// read off them.
    tol: f64,
    /// Version through which the accumulated wave exposure below is
    /// current. The skip path is re-priced on every query; recomputing
    /// the full edit span each time would cost O(span + m), so it extends
    /// these accumulators by just the edits that arrived since the last
    /// evaluation.
    coupled_to: u64,
    /// Edits accumulated in the exposure (the [`SKIP_SPAN_MAX`] meter).
    span: usize,
    /// Per-user authored-edit counts since `version` (direct channel).
    edit_counts: Vec<f64>,
}

/// Self-calibrated rates bounding how far one wave can move *score
/// differences* (the quantity the top-k decision rests on — absolute
/// scores shift by a large common mode under any edit, but a common
/// shift cancels inside a difference and reorders nobody). Two channels,
/// because their magnitudes differ by orders of magnitude and a single
/// shared rate would let the large one catastrophically over-bound the
/// other:
///
/// * `direct` — gap movement per *edit authored by a pair endpoint*: the
///   editor's own row changed, and their score moves by an amount
///   proportional to the number of their answers that flipped.
/// * `ripple` — movement **per edit** of the editor-free head-vs-rest
///   *margin* at the calibrating solve's certified boundary: the global
///   eigenvector adjustment every edit induces in everyone else
///   (column-degree rescaling, normalization, subdominant-direction
///   tilt). Measured directly on the margin because near-boundary
///   entries ride the same global mode and the margin moves far less
///   than the sum of its endpoints' individual movements — the movement
///   is also *not* proportional to any per-user coupling weight, and
///   normalizing it by one (as an earlier iteration of this path did)
///   silently divides near-boundary physics by a far-tail denominator
///   until the rate over-bounds every skip.
///
/// Both are decaying maxima of observed solve-to-solve perturbations
/// (see [`RATE_DECAY`]), noise-floored at the solver tolerance of the
/// two solves compared.
/// `None` until first observed — the skip path never fires with an
/// uncalibrated direct channel (an unobserved ripple channel means
/// off-editor influence stayed under the solver noise band, which the
/// skip decision already budgets for).
#[derive(Debug, Clone, Copy, Default)]
struct SkipRates {
    direct: Option<f64>,
    ripple: Option<f64>,
}

/// Configuration of a [`RankingEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOpts {
    /// Which spectral solver serves this session.
    pub solver: SolverKind,
    /// The solver's shared options.
    pub solver_opts: SolverOpts,
    /// How many `(version → ranking, state)` solves to keep warm.
    pub cache_capacity: usize,
    /// Spare answer slots per user row before a kernel rebuild.
    pub row_slack: usize,
    /// Spare pick slots per option column before a kernel rebuild.
    pub col_slack: usize,
    /// Maximum retained log-history edits for cross-version catch-up
    /// (`None` = unbounded). Older edits are truncated after each submit;
    /// clients further behind than this get
    /// [`ResponseError::HistoryUnavailable`](hnd_response::ResponseError)
    /// from catch-up and must resync from a snapshot.
    pub history_retention: Option<usize>,
    /// Sharded-execution policy (`None` = never shard). With a plan set,
    /// a session whose roster/entry count crosses
    /// [`ShardPlan::activates`] is served by the `hnd-shard` backend:
    /// user-range shards of the pattern, shard-parallel kernels, and
    /// delta routing to owning shards — transparently, with results
    /// matching the single-shard path to ≤1e-12. Sessions below the
    /// threshold keep the single-shard fast path. The sharded solve is
    /// implemented for the flagship [`SolverKind::Power`]; other solver
    /// kinds ignore the plan.
    pub shard_plan: Option<ShardPlan>,
    /// Lane-format policy of the kernel context: rows/mirror columns whose
    /// density crosses the plan's thresholds are stored as 64-bit bitmap
    /// lanes (SIMD word kernels, O(1) bit-flip edits with no slack
    /// accounting); the rest keep the u32-index CSR layout. The default is
    /// ISA-adaptive; [`DensityPlan::force_csr`] reproduces the pure-CSR
    /// engine. Formats are re-evaluated at every rebuild point (slack
    /// exhaustion, bulk deltas, shard rebalances) — never mid-patch.
    pub density_plan: DensityPlan,
    /// The cost-model planner ([`hnd_plan`]). When set (the default wires
    /// in [`Planner::shared`] — the lazily loaded per-host catalog, `None`
    /// until a calibration pass has run on this machine), every backend
    /// build plans the session from *measured* kernel rates: backend +
    /// shard count, lane-format thresholds at the measured break-even
    /// density, and the delta-vs-rebuild patch budget. Explicit
    /// configuration still wins — a pinned [`Self::shard_plan`] or a
    /// non-default [`Self::density_plan`] is honored verbatim — and with
    /// no planner the hand-tuned constants above serve unchanged.
    pub planner: Option<&'static Planner>,
    /// Planner gate: [`PlanMode::Static`] ignores [`Self::planner`] and
    /// pins the hand-tuned fallback constants (the `HND_PLAN=static`
    /// behavior, which the default picks up from the environment) — the
    /// A/B switch for benchmarking planned against static configuration.
    pub plan_mode: PlanMode,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            solver: SolverKind::Power,
            solver_opts: SolverOpts::default(),
            cache_capacity: 8,
            // A user answering 32 more items / an option gaining 256 more
            // picks between rebuilds covers a long stretch of trickle
            // traffic at a few extra bytes per slot.
            row_slack: 32,
            col_slack: 256,
            // ~1.5 MiB of retained edits per session at 24 bytes each —
            // bounds long-running sessions while covering any realistic
            // client catch-up window.
            history_retention: Some(65_536),
            shard_plan: None,
            density_plan: DensityPlan::default(),
            planner: Planner::shared(),
            plan_mode: PlanMode::from_env(),
        }
    }
}

impl EngineOpts {
    /// The planner consulted for this configuration: the wired planner,
    /// unless [`PlanMode::Static`] pins the fallback constants.
    fn active_planner(&self) -> Option<&'static Planner> {
        match self.plan_mode {
            PlanMode::Auto => self.planner,
            PlanMode::Static => None,
        }
    }

    /// Plans one session from the measured catalog. `None` (fall back to
    /// the hand-tuned constants) when no planner is active. Explicitly
    /// configured options are honored: a pinned shard plan keeps the PR-5
    /// activation logic, a non-default density plan overrides the measured
    /// break-evens.
    fn plan_session(&self, matrix: &ResponseMatrix) -> Option<PlanDecision> {
        let planner = self.active_planner()?;
        let shape = SessionShape::from_counts(&matrix.row_counts(), &matrix.col_counts());
        // The sharded backend only exists for the power solver, and a
        // pinned shard plan means the caller decides about sharding.
        let allow_sharded = self.shard_plan.is_none() && self.solver == SolverKind::Power;
        let mut decision = planner.plan(&shape, allow_sharded);
        if self.density_plan != DensityPlan::default() {
            decision.density_plan = self.density_plan;
        }
        Some(decision)
    }
}

/// The engine's kernel context: one contiguous pattern, or user-range
/// shards of it (see [`EngineOpts::shard_plan`]).
enum Backend {
    /// The single-shard fast path (`ResponseOps`, in-place patched; boxed
    /// — the hybrid kernel context is a wide struct and the enum would
    /// otherwise carry its size inline in every session slot).
    Single(Box<ResponseOps>),
    /// The sharded execution layer (`hnd-shard`).
    Sharded(Box<ShardedOps>),
}

impl Backend {
    /// Builds the backend for `matrix`. A pinned [`EngineOpts::shard_plan`]
    /// keeps the PR-5 activation logic; otherwise an active planner
    /// `decision` drives the backend choice, shard count, and lane-format
    /// thresholds from measured costs. With neither, the single backend on
    /// the configured density plan serves (the hand-tuned fallback).
    fn build(
        matrix: &ResponseMatrix,
        opts: &EngineOpts,
        decision: Option<&PlanDecision>,
    ) -> Backend {
        let density_plan = decision.map_or(opts.density_plan, |d| d.density_plan);
        if opts.solver == SolverKind::Power {
            // Explicit configuration outranks the planner.
            let plan = opts
                .shard_plan
                .or_else(|| decision.and_then(|d| d.shard_plan));
            if let Some(plan) = plan {
                let nnz: usize = matrix.row_counts().iter().sum();
                if plan.activates(matrix.n_users(), nnz) {
                    return Backend::Sharded(Box::new(ShardedOps::from_plan(
                        matrix,
                        &plan,
                        density_plan,
                        opts.row_slack,
                        opts.col_slack,
                    )));
                }
            }
        }
        Backend::Single(Box::new(ResponseOps::with_plan(
            matrix,
            opts.row_slack,
            opts.col_slack,
            density_plan,
        )))
    }

    /// Stored entries of the kernel context.
    fn nnz(&self) -> usize {
        match self {
            Backend::Single(ops) => ops.pattern().nnz(),
            Backend::Sharded(sops) => sops.nnz(),
        }
    }

    /// Per-format lane counts of the kernel context.
    fn format_counts(&self) -> FormatCounts {
        match self {
            Backend::Single(ops) => ops.format_counts(),
            Backend::Sharded(sops) => sops.format_counts(),
        }
    }
}

/// Counters describing how the engine has been serving (observability and
/// the no-rebuild test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Deltas patched into the kernel context in place.
    pub delta_applies: u64,
    /// Full kernel-context rebuilds (slack exhaustion or cold baselines).
    /// The initial build at construction is not counted.
    pub rebuilds: u64,
    /// Solves that started from a cached spectral state.
    pub warm_solves: u64,
    /// Solves that started cold.
    pub cold_solves: u64,
    /// Iterations of the most recent solve.
    pub last_iterations: usize,
    /// Solves served by the sharded backend.
    pub sharded_solves: u64,
    /// Shard-layout reshapes: single→sharded upgrades when a session grows
    /// past its plan's activation threshold, plus skew-triggered re-splits.
    pub shard_rebalances: u64,
    /// Individual shards rebuilt alone after slack exhaustion (the sharded
    /// analogue of `rebuilds`, which counts whole-context rebuilds).
    pub shard_rebuilds: u64,
    /// Per-format lane counts of the live kernel context (how much of this
    /// session the bitmap kernels serve). Sampled at [`RankingEngine::stats`]
    /// time; formats only change at rebuild points.
    pub formats: FormatCounts,
    /// Planner re-plans triggered by entry-count drift (the session grew
    /// or shrank 2× past the size its decision was computed for).
    pub plan_replans: u64,
    /// Cost-model-predicted nanoseconds for the patches applied (planner
    /// active only; integer nanos keep the counters `Eq`).
    pub predicted_patch_ns: u64,
    /// Measured nanoseconds for the same patches.
    pub actual_patch_ns: u64,
    /// Cost-model-predicted nanoseconds for the rebuilds performed.
    pub predicted_rebuild_ns: u64,
    /// Measured nanoseconds for the same rebuilds.
    pub actual_rebuild_ns: u64,
    /// Cost-model-predicted nanoseconds for the solves served.
    pub predicted_solve_ns: u64,
    /// Measured nanoseconds for the same solves.
    pub actual_solve_ns: u64,
    /// Certified-tier queries served from the stale ranking because the
    /// pending wave provably could not change the requested answer — no
    /// solve ran at all.
    pub skipped_solves: u64,
    /// Solves that stopped on a certified approximation target before the
    /// exact tolerance.
    pub early_terminations: u64,
    /// Estimated iterations saved by those early terminations, summed.
    pub iterations_saved: u64,
    /// WAL edits replayed on top of a binary snapshot to build this
    /// engine, when it was restored from the durable store (zero for an
    /// engine that never left memory) — the per-session replay cost the
    /// store's `snapshot_every` knob bounds.
    pub wal_replayed: u64,
}

impl EngineStats {
    /// Folds another engine's counters into this one (fleet aggregation:
    /// the manager sums retired engines' stats with the live ones for the
    /// unified metrics snapshot). Counters add; `last_iterations` keeps
    /// the max; lane formats merge.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.delta_applies += other.delta_applies;
        self.rebuilds += other.rebuilds;
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.last_iterations = self.last_iterations.max(other.last_iterations);
        self.sharded_solves += other.sharded_solves;
        self.shard_rebalances += other.shard_rebalances;
        self.shard_rebuilds += other.shard_rebuilds;
        self.formats = self.formats.merged(other.formats);
        self.plan_replans += other.plan_replans;
        self.predicted_patch_ns += other.predicted_patch_ns;
        self.actual_patch_ns += other.actual_patch_ns;
        self.predicted_rebuild_ns += other.predicted_rebuild_ns;
        self.actual_rebuild_ns += other.actual_rebuild_ns;
        self.predicted_solve_ns += other.predicted_solve_ns;
        self.actual_solve_ns += other.actual_solve_ns;
        self.skipped_solves += other.skipped_solves;
        self.early_terminations += other.early_terminations;
        self.iterations_saved += other.iterations_saved;
        self.wal_replayed += other.wal_replayed;
    }
}

/// An incremental ranking session over a fixed user/item roster.
pub struct RankingEngine {
    log: ResponseLog,
    solver: Box<dyn SpectralSolver>,
    opts: EngineOpts,
    /// Kernel context of `matrix` (single or sharded), patched in place
    /// across versions.
    backend: Backend,
    /// The snapshot matrix the backend corresponds to.
    matrix: ResponseMatrix,
    /// The version backend/`matrix` correspond to.
    prepared_version: u64,
    cache: WarmStartCache,
    stats: EngineStats,
    /// The cost-model decision the current backend was built under
    /// (`None` = hand-tuned fallback constants).
    decision: Option<PlanDecision>,
    /// Single-slot cache of the last approximate solve (see
    /// [`ApproxSolve`]); also refreshed by exact solves, which dominate it.
    approx: Option<ApproxSolve>,
    /// Calibration state of the delta-skip fast path.
    skip_rates: SkipRates,
    /// Telemetry recording handle installed by the serving layer while the
    /// engine is checked out (`None` outside a server or with telemetry
    /// off — every record site is one `Option` branch then).
    probe: Option<Probe>,
}

impl RankingEngine {
    /// Creates an engine over an empty roster.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn new(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
        opts: EngineOpts,
    ) -> Result<Self, ResponseError> {
        Self::from_log(ResponseLog::new(n_users, n_items, options_per_item)?, opts)
    }

    /// Creates an engine over a pre-filled log (e.g. a bulk-loaded
    /// dataset whose edits will now trickle in).
    pub fn from_log(mut log: ResponseLog, opts: EngineOpts) -> Result<Self, ResponseError> {
        let snapshot = log.snapshot();
        let decision = opts.plan_session(&snapshot.matrix);
        let backend = Backend::build(&snapshot.matrix, &opts, decision.as_ref());
        Ok(RankingEngine {
            log,
            solver: opts.solver.build(opts.solver_opts),
            backend,
            matrix: snapshot.matrix,
            prepared_version: snapshot.version,
            cache: WarmStartCache::new(opts.cache_capacity),
            stats: EngineStats::default(),
            decision,
            approx: None,
            skip_rates: SkipRates::default(),
            probe: None,
            opts,
        })
    }

    /// Installs (or clears) the serving layer's telemetry probe. The
    /// server attaches one per checkout; a probe-less engine records
    /// nothing.
    pub fn set_probe(&mut self, probe: Option<Probe>) {
        self.probe = probe;
    }

    /// Points the installed probe (if any) at the command about to
    /// execute, so solve-phase events carry its sequence number.
    pub fn set_probe_seq(&mut self, seq: u64) {
        if let Some(p) = &mut self.probe {
            p.set_seq(seq);
        }
    }

    /// The installed telemetry probe, if any.
    pub fn probe(&self) -> Option<&Probe> {
        self.probe.as_ref()
    }

    /// The cost-model decision the current backend runs under (`None`
    /// when the engine serves on the hand-tuned fallback constants).
    pub fn plan_decision(&self) -> Option<&PlanDecision> {
        self.decision.as_ref()
    }

    /// The engine's configuration.
    pub fn opts(&self) -> &EngineOpts {
        &self.opts
    }

    /// Serving counters (with the kernel context's current per-format lane
    /// counts sampled in).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            formats: self.backend.format_counts(),
            ..self.stats
        }
    }

    /// `(hits, misses)` of the warm-start cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The current log version.
    pub fn version(&self) -> u64 {
        self.log.version()
    }

    /// The engine's versioned edit ledger (the durable state: clients use
    /// it for [`ResponseLog::compact_range`] catch-up deltas).
    pub fn log(&self) -> &ResponseLog {
        &self.log
    }

    /// Tears the engine down to its durable state, dropping the kernel
    /// context and warm-start cache. The eviction path: a
    /// [`crate::SessionManager`] keeps only the returned log for idle
    /// sessions and rebuilds the engine from it on the next touch.
    pub fn into_log(self) -> ResponseLog {
        self.log
    }

    /// Stamps how many WAL edits a durable-store recovery replayed to
    /// produce this engine's log (surfaced as
    /// [`EngineStats::wal_replayed`]). Called by the restore paths right
    /// after [`Self::from_log`].
    pub fn record_wal_replay(&mut self, edits: u64) {
        self.stats.wal_replayed = edits;
    }

    /// The matrix of the latest prepared snapshot (advances on
    /// [`Self::current_ranking`] / [`Self::advance`], not on submit).
    pub fn matrix(&self) -> &ResponseMatrix {
        &self.matrix
    }

    /// Number of user-range shards serving this session (`1` = the
    /// single-shard fast path).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 1,
            Backend::Sharded(sops) => sops.shard_count(),
        }
    }

    /// `true` when the session is served by the sharded backend.
    pub fn is_sharded(&self) -> bool {
        matches!(self.backend, Backend::Sharded(_))
    }

    /// `true` when a cached spectral state exists to warm-start the next
    /// solve.
    pub fn has_warm_state(&self) -> bool {
        self.cache.latest().is_some()
    }

    /// `true` when the latest solve is current (submit-free since then).
    pub fn is_current(&self) -> bool {
        self.cache
            .latest()
            .is_some_and(|c| c.version == self.log.version())
    }

    /// Commits a batch of `(user, item, choice)` responses; returns the new
    /// version. Ranking work is deferred to [`Self::current_ranking`].
    ///
    /// # Errors
    /// Rejects out-of-roster user/item indices and out-of-range options —
    /// this is the client-input boundary, so malformed tuples surface as
    /// [`ResponseError`]s, never panics. Edits before the failing one stay
    /// committed (see [`ResponseLog::submit`]).
    pub fn submit_responses(
        &mut self,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Result<u64, ResponseError> {
        let (n_users, n_items) = (self.log.n_users(), self.log.n_items());
        for (user, item, choice) in responses {
            if user >= n_users || item >= n_items {
                return Err(ResponseError::IndexOutOfBounds {
                    user,
                    item,
                    n_users,
                    n_items,
                });
            }
            self.log.set(user, item, choice)?;
        }
        // Bound the catch-up history. If a submit-only flood pushes the
        // cutoff past the last advance, the next refresh simply becomes a
        // cold rebuild point (a delta that long would exceed the patch
        // budget and rebuild anyway).
        if let Some(keep) = self.opts.history_retention {
            if self.log.history_len() > keep {
                let cutoff = self.log.version().saturating_sub(keep as u64);
                self.log.truncate_history(cutoff);
            }
        }
        Ok(self.log.version())
    }

    /// Number of delta edits that touch at least one *sparse* (CSR) lane
    /// of the current kernel context — the edits whose patches shift a
    /// sorted prefix and burn slack. Edits landing entirely on bitmap
    /// lanes are O(1) bit flips with no slack accounting and must not
    /// count against the patch-vs-rebuild budget (a forced-bitmap session
    /// under heavy waves never needs a rebuild, however long the delta).
    fn sparse_edit_weight(&self, delta: &ResponseDelta) -> usize {
        let touches_sparse = |user: usize, edit: &hnd_response::ResponseEdit| {
            let (pattern, row) = match &self.backend {
                Backend::Single(ops) => (ops.pattern(), user),
                Backend::Sharded(sops) => {
                    let shard = &sops.shards()[sops.shard_of(user)];
                    (shard.pattern(), user - shard.range().start)
                }
            };
            if !pattern.row_is_bitmap(row) {
                return true;
            }
            [edit.from, edit.to].iter().flatten().any(|&option| {
                let col = self.matrix.one_hot_column(edit.item, option);
                !pattern.col_is_bitmap(col)
            })
        };
        delta
            .edits
            .iter()
            .filter(|e| touches_sparse(e.user, e))
            .count()
    }

    /// The delta-vs-rebuild cutoff: the planner's cost-derived budget when
    /// a decision is active, else the hand-tuned ~nnz/8 heuristic.
    fn patch_budget(&self) -> usize {
        self.decision
            .as_ref()
            .map_or_else(|| self.backend.nnz() / 8 + 16, |d| d.patch_budget)
    }

    /// Brings the kernel context up to the log head without solving:
    /// drains the pending delta and patches both the matrix and `ops` in
    /// place — `O(nnz(delta))`, no `O(mn)` snapshot clone — falling back
    /// to a rebuild on slack exhaustion. Idempotent when nothing changed.
    pub fn advance(&mut self) {
        if self.log.version() == self.prepared_version && self.log.pending_edits() == 0 {
            return;
        }
        let target_version = self.log.version();
        match self.log.drain_delta() {
            // Patching a sparse lane shifts the touched row/column prefix
            // per edit, so a bulk-sized delta costs more than the one
            // rebuild it avoids — fall through to the rebuild path for
            // those. Only sparse-lane edits count: bitmap flips are free.
            Some(delta)
                if delta.from_version == self.prepared_version
                    && self.sparse_edit_weight(&delta) <= self.patch_budget() =>
            {
                let matrix_ok = delta.is_empty() || self.matrix.apply_delta(&delta).is_ok();
                if !matrix_ok {
                    self.rebuild_from_log();
                } else if !delta.is_empty() {
                    let sparse_edits = self.sparse_edit_weight(&delta);
                    let started = Instant::now();
                    let patched = match &mut self.backend {
                        Backend::Single(ops) => ops.apply_delta(&self.matrix, &delta).is_ok(),
                        Backend::Sharded(sops) => {
                            // Slack exhaustion inside a shard is handled by
                            // the sharded layer (one shard rebuilds alone);
                            // only inconsistent deltas surface as errors.
                            // Accumulate the per-delta increment: the ops'
                            // own counter restarts at 0 whenever the whole
                            // backend is rebuilt, the engine stat must not.
                            let before = sops.rebuilt_shards();
                            let ok = sops.apply_delta(&self.matrix, &delta).is_ok();
                            self.stats.shard_rebuilds += sops.rebuilt_shards() - before;
                            ok
                        }
                    };
                    if patched {
                        let took = started.elapsed();
                        if let Some(p) = &self.probe {
                            let ns = took.as_nanos() as u64;
                            p.event(EventKind::Patch {
                                sparse_edits: sparse_edits as u32,
                                ns,
                            });
                            p.stage(Stage::Patch, ns);
                        }
                        self.observe_patch(sparse_edits, took);
                        self.stats.delta_applies += 1;
                        self.maybe_reshape();
                    } else {
                        // Slack exhausted (single backend) or inconsistent
                        // delta: rebuild the kernel context with fresh
                        // slack (the matrix is already current). The
                        // rebuild re-evaluates the plan decision and shard
                        // activation, so a session that grew past its
                        // threshold upgrades here too.
                        self.rebuild_backend();
                    }
                }
            }
            _ => self.rebuild_from_log(),
        }
        self.prepared_version = target_version;
    }

    /// Feeds one patch timing into the feedback loop (planner active and
    /// the model predicted nonzero work — unmatched actuals would skew the
    /// correction blend).
    fn observe_patch(&mut self, sparse_edits: usize, took: std::time::Duration) {
        let Some(planner) = self.opts.active_planner() else {
            return;
        };
        let Some(decision) = &self.decision else {
            return;
        };
        let predicted = (decision.predicted_patch_edit_ns * sparse_edits as f64) as u64;
        if predicted == 0 {
            return;
        }
        let actual = took.as_nanos() as u64;
        self.stats.predicted_patch_ns += predicted;
        self.stats.actual_patch_ns += actual;
        planner.observe(KernelClass::CsrPatch, predicted, actual);
    }

    /// Rebuilds the kernel context for the (already current) matrix with a
    /// fresh plan decision, recording rebuild feedback.
    fn rebuild_backend(&mut self) {
        self.decision = self.opts.plan_session(&self.matrix);
        let started = Instant::now();
        self.backend = Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
        let took = started.elapsed();
        self.stats.rebuilds += 1;
        if let Some(p) = &self.probe {
            let ns = took.as_nanos() as u64;
            p.event(EventKind::Rebuild { ns });
            p.stage(Stage::Rebuild, ns);
        }
        if let (Some(planner), Some(decision)) = (self.opts.active_planner(), &self.decision) {
            let predicted = decision.predicted_rebuild_ns as u64;
            if predicted > 0 {
                let actual = took.as_nanos() as u64;
                self.stats.predicted_rebuild_ns += predicted;
                self.stats.actual_rebuild_ns += actual;
                planner.observe(KernelClass::LaneRebuild, predicted, actual);
            }
        }
    }

    /// Re-evaluates the shard layout after a successful patch: a
    /// single-backend session that crossed its plan's activation threshold
    /// upgrades to sharded execution, and a sharded session whose delta
    /// traffic skewed the layout (or grew it past another shard's worth)
    /// re-splits. No-op without a plan.
    fn maybe_reshape(&mut self) {
        if self.opts.solver != SolverKind::Power {
            return;
        }
        match self.opts.shard_plan {
            Some(plan) => match &mut self.backend {
                Backend::Single(ops) => {
                    if plan.activates(self.matrix.n_users(), ops.pattern().nnz()) {
                        self.backend =
                            Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
                        self.stats.shard_rebalances += 1;
                    }
                }
                Backend::Sharded(sops) => {
                    if sops.needs_rebalance(&plan) {
                        sops.rebalance(&self.matrix, &plan);
                        self.stats.shard_rebalances += 1;
                    }
                }
            },
            // Planner-driven sessions re-plan when the entry count drifts
            // 2× past the size the decision was computed for; the backend
            // is only rebuilt when the decision materially changes (shard
            // count), so trickle growth never causes rebuild churn.
            None => {
                let Some(current) = &self.decision else {
                    return;
                };
                let nnz = self.backend.nnz();
                let drifted = nnz > current.planned_nnz.saturating_mul(2).max(16)
                    || nnz.saturating_mul(2) < current.planned_nnz;
                if !drifted {
                    return;
                }
                let fresh = self.opts.plan_session(&self.matrix);
                self.stats.plan_replans += 1;
                let new_shards = fresh.as_ref().map_or(1, |d| d.shards);
                if new_shards != self.shard_count() {
                    self.decision = fresh;
                    self.backend = Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
                    self.stats.shard_rebalances += 1;
                } else {
                    // Same layout: adopt the refreshed budgets/predictions
                    // without touching the kernel context.
                    self.decision = fresh;
                }
            }
        }
    }

    /// Cold re-baseline: re-materialize the matrix and kernel context
    /// (re-planning and re-evaluating shard activation for the new size).
    fn rebuild_from_log(&mut self) {
        self.matrix = self.log.to_matrix();
        self.rebuild_backend();
    }

    /// The ranking at the current version, solving only when necessary.
    ///
    /// Repeat calls at an unchanged version are pure cache hits. After new
    /// submissions the engine advances the kernel context incrementally and
    /// warm-starts from the nearest cached state.
    pub fn current_ranking(&mut self) -> Result<Ranking, RankError> {
        let version = self.log.version();
        if let Some(cached) = self.cache.get(version) {
            return Ok(cached.ranking.clone());
        }
        self.advance();
        let warm: Option<SolveState> = self.cache.latest().map(|c| c.state.clone());
        if let Some(p) = &self.probe {
            p.event(EventKind::SolveStart {
                warm: warm.is_some(),
            });
        }
        let started = Instant::now();
        let outcome = match &self.backend {
            Backend::Single(ops) => self
                .solver
                .solve_prepared(&self.matrix, ops, warm.as_ref())?,
            Backend::Sharded(sops) => {
                self.stats.sharded_solves += 1;
                hnd_shard::solve_power(&self.matrix, sops, &self.opts.solver_opts, warm.as_ref())?
            }
        };
        if let Some(p) = &self.probe {
            let ns = started.elapsed().as_nanos() as u64;
            p.event(EventKind::SolveEnd {
                iterations: outcome.ranking.iterations as u32,
                early_terminated: outcome.early_terminated,
                ns,
            });
            p.stage(Stage::Solve, ns);
        }
        // Feedback: only cold solves match the model's full-iteration
        // prediction (warm starts converge in a handful of steps and would
        // read as a spurious 10× over-prediction).
        if warm.is_none() {
            if let (Some(planner), Some(decision)) = (self.opts.active_planner(), &self.decision) {
                let predicted = decision.predicted_solve_ns as u64;
                if predicted > 0 {
                    let actual = started.elapsed().as_nanos() as u64;
                    self.stats.predicted_solve_ns += predicted;
                    self.stats.actual_solve_ns += actual;
                    planner.observe(KernelClass::Solve, predicted, actual);
                }
            }
        }
        if warm.is_some() {
            self.stats.warm_solves += 1;
        } else {
            self.stats.cold_solves += 1;
        }
        self.stats.last_iterations = outcome.ranking.iterations;
        self.cache.insert(CachedSolve {
            version,
            ranking: outcome.ranking.clone(),
            state: outcome.state,
        });
        // An exact solve dominates whatever the approx slot held: refresh
        // it (feeding the skip-path calibration on the way) so subsequent
        // certified queries skip or warm-start from the best data.
        let norm = unit_scores(&outcome.ranking.scores);
        self.observe_perturbation(version, &norm, self.opts.solver_opts.tol);
        let order = sorted_order(&norm);
        let m = norm.len();
        self.approx = Some(ApproxSolve {
            version,
            k: usize::MAX,
            certified: true,
            ranking: outcome.ranking.clone(),
            norm_scores: norm,
            order,
            tol: self.opts.solver_opts.tol,
            coupled_to: version,
            span: 0,
            edit_counts: vec![0.0; m],
        });
        Ok(outcome.ranking)
    }

    /// The best `k` users as `(user, score)` pairs, best first, at the
    /// default [`QueryTier::Certified`]. Ties broken by ascending user
    /// index (deterministic).
    pub fn top_k(&mut self, k: usize) -> Result<Vec<(usize, f64)>, RankError> {
        self.top_k_tier(k, QueryTier::default())
    }

    /// [`Self::top_k`] at an explicit tier.
    pub fn top_k_tier(
        &mut self,
        k: usize,
        tier: QueryTier,
    ) -> Result<Vec<(usize, f64)>, RankError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        match tier {
            QueryTier::Exact => {
                let ranking = self.current_ranking()?;
                Ok(head_of(&ranking, k))
            }
            QueryTier::Certified => {
                let version = self.log.version();
                // An exact solve at this version answers for free.
                if let Some(cached) = self.cache.get(version) {
                    let ranking = cached.ranking.clone();
                    return Ok(head_of(&ranking, k));
                }
                if let Some(head) = self.try_skip_top_k(k) {
                    return Ok(head);
                }
                let ranking =
                    self.solve_with_target(Target::TopK { k, margin: 0.0 }, None, k, true)?;
                Ok(head_of(&ranking, k))
            }
            QueryTier::Coarse => {
                let ranking = self.solve_with_target(
                    Target::TopK { k, margin: 0.0 },
                    Some(COARSE_MAX_ITER),
                    k,
                    false,
                )?;
                Ok(head_of(&ranking, k))
            }
        }
    }

    /// `user`'s current rank (0 = best), default [`QueryTier::Certified`].
    /// Ties rank the lower user index first (deterministic).
    pub fn rank_of(&mut self, user: usize) -> Result<usize, RankError> {
        self.rank_of_tier(user, QueryTier::default())
    }

    /// [`Self::rank_of`] at an explicit tier.
    pub fn rank_of_tier(&mut self, user: usize, tier: QueryTier) -> Result<usize, RankError> {
        let m = self.log.n_users();
        if user >= m {
            return Err(RankError::InvalidInput(format!(
                "rank_of: user {user} outside roster of {m}"
            )));
        }
        let ranking = match tier {
            QueryTier::Exact => self.current_ranking()?,
            QueryTier::Certified => {
                let version = self.log.version();
                if let Some(cached) = self.cache.get(version) {
                    cached.ranking.clone()
                } else {
                    let tol = self.opts.solver_opts.tol;
                    self.solve_with_target(Target::RankStable { tol }, None, usize::MAX, true)?
                }
            }
            QueryTier::Coarse => {
                let tol = self.opts.solver_opts.tol;
                self.solve_with_target(
                    Target::RankStable { tol },
                    Some(COARSE_MAX_ITER),
                    usize::MAX,
                    false,
                )?
            }
        };
        Ok(rank_position(&ranking.scores, user))
    }

    /// A solve honoring an approximation target, warm-started from the
    /// freshest state available (approx slot or exact cache). The result
    /// lands in the approx slot only — the exact cache never holds an
    /// early-terminated solution.
    fn solve_with_target(
        &mut self,
        target: Target,
        iter_cap: Option<usize>,
        cert_k: usize,
        certified: bool,
    ) -> Result<Ranking, RankError> {
        self.advance();
        let version = self.prepared_version;
        let warm: Option<SolveState> = {
            let exact = self.cache.latest();
            match (&self.approx, exact) {
                (Some(a), Some(c)) if a.version > c.version => {
                    Some(SolveState::from_scores(a.ranking.scores.clone()))
                }
                (Some(a), None) => Some(SolveState::from_scores(a.ranking.scores.clone())),
                (_, Some(c)) => Some(c.state.clone()),
                (None, None) => None,
            }
        };
        let mut solver_opts = self.opts.solver_opts;
        solver_opts.target = target;
        if certified {
            // Certified solves buy skip headroom: the skip path's noise
            // band scales with the cached solve's tolerance, and at the
            // user tolerance that band rivals real top-k margins on large
            // rosters. A tighter solve costs ln(1/factor) extra iterations
            // once; every skip it unlocks repays that many times over.
            solver_opts.tol *= CERT_TOL_FACTOR;
        }
        if let Some(cap) = iter_cap {
            solver_opts.max_iter = solver_opts.max_iter.min(cap);
        }
        if let Some(p) = &self.probe {
            p.event(EventKind::SolveStart {
                warm: warm.is_some(),
            });
        }
        let started = Instant::now();
        let outcome = match &self.backend {
            Backend::Single(ops) => {
                let solver = self.opts.solver.build(solver_opts);
                solver.solve_prepared(&self.matrix, ops, warm.as_ref())?
            }
            Backend::Sharded(sops) => {
                self.stats.sharded_solves += 1;
                hnd_shard::solve_power(&self.matrix, sops, &solver_opts, warm.as_ref())?
            }
        };
        if let Some(p) = &self.probe {
            let ns = started.elapsed().as_nanos() as u64;
            p.event(EventKind::SolveEnd {
                iterations: outcome.ranking.iterations as u32,
                early_terminated: outcome.early_terminated,
                ns,
            });
            p.stage(Stage::Solve, ns);
        }
        if warm.is_some() {
            self.stats.warm_solves += 1;
        } else {
            self.stats.cold_solves += 1;
        }
        self.stats.last_iterations = outcome.ranking.iterations;
        if outcome.early_terminated {
            self.stats.early_terminations += 1;
            self.stats.iterations_saved += outcome.iterations_saved as u64;
        }
        // The resolution of this solve's scores: an early-terminated solve
        // stopped at its *certificate's* error envelope, not the requested
        // tolerance — recording the requested tol there would under-state
        // the noise band of later skip decisions read off these scores.
        let achieved_tol = outcome.error_bound.unwrap_or(solver_opts.tol);
        let norm = unit_scores(&outcome.ranking.scores);
        self.observe_perturbation(version, &norm, achieved_tol);
        let order = sorted_order(&norm);
        let m = norm.len();
        self.approx = Some(ApproxSolve {
            version,
            k: cert_k,
            certified,
            ranking: outcome.ranking.clone(),
            norm_scores: norm,
            order,
            tol: achieved_tol,
            coupled_to: version,
            span: 0,
            edit_counts: vec![0.0; m],
        });
        Ok(outcome.ranking)
    }

    /// The delta-skip fast path: serve the cached certified ranking's head
    /// without solving when the pending wave provably cannot change it.
    ///
    /// Requirements, all of which fail safe toward solving:
    /// * a certified approx-slot entry covering at least `k`;
    /// * calibrated influence rates (never skips before the first
    ///   observed wave→perturbation measurement);
    /// * the edit ledger from the cached version to head (truncated
    ///   history falls through to a solve), no wider than
    ///   [`SKIP_SPAN_MAX`] edits;
    /// * an active cost model, if any, pricing the skip evaluation as
    ///   worthwhile ([`PlanDecision::skip_profitable`]);
    /// * **set stability**: every head member's score, lowered by its
    ///   worst-case wave perturbation (its authored edits priced at the
    ///   direct rate, plus the per-edit global ripple), stays above every
    ///   outsider's score raised by its own — so no outsider can provably
    ///   enter the top-k and no member leave it. The binding pair is
    ///   usually the k/k+1 boundary, but the full sweep also catches a
    ///   heavily-editing outsider leapfrogging from far below. Order
    ///   *within* the served head is the stale certified order; its
    ///   pairwise inversions vs the true head are bounded by the same
    ///   per-user movement bounds. A skip serves the cached,
    ///   already-oriented ranking without solving, so — unlike the
    ///   in-solver certificate, whose iterate's sign is still arbitrary —
    ///   no re-orientation can surface the tail.
    fn try_skip_top_k(&mut self, k: usize) -> Option<Vec<(usize, f64)>> {
        let v_now = self.log.version();
        let prev = self.approx.as_ref()?;
        if !prev.certified || (prev.k != usize::MAX && prev.k < k) {
            return None;
        }
        if prev.version == v_now {
            // Nothing pending: a plain reuse, not a counted skip.
            return Some(head_from(prev, k));
        }
        let Some(direct) = self.skip_rates.direct else {
            if let Some(p) = &self.probe {
                p.event(EventKind::SkipRefuse {
                    reason: SkipRefusal::Uncalibrated,
                });
            }
            return None;
        };
        // A never-observed ripple channel means off-editor movement stayed
        // under the solver noise band, which the decision budgets for.
        let ripple = self.skip_rates.ripple.unwrap_or(0.0);
        if k >= prev.norm_scores.len() {
            return None;
        }
        // Extend the accumulated exposure by just the edits that arrived
        // since the last evaluation — every query re-prices the skip, and
        // recomputing the full span each time would cost O(span + m).
        let coupled_to = prev.coupled_to;
        let (inc, new_count) = {
            let new_edits = self.log.history_range(coupled_to, v_now).ok()?;
            if new_edits.is_empty() {
                (None, 0)
            } else {
                (
                    Some(wave_edit_counts(new_edits, prev.norm_scores.len())),
                    new_edits.len(),
                )
            }
        };
        let prev = self.approx.as_mut()?;
        prev.coupled_to = v_now;
        prev.span += new_count;
        if let Some(inc_counts) = inc {
            for (acc, d) in prev.edit_counts.iter_mut().zip(&inc_counts) {
                *acc += d;
            }
        }
        if prev.span > SKIP_SPAN_MAX {
            if let Some(p) = &self.probe {
                p.event(EventKind::SkipRefuse {
                    reason: SkipRefusal::SpanOverflow,
                });
            }
            return None;
        }
        if let Some(decision) = &self.decision {
            if !decision.skip_profitable(prev.span) {
                if let Some(p) = &self.probe {
                    p.event(EventKind::SkipRefuse {
                        reason: SkipRefusal::Unprofitable,
                    });
                }
                return None;
            }
        }
        // Two terms price the wave. Editors get a per-entry bound — an
        // edit moves its own author's score by orders of magnitude more
        // than anyone else's, and an author close enough to the boundary
        // genuinely can cross it. Everyone else is priced collectively
        // through the *margin*: the ripple rate is the observed per-edit
        // movement of the head-vs-rest margin itself, so it is charged
        // once against the margin, not once per endpoint (per-entry
        // pricing would double the certified cost of a boundary whose
        // two sides move together).
        let bound = |u: usize| SKIP_SAFETY * direct * prev.edit_counts[u];
        let head_floor = prev.order[..k]
            .iter()
            .map(|&u| prev.norm_scores[u] - bound(u))
            .fold(f64::INFINITY, f64::min);
        let outside_ceil = prev.order[k..]
            .iter()
            .map(|&u| prev.norm_scores[u] + bound(u))
            .fold(f64::NEG_INFINITY, f64::max);
        let ripple_margin = SKIP_SAFETY * ripple * prev.span as f64;
        // The cached scores themselves carry solver-tolerance noise;
        // a decision inside that noise band is no decision.
        if head_floor - outside_ceil <= ripple_margin + SKIP_NOISE * prev.tol {
            if let Some(p) = &self.probe {
                p.event(EventKind::SkipRefuse {
                    reason: SkipRefusal::MarginTooThin,
                });
            }
            return None;
        }
        let head = head_from(prev, k);
        self.stats.skipped_solves += 1;
        if let Some(p) = &self.probe {
            p.event(EventKind::SkipServe { k: k as u32 });
        }
        Some(head)
    }

    /// Skip-path calibration: compare this solve's normalized scores with
    /// the previous certified snapshot and record the worst observed
    /// influence as running maxima, per channel (on score *differences*,
    /// not absolute scores: every edit shifts the whole cumsum score
    /// vector by a common mode that cancels between entries and reorders
    /// nobody). An adjacent pair with an editor endpoint calibrates the
    /// direct rate (gap movement per authored edit). The ripple rate is
    /// the per-edit movement of the editor-free *margin* at the
    /// snapshot's certified boundary — exactly the scalar the skip
    /// certificate spends — because near-boundary entries ride the same
    /// global eigenvector ripple and their margin moves far less than
    /// the sum of its endpoints' movements. A snapshot without a single
    /// boundary (`k == usize::MAX`) calibrates on the worst editor-free
    /// adjacent-gap movement roster-wide instead, which upper-bounds any
    /// single margin's movement. Mixing the channels would let the
    /// editor's own large movement inflate the everyone-else bound by
    /// orders of magnitude. Runs on every solve with a usable
    /// predecessor; every such observation decays the old rate by
    /// [`RATE_DECAY`] (taking the max with any fresh above-noise
    /// observation), so the bound tracks the recent worst case instead
    /// of ratcheting up forever on one outlier wave — in particular a
    /// one-off roster-wide fallback calibration relaxes back to margin
    /// scale once finite-boundary solves resume.
    fn observe_perturbation(&mut self, version: u64, new_norm: &[f64], tol_now: f64) {
        let Some(prev) = &self.approx else {
            return;
        };
        if !prev.certified || prev.version >= version || prev.norm_scores.len() != new_norm.len() {
            return;
        }
        let Ok(edits) = self.log.history_range(prev.version, version) else {
            return;
        };
        if edits.is_empty() || new_norm.len() < 2 {
            return;
        }
        let n_edits = edits.len() as f64;
        let edit_counts = wave_edit_counts(edits, new_norm.len());
        let dot: f64 = new_norm
            .iter()
            .zip(&prev.norm_scores)
            .map(|(a, b)| a * b)
            .sum();
        let sign = if dot < 0.0 { -1.0 } else { 1.0 };
        let order = &prev.order;
        // Movements at the solver-tolerance scale of the two compared
        // solves are convergence noise, not wave influence — pricing them
        // as influence would inflate the rates until nothing ever skips.
        let noise_floor = 2.0 * (prev.tol + tol_now);
        let mut direct_max: Option<f64> = None;
        let mut ripple_max: Option<f64> = None;
        if prev.k != usize::MAX && prev.k < order.len() {
            // Editor-free margin movement at the snapshot's boundary: the
            // min head score minus the max outside score, on the old and
            // new solves over the same entries, editors excluded (their
            // movement belongs to the direct channel).
            let mut old_head = f64::INFINITY;
            let mut new_head = f64::INFINITY;
            let mut old_out = f64::NEG_INFINITY;
            let mut new_out = f64::NEG_INFINITY;
            for (pos, &u) in order.iter().enumerate() {
                if edit_counts[u] > 0.0 {
                    continue;
                }
                if pos < prev.k {
                    old_head = old_head.min(prev.norm_scores[u]);
                    new_head = new_head.min(sign * new_norm[u]);
                } else {
                    old_out = old_out.max(prev.norm_scores[u]);
                    new_out = new_out.max(sign * new_norm[u]);
                }
            }
            if old_head.is_finite() && old_out.is_finite() {
                let moved = ((new_head - new_out) - (old_head - old_out)).abs();
                if moved > noise_floor {
                    ripple_max = Some(moved / n_edits);
                }
            }
        }
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let g_old = prev.norm_scores[a] - prev.norm_scores[b];
            let g_new = sign * (new_norm[a] - new_norm[b]);
            let moved = (g_new - g_old).abs();
            if moved <= noise_floor {
                continue;
            }
            let d_pair = edit_counts[a] + edit_counts[b];
            if d_pair > 0.0 {
                let rate = moved / d_pair;
                direct_max = Some(direct_max.map_or(rate, |m| m.max(rate)));
            } else if prev.k == usize::MAX && self.skip_rates.ripple.is_none() {
                // Roster-wide fallback: a seed for a never-calibrated
                // ripple channel only. It upper-bounds any one margin's
                // movement — often by an order of magnitude — so once
                // genuine margin observations exist, letting an exact
                // (boundary-less) solve splice this bound back in would
                // replace measured physics with pessimism and stall the
                // skip path until the rate decayed back down.
                let rate = moved / n_edits;
                ripple_max = Some(ripple_max.map_or(rate, |m| m.max(rate)));
            }
        }
        // Decay on every observation opportunity, not only when a fresh
        // above-noise observation arrives. A wave whose movement stayed
        // under the noise floor is itself evidence the rate is at or
        // above the recent worst case, so letting it relax the bound is
        // sound — and without it a single pessimistic calibration (the
        // roster-wide `k == MAX` fallback is an upper bound on any one
        // margin, often by an order of magnitude) would pin the skip
        // path shut forever: a refusal regime produces solves whose
        // margin movement is sub-noise, which under observation-gated
        // decay would never release the rate that caused the refusals.
        let relaxed = |rate: Option<f64>, observed: Option<f64>| match (rate, observed) {
            (None, obs) => obs.map(|o| o.max(1e-12)),
            (Some(r), None) => Some((r * RATE_DECAY).max(1e-12)),
            (Some(r), Some(o)) => Some(o.max(1e-12).max(r * RATE_DECAY)),
        };
        self.skip_rates.direct = relaxed(self.skip_rates.direct, direct_max);
        self.skip_rates.ripple = relaxed(self.skip_rates.ripple, ripple_max);
    }

    /// Seeds the cache with an externally computed solution for the
    /// *prepared* version (the batched cold-refresh path of the session
    /// manager: solved via `rank_many`, state recovered from the scores —
    /// valid because every solver converges up to sign).
    pub fn seed_solution(&mut self, ranking: Ranking) {
        let state = SolveState::from_scores(ranking.scores.clone());
        self.cache.insert(CachedSolve {
            version: self.prepared_version,
            ranking,
            state,
        });
    }
}

/// Unit-L2 copy of a score vector (the coordinate system of the skip
/// path's perturbation bounds — raw solver scores are unit-norm only up
/// to the cumsum map).
fn unit_scores(scores: &[f64]) -> Vec<f64> {
    let mut out = scores.to_vec();
    hnd_linalg::vector::normalize(&mut out);
    out
}

/// Indices sorted by descending score, ascending index on ties.
fn sorted_order(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Per-user authored-edit counts for a wave: how many of the wave's
/// edits each user wrote themselves. The direct channel of the skip
/// bound prices these; everyone else is covered by the per-edit ripple
/// rate, which needs no per-user bookkeeping.
fn wave_edit_counts(edits: &[ResponseEdit], m: usize) -> Vec<f64> {
    let mut counts = vec![0.0; m];
    for edit in edits {
        counts[edit.user] += 1.0;
    }
    counts
}

/// The best `min(k, m)` users of a ranking as `(user, score)` pairs.
/// Head of a cached approximate solve read off its precomputed order —
/// the serving fast path must not pay an O(m log m) re-sort per query.
/// (`order` was sorted on the unit-normalized scores; normalization is a
/// positive scaling, so the order and tie-breaks match [`head_of`] on
/// the raw scores exactly.)
fn head_from(prev: &ApproxSolve, k: usize) -> Vec<(usize, f64)> {
    prev.order
        .iter()
        .take(k)
        .map(|&u| (u, prev.ranking.scores[u]))
        .collect()
}

fn head_of(ranking: &Ranking, k: usize) -> Vec<(usize, f64)> {
    sorted_order(&ranking.scores)
        .into_iter()
        .take(k)
        .map(|u| (u, ranking.scores[u]))
        .collect()
}

/// `user`'s position under the same descending-score, ascending-index
/// order as [`sorted_order`].
fn rank_position(scores: &[f64], user: usize) -> usize {
    let mine = scores[user];
    scores
        .iter()
        .enumerate()
        .filter(|&(u, &s)| s > mine || (s == mine && u < user))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine() -> RankingEngine {
        RankingEngine::new(
            4,
            3,
            &[2, 2, 2],
            EngineOpts {
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn submit_then_rank_then_cache_hit() {
        let mut engine = tiny_engine();
        engine
            .submit_responses([
                (0, 0, Some(0)),
                (0, 1, Some(0)),
                (1, 0, Some(0)),
                (1, 1, Some(1)),
                (2, 0, Some(1)),
                (2, 1, Some(1)),
                (3, 2, Some(1)),
            ])
            .unwrap();
        let first = engine.current_ranking().unwrap();
        assert_eq!(first.scores.len(), 4);
        let again = engine.current_ranking().unwrap();
        assert_eq!(first.scores, again.scores);
        let (hits, _) = engine.cache_stats();
        assert_eq!(hits, 1, "second call must be a cache hit");
        assert_eq!(engine.stats().cold_solves, 1);
    }

    #[test]
    fn incremental_edits_use_delta_and_warm_path() {
        let mut engine = tiny_engine();
        engine
            .submit_responses([
                (0, 0, Some(0)),
                (1, 0, Some(0)),
                (2, 0, Some(1)),
                (3, 0, Some(1)),
            ])
            .unwrap();
        engine.current_ranking().unwrap();
        // Trickle in three more answers.
        engine
            .submit_responses([(0, 1, Some(0)), (1, 1, Some(1)), (2, 2, Some(0))])
            .unwrap();
        engine.current_ranking().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.rebuilds, 0, "deltas must patch in place");
        // Both the initial bulk load and the trickle ride the delta path.
        assert_eq!(stats.delta_applies, 2);
        assert_eq!(stats.warm_solves, 1);
        assert_eq!(stats.cold_solves, 1);
    }

    #[test]
    fn slack_exhaustion_falls_back_to_rebuild() {
        let mut engine = RankingEngine::new(
            3,
            2,
            &[2, 2],
            EngineOpts {
                row_slack: 0,
                col_slack: 0,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit_responses([(0, 0, Some(0))]).unwrap();
        engine.current_ranking().unwrap();
        // Zero slack: adding an answer cannot fit in place.
        engine.submit_responses([(1, 0, Some(0))]).unwrap();
        engine.current_ranking().unwrap();
        assert!(engine.stats().rebuilds >= 1);
        // Still correct: the served ranking matches a cold engine's.
        let mut cold = RankingEngine::new(3, 2, &[2, 2], *engine.opts()).unwrap();
        cold.submit_responses([(0, 0, Some(0)), (1, 0, Some(0))])
            .unwrap();
        let a = engine.current_ranking().unwrap();
        let b = cold.current_ranking().unwrap();
        assert_eq!(a.order_best_to_worst(), b.order_best_to_worst());
    }

    #[test]
    fn history_retention_bounds_submit_only_sessions() {
        // Regression: truncation used to be clamped to the last snapshot
        // version, which only advances on ranking reads — a submit-only
        // session grew its history forever despite the configured bound.
        let mut engine = RankingEngine::new(
            4,
            3,
            &[2, 2, 2],
            EngineOpts {
                history_retention: Some(8),
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        for round in 0..50u16 {
            engine
                .submit_responses([(0, 0, Some(round % 2)), (1, 1, Some((round + 1) % 2))])
                .unwrap();
        }
        assert_eq!(engine.version(), 100, "every write committed");
        assert_eq!(engine.log().history_len(), 8, "history stays bounded");

        // The truncated log still serves correctly (the next refresh is a
        // cold rebuild point, not a lie): same ranking as a fresh replica.
        let served = engine.current_ranking().unwrap();
        let mut replica = RankingEngine::new(4, 3, &[2, 2, 2], *engine.opts()).unwrap();
        for round in 0..50u16 {
            replica
                .submit_responses([(0, 0, Some(round % 2)), (1, 1, Some((round + 1) % 2))])
                .unwrap();
        }
        assert_eq!(served.scores, replica.current_ranking().unwrap().scores);
    }

    #[test]
    fn sharded_backend_agrees_with_single_and_counts_solves() {
        let mut opts = EngineOpts {
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let responses: Vec<(usize, usize, Option<u16>)> = (0..12)
            .flat_map(|j| (0..11).map(move |i| (j, i, Some(u16::from(j > i)))))
            .collect();
        let mut single = RankingEngine::new(12, 11, &[2; 11], opts).unwrap();
        single.submit_responses(responses.clone()).unwrap();
        let want = single.current_ranking().unwrap();

        opts.shard_plan = Some(hnd_shard::ShardPlan {
            min_users: 4, // activate immediately for this roster
            ..hnd_shard::ShardPlan::exactly(3)
        });
        let mut sharded = RankingEngine::new(12, 11, &[2; 11], opts).unwrap();
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 3);
        sharded.submit_responses(responses).unwrap();
        let got = sharded.current_ranking().unwrap();
        assert_eq!(got.order_best_to_worst(), want.order_best_to_worst());
        for (a, b) in got.scores.iter().zip(&want.scores) {
            assert!((a - b).abs() <= 1e-12);
        }
        assert_eq!(sharded.stats().sharded_solves, 1);
        // Trickle an edit: the sharded delta path serves it (the bulk load
        // above legitimately rebuilt — it exceeds the patch budget).
        let rebuilds_after_load = sharded.stats().rebuilds;
        sharded.submit_responses([(0, 10, Some(1))]).unwrap();
        sharded.current_ranking().unwrap();
        assert_eq!(sharded.stats().sharded_solves, 2);
        assert_eq!(sharded.stats().rebuilds, rebuilds_after_load);
        assert_eq!(sharded.stats().delta_applies, 1);
    }

    #[test]
    fn session_growth_upgrades_to_sharded_backend() {
        let opts = EngineOpts {
            shard_plan: Some(hnd_shard::ShardPlan {
                min_users: usize::MAX, // activate on entry count only
                min_nnz: 20,
                target_shard_nnz: 10,
                min_shards: 2,
                max_shards: 4,
                ..Default::default()
            }),
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = RankingEngine::new(10, 6, &[2; 6], opts).unwrap();
        assert!(!engine.is_sharded(), "small session starts single-shard");
        engine
            .submit_responses((0..10).map(|u| (u, 0, Some(0))))
            .unwrap();
        engine.current_ranking().unwrap();
        assert!(!engine.is_sharded(), "10 entries stay below the threshold");
        // Grow past min_nnz: the next advance upgrades the backend.
        engine
            .submit_responses((0..10).flat_map(|u| [(u, 1, Some(1)), (u, 2, Some(0))]))
            .unwrap();
        let upgraded = engine.current_ranking().unwrap();
        assert!(engine.is_sharded(), "growth past min_nnz upgrades");
        assert!(engine.shard_count() >= 2);
        assert!(engine.stats().shard_rebalances >= 1 || engine.stats().rebuilds >= 1);
        // Still serves the same ranking as a never-sharded engine.
        let mut plain = RankingEngine::new(
            10,
            6,
            &[2; 6],
            EngineOpts {
                shard_plan: None,
                ..opts
            },
        )
        .unwrap();
        plain
            .submit_responses((0..10).map(|u| (u, 0, Some(0))))
            .unwrap();
        plain
            .submit_responses((0..10).flat_map(|u| [(u, 1, Some(1)), (u, 2, Some(0))]))
            .unwrap();
        let want = plain.current_ranking().unwrap();
        assert_eq!(upgraded.order_best_to_worst(), want.order_best_to_worst());
    }

    #[test]
    fn bitmap_lanes_absorb_deltas_without_rebuilds() {
        // Forced-bitmap layout with ZERO slack: every edit is an O(1) bit
        // flip, so a long trickle stream must never fall back to a kernel
        // rebuild — the hybrid engine's core serving guarantee. (The same
        // stream under forced CSR with zero slack rebuilds immediately.)
        let mk = |plan: DensityPlan| {
            RankingEngine::new(
                6,
                4,
                &[2; 4],
                EngineOpts {
                    row_slack: 0,
                    col_slack: 0,
                    density_plan: plan,
                    solver_opts: SolverOpts {
                        orient: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut bitmap = mk(DensityPlan::force_bitmap());
        let mut csr = mk(DensityPlan::force_csr());
        bitmap
            .submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        csr.submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        let a = bitmap.current_ranking().unwrap();
        let b = csr.current_ranking().unwrap();
        for round in 0..10u16 {
            let wave = [
                (usize::from(round % 6), 2, Some(round % 2)),
                (
                    usize::from((round + 3) % 6),
                    3,
                    (round % 3 > 0).then_some(0),
                ),
            ];
            bitmap.submit_responses(wave).unwrap();
            csr.submit_responses(wave).unwrap();
            let a = bitmap.current_ranking().unwrap();
            let b = csr.current_ranking().unwrap();
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert!((x - y).abs() <= 1e-12, "hybrid ≡ CSR serving");
            }
        }
        assert_eq!(a.scores.len(), b.scores.len());
        let stats = bitmap.stats();
        assert_eq!(stats.rebuilds, 0, "bit flips never exhaust capacity");
        // Only waves with a net effect patch (repeat writes of the same
        // choice commit no edits), but several certainly do.
        assert!(stats.delta_applies >= 5, "waves ride the delta path");
        assert_eq!(stats.formats.sparse_rows, 0, "forced-bitmap layout");
        assert_eq!(stats.formats.bitmap_rows, 6);
        assert_eq!(stats.formats.bitmap_cols, 8);
        assert!(
            csr.stats().rebuilds > 0,
            "zero-slack CSR control must rebuild"
        );
    }

    #[test]
    fn bitmap_edits_are_excluded_from_the_patch_budget() {
        // Regression (PR 6): the delta-vs-rebuild cutoff used to count
        // every edit, including O(1) bitmap bit flips that burn no slack —
        // so a forced-bitmap session under heavy waves hit the ~nnz/8
        // budget and rebuilt for nothing. Bitmap-lane edits are now
        // weightless: however heavy the wave, rebuilds stay at zero.
        let mut engine = RankingEngine::new(
            8,
            6,
            &[2; 6],
            EngineOpts {
                row_slack: 0,
                col_slack: 0,
                density_plan: DensityPlan::force_bitmap(),
                planner: None, // the fallback budget path is under test
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Seed a few entries, then rank so the baseline is prepared.
        engine
            .submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        engine.current_ranking().unwrap();
        let nnz = engine.matrix().row_counts().iter().sum::<usize>();
        for wave in 0..6u16 {
            // Each wave flips far more edits than the old budget
            // (nnz/8 + 16 ≈ 16) would ever admit.
            let edits: Vec<(usize, usize, Option<u16>)> = (0..8)
                .flat_map(|u| {
                    (0..6).map(move |i| {
                        (
                            u,
                            i,
                            (!(u + i + wave as usize).is_multiple_of(3))
                                .then_some(((u + i + wave as usize) % 2) as u16),
                        )
                    })
                })
                .collect();
            assert!(edits.len() > nnz / 8 + 16, "waves must be budget-heavy");
            engine.submit_responses(edits).unwrap();
            engine.current_ranking().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.rebuilds, 0, "bitmap flips never trip the budget");
        assert!(stats.delta_applies >= 6, "every wave rides the delta path");
    }

    #[test]
    fn planner_decisions_drive_the_engine() {
        use hnd_plan::{calibrate, CalibrationOpts};
        use std::sync::OnceLock;
        static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
        let planner =
            *PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())));
        let opts = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = RankingEngine::new(20, 8, &[2; 8], opts).unwrap();
        let decision = *engine.plan_decision().expect("planner active");
        assert!(decision.patch_budget >= 16);
        assert_eq!(decision.shards, 1, "tiny roster stays single backend");
        engine
            .submit_responses((0..20).map(|u| (u, u % 8, Some(0))))
            .unwrap();
        let planned = engine.current_ranking().unwrap();

        // Identical results on the static fallback path.
        let mut fallback = RankingEngine::new(
            20,
            8,
            &[2; 8],
            EngineOpts {
                plan_mode: PlanMode::Static,
                ..opts
            },
        )
        .unwrap();
        assert!(
            fallback.plan_decision().is_none(),
            "Static mode pins the hand-tuned constants"
        );
        fallback
            .submit_responses((0..20).map(|u| (u, u % 8, Some(0))))
            .unwrap();
        let pinned = fallback.current_ranking().unwrap();
        for (a, b) in planned.scores.iter().zip(&pinned.scores) {
            assert!((a - b).abs() <= 1e-12, "planned ≡ static serving");
        }

        // Solve feedback reached the stats and the planner.
        let stats = engine.stats();
        assert!(stats.predicted_solve_ns > 0);
        assert!(stats.actual_solve_ns > 0);
        assert!(planner.drift()[KernelClass::Solve.index()].is_some());
    }

    #[test]
    fn pinned_options_outrank_the_planner() {
        use hnd_plan::{calibrate, CalibrationOpts};
        use std::sync::OnceLock;
        static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
        let planner =
            *PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())));
        // A pinned shard plan keeps PR-5 activation even with a planner.
        let opts = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            shard_plan: Some(hnd_shard::ShardPlan {
                min_users: 4,
                ..hnd_shard::ShardPlan::exactly(3)
            }),
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let engine = RankingEngine::new(12, 5, &[2; 5], opts).unwrap();
        assert!(engine.is_sharded(), "pinned plan activates as configured");
        assert_eq!(engine.shard_count(), 3, "pinned shard count is honored");
        // A non-default density plan overrides the measured break-evens.
        let forced = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            density_plan: DensityPlan::force_csr(),
            shard_plan: None,
            ..opts
        };
        let engine = RankingEngine::new(12, 5, &[2; 5], forced).unwrap();
        let decision = engine.plan_decision().expect("planner still consulted");
        assert_eq!(
            decision.density_plan,
            DensityPlan::force_csr(),
            "explicit density plan wins over the measured thresholds"
        );
    }

    #[test]
    fn version_tracks_log() {
        let mut engine = tiny_engine();
        assert_eq!(engine.version(), 0);
        engine.submit_responses([(0, 0, Some(0))]).unwrap();
        assert_eq!(engine.version(), 1);
        assert!(!engine.is_current());
        engine.current_ranking().unwrap();
        assert!(engine.is_current());
    }
}
