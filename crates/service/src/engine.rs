//! The incremental [`RankingEngine`]: one session's solve path.
//!
//! The engine owns the four pieces the incremental pipeline threads
//! together — the versioned [`ResponseLog`], the in-place-patched kernel
//! context ([`ResponseOps`]), the unified solver
//! ([`SpectralSolver`](hnd_core::SpectralSolver)), and the version-keyed
//! [`WarmStartCache`] — and exposes the two-call serving API:
//! [`RankingEngine::submit_responses`] → [`RankingEngine::current_ranking`].
//!
//! A `current_ranking` call at an already-solved version is a cache hit
//! (no numerics at all). Otherwise the engine drains the log's delta,
//! patches the kernel context in `O(nnz(delta))` (falling back to a
//! slack-capacity rebuild only when a row/column span is exhausted), and
//! warm-starts the solver from the nearest cached state — on small deltas
//! the iteration converges in a handful of steps instead of dozens, and
//! the multi-million-entry pattern is never rebuilt.

use crate::cache::{CachedSolve, WarmStartCache};
use hnd_core::{SolveState, SolverKind, SolverOpts, SpectralSolver};
use hnd_linalg::{DensityPlan, FormatCounts};
use hnd_plan::{KernelClass, PlanDecision, PlanMode, Planner, SessionShape};
use hnd_response::{
    RankError, Ranking, ResponseDelta, ResponseError, ResponseLog, ResponseMatrix, ResponseOps,
};
use hnd_shard::{ShardPlan, ShardedOps};
use std::time::Instant;

/// Configuration of a [`RankingEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOpts {
    /// Which spectral solver serves this session.
    pub solver: SolverKind,
    /// The solver's shared options.
    pub solver_opts: SolverOpts,
    /// How many `(version → ranking, state)` solves to keep warm.
    pub cache_capacity: usize,
    /// Spare answer slots per user row before a kernel rebuild.
    pub row_slack: usize,
    /// Spare pick slots per option column before a kernel rebuild.
    pub col_slack: usize,
    /// Maximum retained log-history edits for cross-version catch-up
    /// (`None` = unbounded). Older edits are truncated after each submit;
    /// clients further behind than this get
    /// [`ResponseError::HistoryUnavailable`](hnd_response::ResponseError)
    /// from catch-up and must resync from a snapshot.
    pub history_retention: Option<usize>,
    /// Sharded-execution policy (`None` = never shard). With a plan set,
    /// a session whose roster/entry count crosses
    /// [`ShardPlan::activates`] is served by the `hnd-shard` backend:
    /// user-range shards of the pattern, shard-parallel kernels, and
    /// delta routing to owning shards — transparently, with results
    /// matching the single-shard path to ≤1e-12. Sessions below the
    /// threshold keep the single-shard fast path. The sharded solve is
    /// implemented for the flagship [`SolverKind::Power`]; other solver
    /// kinds ignore the plan.
    pub shard_plan: Option<ShardPlan>,
    /// Lane-format policy of the kernel context: rows/mirror columns whose
    /// density crosses the plan's thresholds are stored as 64-bit bitmap
    /// lanes (SIMD word kernels, O(1) bit-flip edits with no slack
    /// accounting); the rest keep the u32-index CSR layout. The default is
    /// ISA-adaptive; [`DensityPlan::force_csr`] reproduces the pure-CSR
    /// engine. Formats are re-evaluated at every rebuild point (slack
    /// exhaustion, bulk deltas, shard rebalances) — never mid-patch.
    pub density_plan: DensityPlan,
    /// The cost-model planner ([`hnd_plan`]). When set (the default wires
    /// in [`Planner::shared`] — the lazily loaded per-host catalog, `None`
    /// until a calibration pass has run on this machine), every backend
    /// build plans the session from *measured* kernel rates: backend +
    /// shard count, lane-format thresholds at the measured break-even
    /// density, and the delta-vs-rebuild patch budget. Explicit
    /// configuration still wins — a pinned [`Self::shard_plan`] or a
    /// non-default [`Self::density_plan`] is honored verbatim — and with
    /// no planner the hand-tuned constants above serve unchanged.
    pub planner: Option<&'static Planner>,
    /// Planner gate: [`PlanMode::Static`] ignores [`Self::planner`] and
    /// pins the hand-tuned fallback constants (the `HND_PLAN=static`
    /// behavior, which the default picks up from the environment) — the
    /// A/B switch for benchmarking planned against static configuration.
    pub plan_mode: PlanMode,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            solver: SolverKind::Power,
            solver_opts: SolverOpts::default(),
            cache_capacity: 8,
            // A user answering 32 more items / an option gaining 256 more
            // picks between rebuilds covers a long stretch of trickle
            // traffic at a few extra bytes per slot.
            row_slack: 32,
            col_slack: 256,
            // ~1.5 MiB of retained edits per session at 24 bytes each —
            // bounds long-running sessions while covering any realistic
            // client catch-up window.
            history_retention: Some(65_536),
            shard_plan: None,
            density_plan: DensityPlan::default(),
            planner: Planner::shared(),
            plan_mode: PlanMode::from_env(),
        }
    }
}

impl EngineOpts {
    /// The planner consulted for this configuration: the wired planner,
    /// unless [`PlanMode::Static`] pins the fallback constants.
    fn active_planner(&self) -> Option<&'static Planner> {
        match self.plan_mode {
            PlanMode::Auto => self.planner,
            PlanMode::Static => None,
        }
    }

    /// Plans one session from the measured catalog. `None` (fall back to
    /// the hand-tuned constants) when no planner is active. Explicitly
    /// configured options are honored: a pinned shard plan keeps the PR-5
    /// activation logic, a non-default density plan overrides the measured
    /// break-evens.
    fn plan_session(&self, matrix: &ResponseMatrix) -> Option<PlanDecision> {
        let planner = self.active_planner()?;
        let shape = SessionShape::from_counts(&matrix.row_counts(), &matrix.col_counts());
        // The sharded backend only exists for the power solver, and a
        // pinned shard plan means the caller decides about sharding.
        let allow_sharded = self.shard_plan.is_none() && self.solver == SolverKind::Power;
        let mut decision = planner.plan(&shape, allow_sharded);
        if self.density_plan != DensityPlan::default() {
            decision.density_plan = self.density_plan;
        }
        Some(decision)
    }
}

/// The engine's kernel context: one contiguous pattern, or user-range
/// shards of it (see [`EngineOpts::shard_plan`]).
enum Backend {
    /// The single-shard fast path (`ResponseOps`, in-place patched; boxed
    /// — the hybrid kernel context is a wide struct and the enum would
    /// otherwise carry its size inline in every session slot).
    Single(Box<ResponseOps>),
    /// The sharded execution layer (`hnd-shard`).
    Sharded(Box<ShardedOps>),
}

impl Backend {
    /// Builds the backend for `matrix`. A pinned [`EngineOpts::shard_plan`]
    /// keeps the PR-5 activation logic; otherwise an active planner
    /// `decision` drives the backend choice, shard count, and lane-format
    /// thresholds from measured costs. With neither, the single backend on
    /// the configured density plan serves (the hand-tuned fallback).
    fn build(
        matrix: &ResponseMatrix,
        opts: &EngineOpts,
        decision: Option<&PlanDecision>,
    ) -> Backend {
        let density_plan = decision.map_or(opts.density_plan, |d| d.density_plan);
        if opts.solver == SolverKind::Power {
            // Explicit configuration outranks the planner.
            let plan = opts
                .shard_plan
                .or_else(|| decision.and_then(|d| d.shard_plan));
            if let Some(plan) = plan {
                let nnz: usize = matrix.row_counts().iter().sum();
                if plan.activates(matrix.n_users(), nnz) {
                    return Backend::Sharded(Box::new(ShardedOps::from_plan(
                        matrix,
                        &plan,
                        density_plan,
                        opts.row_slack,
                        opts.col_slack,
                    )));
                }
            }
        }
        Backend::Single(Box::new(ResponseOps::with_plan(
            matrix,
            opts.row_slack,
            opts.col_slack,
            density_plan,
        )))
    }

    /// Stored entries of the kernel context.
    fn nnz(&self) -> usize {
        match self {
            Backend::Single(ops) => ops.pattern().nnz(),
            Backend::Sharded(sops) => sops.nnz(),
        }
    }

    /// Per-format lane counts of the kernel context.
    fn format_counts(&self) -> FormatCounts {
        match self {
            Backend::Single(ops) => ops.format_counts(),
            Backend::Sharded(sops) => sops.format_counts(),
        }
    }
}

/// Counters describing how the engine has been serving (observability and
/// the no-rebuild test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Deltas patched into the kernel context in place.
    pub delta_applies: u64,
    /// Full kernel-context rebuilds (slack exhaustion or cold baselines).
    /// The initial build at construction is not counted.
    pub rebuilds: u64,
    /// Solves that started from a cached spectral state.
    pub warm_solves: u64,
    /// Solves that started cold.
    pub cold_solves: u64,
    /// Iterations of the most recent solve.
    pub last_iterations: usize,
    /// Solves served by the sharded backend.
    pub sharded_solves: u64,
    /// Shard-layout reshapes: single→sharded upgrades when a session grows
    /// past its plan's activation threshold, plus skew-triggered re-splits.
    pub shard_rebalances: u64,
    /// Individual shards rebuilt alone after slack exhaustion (the sharded
    /// analogue of `rebuilds`, which counts whole-context rebuilds).
    pub shard_rebuilds: u64,
    /// Per-format lane counts of the live kernel context (how much of this
    /// session the bitmap kernels serve). Sampled at [`RankingEngine::stats`]
    /// time; formats only change at rebuild points.
    pub formats: FormatCounts,
    /// Planner re-plans triggered by entry-count drift (the session grew
    /// or shrank 2× past the size its decision was computed for).
    pub plan_replans: u64,
    /// Cost-model-predicted nanoseconds for the patches applied (planner
    /// active only; integer nanos keep the counters `Eq`).
    pub predicted_patch_ns: u64,
    /// Measured nanoseconds for the same patches.
    pub actual_patch_ns: u64,
    /// Cost-model-predicted nanoseconds for the rebuilds performed.
    pub predicted_rebuild_ns: u64,
    /// Measured nanoseconds for the same rebuilds.
    pub actual_rebuild_ns: u64,
    /// Cost-model-predicted nanoseconds for the solves served.
    pub predicted_solve_ns: u64,
    /// Measured nanoseconds for the same solves.
    pub actual_solve_ns: u64,
}

/// An incremental ranking session over a fixed user/item roster.
pub struct RankingEngine {
    log: ResponseLog,
    solver: Box<dyn SpectralSolver>,
    opts: EngineOpts,
    /// Kernel context of `matrix` (single or sharded), patched in place
    /// across versions.
    backend: Backend,
    /// The snapshot matrix the backend corresponds to.
    matrix: ResponseMatrix,
    /// The version backend/`matrix` correspond to.
    prepared_version: u64,
    cache: WarmStartCache,
    stats: EngineStats,
    /// The cost-model decision the current backend was built under
    /// (`None` = hand-tuned fallback constants).
    decision: Option<PlanDecision>,
}

impl RankingEngine {
    /// Creates an engine over an empty roster.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn new(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
        opts: EngineOpts,
    ) -> Result<Self, ResponseError> {
        Self::from_log(ResponseLog::new(n_users, n_items, options_per_item)?, opts)
    }

    /// Creates an engine over a pre-filled log (e.g. a bulk-loaded
    /// dataset whose edits will now trickle in).
    pub fn from_log(mut log: ResponseLog, opts: EngineOpts) -> Result<Self, ResponseError> {
        let snapshot = log.snapshot();
        let decision = opts.plan_session(&snapshot.matrix);
        let backend = Backend::build(&snapshot.matrix, &opts, decision.as_ref());
        Ok(RankingEngine {
            log,
            solver: opts.solver.build(opts.solver_opts),
            backend,
            matrix: snapshot.matrix,
            prepared_version: snapshot.version,
            cache: WarmStartCache::new(opts.cache_capacity),
            stats: EngineStats::default(),
            decision,
            opts,
        })
    }

    /// The cost-model decision the current backend runs under (`None`
    /// when the engine serves on the hand-tuned fallback constants).
    pub fn plan_decision(&self) -> Option<&PlanDecision> {
        self.decision.as_ref()
    }

    /// The engine's configuration.
    pub fn opts(&self) -> &EngineOpts {
        &self.opts
    }

    /// Serving counters (with the kernel context's current per-format lane
    /// counts sampled in).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            formats: self.backend.format_counts(),
            ..self.stats
        }
    }

    /// `(hits, misses)` of the warm-start cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The current log version.
    pub fn version(&self) -> u64 {
        self.log.version()
    }

    /// The engine's versioned edit ledger (the durable state: clients use
    /// it for [`ResponseLog::compact_range`] catch-up deltas).
    pub fn log(&self) -> &ResponseLog {
        &self.log
    }

    /// Tears the engine down to its durable state, dropping the kernel
    /// context and warm-start cache. The eviction path: a
    /// [`crate::SessionManager`] keeps only the returned log for idle
    /// sessions and rebuilds the engine from it on the next touch.
    pub fn into_log(self) -> ResponseLog {
        self.log
    }

    /// The matrix of the latest prepared snapshot (advances on
    /// [`Self::current_ranking`] / [`Self::advance`], not on submit).
    pub fn matrix(&self) -> &ResponseMatrix {
        &self.matrix
    }

    /// Number of user-range shards serving this session (`1` = the
    /// single-shard fast path).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Single(_) => 1,
            Backend::Sharded(sops) => sops.shard_count(),
        }
    }

    /// `true` when the session is served by the sharded backend.
    pub fn is_sharded(&self) -> bool {
        matches!(self.backend, Backend::Sharded(_))
    }

    /// `true` when a cached spectral state exists to warm-start the next
    /// solve.
    pub fn has_warm_state(&self) -> bool {
        self.cache.latest().is_some()
    }

    /// `true` when the latest solve is current (submit-free since then).
    pub fn is_current(&self) -> bool {
        self.cache
            .latest()
            .is_some_and(|c| c.version == self.log.version())
    }

    /// Commits a batch of `(user, item, choice)` responses; returns the new
    /// version. Ranking work is deferred to [`Self::current_ranking`].
    ///
    /// # Errors
    /// Rejects out-of-roster user/item indices and out-of-range options —
    /// this is the client-input boundary, so malformed tuples surface as
    /// [`ResponseError`]s, never panics. Edits before the failing one stay
    /// committed (see [`ResponseLog::submit`]).
    pub fn submit_responses(
        &mut self,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Result<u64, ResponseError> {
        let (n_users, n_items) = (self.log.n_users(), self.log.n_items());
        for (user, item, choice) in responses {
            if user >= n_users || item >= n_items {
                return Err(ResponseError::IndexOutOfBounds {
                    user,
                    item,
                    n_users,
                    n_items,
                });
            }
            self.log.set(user, item, choice)?;
        }
        // Bound the catch-up history. If a submit-only flood pushes the
        // cutoff past the last advance, the next refresh simply becomes a
        // cold rebuild point (a delta that long would exceed the patch
        // budget and rebuild anyway).
        if let Some(keep) = self.opts.history_retention {
            if self.log.history_len() > keep {
                let cutoff = self.log.version().saturating_sub(keep as u64);
                self.log.truncate_history(cutoff);
            }
        }
        Ok(self.log.version())
    }

    /// Number of delta edits that touch at least one *sparse* (CSR) lane
    /// of the current kernel context — the edits whose patches shift a
    /// sorted prefix and burn slack. Edits landing entirely on bitmap
    /// lanes are O(1) bit flips with no slack accounting and must not
    /// count against the patch-vs-rebuild budget (a forced-bitmap session
    /// under heavy waves never needs a rebuild, however long the delta).
    fn sparse_edit_weight(&self, delta: &ResponseDelta) -> usize {
        let touches_sparse = |user: usize, edit: &hnd_response::ResponseEdit| {
            let (pattern, row) = match &self.backend {
                Backend::Single(ops) => (ops.pattern(), user),
                Backend::Sharded(sops) => {
                    let shard = &sops.shards()[sops.shard_of(user)];
                    (shard.pattern(), user - shard.range().start)
                }
            };
            if !pattern.row_is_bitmap(row) {
                return true;
            }
            [edit.from, edit.to].iter().flatten().any(|&option| {
                let col = self.matrix.one_hot_column(edit.item, option);
                !pattern.col_is_bitmap(col)
            })
        };
        delta
            .edits
            .iter()
            .filter(|e| touches_sparse(e.user, e))
            .count()
    }

    /// The delta-vs-rebuild cutoff: the planner's cost-derived budget when
    /// a decision is active, else the hand-tuned ~nnz/8 heuristic.
    fn patch_budget(&self) -> usize {
        self.decision
            .as_ref()
            .map_or_else(|| self.backend.nnz() / 8 + 16, |d| d.patch_budget)
    }

    /// Brings the kernel context up to the log head without solving:
    /// drains the pending delta and patches both the matrix and `ops` in
    /// place — `O(nnz(delta))`, no `O(mn)` snapshot clone — falling back
    /// to a rebuild on slack exhaustion. Idempotent when nothing changed.
    pub fn advance(&mut self) {
        if self.log.version() == self.prepared_version && self.log.pending_edits() == 0 {
            return;
        }
        let target_version = self.log.version();
        match self.log.drain_delta() {
            // Patching a sparse lane shifts the touched row/column prefix
            // per edit, so a bulk-sized delta costs more than the one
            // rebuild it avoids — fall through to the rebuild path for
            // those. Only sparse-lane edits count: bitmap flips are free.
            Some(delta)
                if delta.from_version == self.prepared_version
                    && self.sparse_edit_weight(&delta) <= self.patch_budget() =>
            {
                let matrix_ok = delta.is_empty() || self.matrix.apply_delta(&delta).is_ok();
                if !matrix_ok {
                    self.rebuild_from_log();
                } else if !delta.is_empty() {
                    let sparse_edits = self.sparse_edit_weight(&delta);
                    let started = Instant::now();
                    let patched = match &mut self.backend {
                        Backend::Single(ops) => ops.apply_delta(&self.matrix, &delta).is_ok(),
                        Backend::Sharded(sops) => {
                            // Slack exhaustion inside a shard is handled by
                            // the sharded layer (one shard rebuilds alone);
                            // only inconsistent deltas surface as errors.
                            // Accumulate the per-delta increment: the ops'
                            // own counter restarts at 0 whenever the whole
                            // backend is rebuilt, the engine stat must not.
                            let before = sops.rebuilt_shards();
                            let ok = sops.apply_delta(&self.matrix, &delta).is_ok();
                            self.stats.shard_rebuilds += sops.rebuilt_shards() - before;
                            ok
                        }
                    };
                    if patched {
                        self.observe_patch(sparse_edits, started.elapsed());
                        self.stats.delta_applies += 1;
                        self.maybe_reshape();
                    } else {
                        // Slack exhausted (single backend) or inconsistent
                        // delta: rebuild the kernel context with fresh
                        // slack (the matrix is already current). The
                        // rebuild re-evaluates the plan decision and shard
                        // activation, so a session that grew past its
                        // threshold upgrades here too.
                        self.rebuild_backend();
                    }
                }
            }
            _ => self.rebuild_from_log(),
        }
        self.prepared_version = target_version;
    }

    /// Feeds one patch timing into the feedback loop (planner active and
    /// the model predicted nonzero work — unmatched actuals would skew the
    /// correction blend).
    fn observe_patch(&mut self, sparse_edits: usize, took: std::time::Duration) {
        let Some(planner) = self.opts.active_planner() else {
            return;
        };
        let Some(decision) = &self.decision else {
            return;
        };
        let predicted = (decision.predicted_patch_edit_ns * sparse_edits as f64) as u64;
        if predicted == 0 {
            return;
        }
        let actual = took.as_nanos() as u64;
        self.stats.predicted_patch_ns += predicted;
        self.stats.actual_patch_ns += actual;
        planner.observe(KernelClass::CsrPatch, predicted, actual);
    }

    /// Rebuilds the kernel context for the (already current) matrix with a
    /// fresh plan decision, recording rebuild feedback.
    fn rebuild_backend(&mut self) {
        self.decision = self.opts.plan_session(&self.matrix);
        let started = Instant::now();
        self.backend = Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
        let took = started.elapsed();
        self.stats.rebuilds += 1;
        if let (Some(planner), Some(decision)) = (self.opts.active_planner(), &self.decision) {
            let predicted = decision.predicted_rebuild_ns as u64;
            if predicted > 0 {
                let actual = took.as_nanos() as u64;
                self.stats.predicted_rebuild_ns += predicted;
                self.stats.actual_rebuild_ns += actual;
                planner.observe(KernelClass::LaneRebuild, predicted, actual);
            }
        }
    }

    /// Re-evaluates the shard layout after a successful patch: a
    /// single-backend session that crossed its plan's activation threshold
    /// upgrades to sharded execution, and a sharded session whose delta
    /// traffic skewed the layout (or grew it past another shard's worth)
    /// re-splits. No-op without a plan.
    fn maybe_reshape(&mut self) {
        if self.opts.solver != SolverKind::Power {
            return;
        }
        match self.opts.shard_plan {
            Some(plan) => match &mut self.backend {
                Backend::Single(ops) => {
                    if plan.activates(self.matrix.n_users(), ops.pattern().nnz()) {
                        self.backend =
                            Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
                        self.stats.shard_rebalances += 1;
                    }
                }
                Backend::Sharded(sops) => {
                    if sops.needs_rebalance(&plan) {
                        sops.rebalance(&self.matrix, &plan);
                        self.stats.shard_rebalances += 1;
                    }
                }
            },
            // Planner-driven sessions re-plan when the entry count drifts
            // 2× past the size the decision was computed for; the backend
            // is only rebuilt when the decision materially changes (shard
            // count), so trickle growth never causes rebuild churn.
            None => {
                let Some(current) = &self.decision else {
                    return;
                };
                let nnz = self.backend.nnz();
                let drifted = nnz > current.planned_nnz.saturating_mul(2).max(16)
                    || nnz.saturating_mul(2) < current.planned_nnz;
                if !drifted {
                    return;
                }
                let fresh = self.opts.plan_session(&self.matrix);
                self.stats.plan_replans += 1;
                let new_shards = fresh.as_ref().map_or(1, |d| d.shards);
                if new_shards != self.shard_count() {
                    self.decision = fresh;
                    self.backend = Backend::build(&self.matrix, &self.opts, self.decision.as_ref());
                    self.stats.shard_rebalances += 1;
                } else {
                    // Same layout: adopt the refreshed budgets/predictions
                    // without touching the kernel context.
                    self.decision = fresh;
                }
            }
        }
    }

    /// Cold re-baseline: re-materialize the matrix and kernel context
    /// (re-planning and re-evaluating shard activation for the new size).
    fn rebuild_from_log(&mut self) {
        self.matrix = self.log.to_matrix();
        self.rebuild_backend();
    }

    /// The ranking at the current version, solving only when necessary.
    ///
    /// Repeat calls at an unchanged version are pure cache hits. After new
    /// submissions the engine advances the kernel context incrementally and
    /// warm-starts from the nearest cached state.
    pub fn current_ranking(&mut self) -> Result<Ranking, RankError> {
        let version = self.log.version();
        if let Some(cached) = self.cache.get(version) {
            return Ok(cached.ranking.clone());
        }
        self.advance();
        let warm: Option<SolveState> = self.cache.latest().map(|c| c.state.clone());
        let started = Instant::now();
        let outcome = match &self.backend {
            Backend::Single(ops) => self
                .solver
                .solve_prepared(&self.matrix, ops, warm.as_ref())?,
            Backend::Sharded(sops) => {
                self.stats.sharded_solves += 1;
                hnd_shard::solve_power(&self.matrix, sops, &self.opts.solver_opts, warm.as_ref())?
            }
        };
        // Feedback: only cold solves match the model's full-iteration
        // prediction (warm starts converge in a handful of steps and would
        // read as a spurious 10× over-prediction).
        if warm.is_none() {
            if let (Some(planner), Some(decision)) = (self.opts.active_planner(), &self.decision) {
                let predicted = decision.predicted_solve_ns as u64;
                if predicted > 0 {
                    let actual = started.elapsed().as_nanos() as u64;
                    self.stats.predicted_solve_ns += predicted;
                    self.stats.actual_solve_ns += actual;
                    planner.observe(KernelClass::Solve, predicted, actual);
                }
            }
        }
        if warm.is_some() {
            self.stats.warm_solves += 1;
        } else {
            self.stats.cold_solves += 1;
        }
        self.stats.last_iterations = outcome.ranking.iterations;
        self.cache.insert(CachedSolve {
            version,
            ranking: outcome.ranking.clone(),
            state: outcome.state,
        });
        Ok(outcome.ranking)
    }

    /// Seeds the cache with an externally computed solution for the
    /// *prepared* version (the batched cold-refresh path of the session
    /// manager: solved via `rank_many`, state recovered from the scores —
    /// valid because every solver converges up to sign).
    pub fn seed_solution(&mut self, ranking: Ranking) {
        let state = SolveState::from_scores(ranking.scores.clone());
        self.cache.insert(CachedSolve {
            version: self.prepared_version,
            ranking,
            state,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine() -> RankingEngine {
        RankingEngine::new(
            4,
            3,
            &[2, 2, 2],
            EngineOpts {
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn submit_then_rank_then_cache_hit() {
        let mut engine = tiny_engine();
        engine
            .submit_responses([
                (0, 0, Some(0)),
                (0, 1, Some(0)),
                (1, 0, Some(0)),
                (1, 1, Some(1)),
                (2, 0, Some(1)),
                (2, 1, Some(1)),
                (3, 2, Some(1)),
            ])
            .unwrap();
        let first = engine.current_ranking().unwrap();
        assert_eq!(first.scores.len(), 4);
        let again = engine.current_ranking().unwrap();
        assert_eq!(first.scores, again.scores);
        let (hits, _) = engine.cache_stats();
        assert_eq!(hits, 1, "second call must be a cache hit");
        assert_eq!(engine.stats().cold_solves, 1);
    }

    #[test]
    fn incremental_edits_use_delta_and_warm_path() {
        let mut engine = tiny_engine();
        engine
            .submit_responses([
                (0, 0, Some(0)),
                (1, 0, Some(0)),
                (2, 0, Some(1)),
                (3, 0, Some(1)),
            ])
            .unwrap();
        engine.current_ranking().unwrap();
        // Trickle in three more answers.
        engine
            .submit_responses([(0, 1, Some(0)), (1, 1, Some(1)), (2, 2, Some(0))])
            .unwrap();
        engine.current_ranking().unwrap();
        let stats = engine.stats();
        assert_eq!(stats.rebuilds, 0, "deltas must patch in place");
        // Both the initial bulk load and the trickle ride the delta path.
        assert_eq!(stats.delta_applies, 2);
        assert_eq!(stats.warm_solves, 1);
        assert_eq!(stats.cold_solves, 1);
    }

    #[test]
    fn slack_exhaustion_falls_back_to_rebuild() {
        let mut engine = RankingEngine::new(
            3,
            2,
            &[2, 2],
            EngineOpts {
                row_slack: 0,
                col_slack: 0,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit_responses([(0, 0, Some(0))]).unwrap();
        engine.current_ranking().unwrap();
        // Zero slack: adding an answer cannot fit in place.
        engine.submit_responses([(1, 0, Some(0))]).unwrap();
        engine.current_ranking().unwrap();
        assert!(engine.stats().rebuilds >= 1);
        // Still correct: the served ranking matches a cold engine's.
        let mut cold = RankingEngine::new(3, 2, &[2, 2], *engine.opts()).unwrap();
        cold.submit_responses([(0, 0, Some(0)), (1, 0, Some(0))])
            .unwrap();
        let a = engine.current_ranking().unwrap();
        let b = cold.current_ranking().unwrap();
        assert_eq!(a.order_best_to_worst(), b.order_best_to_worst());
    }

    #[test]
    fn history_retention_bounds_submit_only_sessions() {
        // Regression: truncation used to be clamped to the last snapshot
        // version, which only advances on ranking reads — a submit-only
        // session grew its history forever despite the configured bound.
        let mut engine = RankingEngine::new(
            4,
            3,
            &[2, 2, 2],
            EngineOpts {
                history_retention: Some(8),
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        for round in 0..50u16 {
            engine
                .submit_responses([(0, 0, Some(round % 2)), (1, 1, Some((round + 1) % 2))])
                .unwrap();
        }
        assert_eq!(engine.version(), 100, "every write committed");
        assert_eq!(engine.log().history_len(), 8, "history stays bounded");

        // The truncated log still serves correctly (the next refresh is a
        // cold rebuild point, not a lie): same ranking as a fresh replica.
        let served = engine.current_ranking().unwrap();
        let mut replica = RankingEngine::new(4, 3, &[2, 2, 2], *engine.opts()).unwrap();
        for round in 0..50u16 {
            replica
                .submit_responses([(0, 0, Some(round % 2)), (1, 1, Some((round + 1) % 2))])
                .unwrap();
        }
        assert_eq!(served.scores, replica.current_ranking().unwrap().scores);
    }

    #[test]
    fn sharded_backend_agrees_with_single_and_counts_solves() {
        let mut opts = EngineOpts {
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let responses: Vec<(usize, usize, Option<u16>)> = (0..12)
            .flat_map(|j| (0..11).map(move |i| (j, i, Some(u16::from(j > i)))))
            .collect();
        let mut single = RankingEngine::new(12, 11, &[2; 11], opts).unwrap();
        single.submit_responses(responses.clone()).unwrap();
        let want = single.current_ranking().unwrap();

        opts.shard_plan = Some(hnd_shard::ShardPlan {
            min_users: 4, // activate immediately for this roster
            ..hnd_shard::ShardPlan::exactly(3)
        });
        let mut sharded = RankingEngine::new(12, 11, &[2; 11], opts).unwrap();
        assert!(sharded.is_sharded());
        assert_eq!(sharded.shard_count(), 3);
        sharded.submit_responses(responses).unwrap();
        let got = sharded.current_ranking().unwrap();
        assert_eq!(got.order_best_to_worst(), want.order_best_to_worst());
        for (a, b) in got.scores.iter().zip(&want.scores) {
            assert!((a - b).abs() <= 1e-12);
        }
        assert_eq!(sharded.stats().sharded_solves, 1);
        // Trickle an edit: the sharded delta path serves it (the bulk load
        // above legitimately rebuilt — it exceeds the patch budget).
        let rebuilds_after_load = sharded.stats().rebuilds;
        sharded.submit_responses([(0, 10, Some(1))]).unwrap();
        sharded.current_ranking().unwrap();
        assert_eq!(sharded.stats().sharded_solves, 2);
        assert_eq!(sharded.stats().rebuilds, rebuilds_after_load);
        assert_eq!(sharded.stats().delta_applies, 1);
    }

    #[test]
    fn session_growth_upgrades_to_sharded_backend() {
        let opts = EngineOpts {
            shard_plan: Some(hnd_shard::ShardPlan {
                min_users: usize::MAX, // activate on entry count only
                min_nnz: 20,
                target_shard_nnz: 10,
                min_shards: 2,
                max_shards: 4,
                ..Default::default()
            }),
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = RankingEngine::new(10, 6, &[2; 6], opts).unwrap();
        assert!(!engine.is_sharded(), "small session starts single-shard");
        engine
            .submit_responses((0..10).map(|u| (u, 0, Some(0))))
            .unwrap();
        engine.current_ranking().unwrap();
        assert!(!engine.is_sharded(), "10 entries stay below the threshold");
        // Grow past min_nnz: the next advance upgrades the backend.
        engine
            .submit_responses((0..10).flat_map(|u| [(u, 1, Some(1)), (u, 2, Some(0))]))
            .unwrap();
        let upgraded = engine.current_ranking().unwrap();
        assert!(engine.is_sharded(), "growth past min_nnz upgrades");
        assert!(engine.shard_count() >= 2);
        assert!(engine.stats().shard_rebalances >= 1 || engine.stats().rebuilds >= 1);
        // Still serves the same ranking as a never-sharded engine.
        let mut plain = RankingEngine::new(
            10,
            6,
            &[2; 6],
            EngineOpts {
                shard_plan: None,
                ..opts
            },
        )
        .unwrap();
        plain
            .submit_responses((0..10).map(|u| (u, 0, Some(0))))
            .unwrap();
        plain
            .submit_responses((0..10).flat_map(|u| [(u, 1, Some(1)), (u, 2, Some(0))]))
            .unwrap();
        let want = plain.current_ranking().unwrap();
        assert_eq!(upgraded.order_best_to_worst(), want.order_best_to_worst());
    }

    #[test]
    fn bitmap_lanes_absorb_deltas_without_rebuilds() {
        // Forced-bitmap layout with ZERO slack: every edit is an O(1) bit
        // flip, so a long trickle stream must never fall back to a kernel
        // rebuild — the hybrid engine's core serving guarantee. (The same
        // stream under forced CSR with zero slack rebuilds immediately.)
        let mk = |plan: DensityPlan| {
            RankingEngine::new(
                6,
                4,
                &[2; 4],
                EngineOpts {
                    row_slack: 0,
                    col_slack: 0,
                    density_plan: plan,
                    solver_opts: SolverOpts {
                        orient: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut bitmap = mk(DensityPlan::force_bitmap());
        let mut csr = mk(DensityPlan::force_csr());
        bitmap
            .submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        csr.submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        let a = bitmap.current_ranking().unwrap();
        let b = csr.current_ranking().unwrap();
        for round in 0..10u16 {
            let wave = [
                (usize::from(round % 6), 2, Some(round % 2)),
                (
                    usize::from((round + 3) % 6),
                    3,
                    (round % 3 > 0).then_some(0),
                ),
            ];
            bitmap.submit_responses(wave).unwrap();
            csr.submit_responses(wave).unwrap();
            let a = bitmap.current_ranking().unwrap();
            let b = csr.current_ranking().unwrap();
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert!((x - y).abs() <= 1e-12, "hybrid ≡ CSR serving");
            }
        }
        assert_eq!(a.scores.len(), b.scores.len());
        let stats = bitmap.stats();
        assert_eq!(stats.rebuilds, 0, "bit flips never exhaust capacity");
        // Only waves with a net effect patch (repeat writes of the same
        // choice commit no edits), but several certainly do.
        assert!(stats.delta_applies >= 5, "waves ride the delta path");
        assert_eq!(stats.formats.sparse_rows, 0, "forced-bitmap layout");
        assert_eq!(stats.formats.bitmap_rows, 6);
        assert_eq!(stats.formats.bitmap_cols, 8);
        assert!(
            csr.stats().rebuilds > 0,
            "zero-slack CSR control must rebuild"
        );
    }

    #[test]
    fn bitmap_edits_are_excluded_from_the_patch_budget() {
        // Regression (PR 6): the delta-vs-rebuild cutoff used to count
        // every edit, including O(1) bitmap bit flips that burn no slack —
        // so a forced-bitmap session under heavy waves hit the ~nnz/8
        // budget and rebuilt for nothing. Bitmap-lane edits are now
        // weightless: however heavy the wave, rebuilds stay at zero.
        let mut engine = RankingEngine::new(
            8,
            6,
            &[2; 6],
            EngineOpts {
                row_slack: 0,
                col_slack: 0,
                density_plan: DensityPlan::force_bitmap(),
                planner: None, // the fallback budget path is under test
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Seed a few entries, then rank so the baseline is prepared.
        engine
            .submit_responses([(0, 0, Some(0)), (1, 0, Some(1)), (2, 1, Some(0))])
            .unwrap();
        engine.current_ranking().unwrap();
        let nnz = engine.matrix().row_counts().iter().sum::<usize>();
        for wave in 0..6u16 {
            // Each wave flips far more edits than the old budget
            // (nnz/8 + 16 ≈ 16) would ever admit.
            let edits: Vec<(usize, usize, Option<u16>)> = (0..8)
                .flat_map(|u| {
                    (0..6).map(move |i| {
                        (
                            u,
                            i,
                            (!(u + i + wave as usize).is_multiple_of(3))
                                .then_some(((u + i + wave as usize) % 2) as u16),
                        )
                    })
                })
                .collect();
            assert!(edits.len() > nnz / 8 + 16, "waves must be budget-heavy");
            engine.submit_responses(edits).unwrap();
            engine.current_ranking().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.rebuilds, 0, "bitmap flips never trip the budget");
        assert!(stats.delta_applies >= 6, "every wave rides the delta path");
    }

    #[test]
    fn planner_decisions_drive_the_engine() {
        use hnd_plan::{calibrate, CalibrationOpts};
        use std::sync::OnceLock;
        static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
        let planner =
            *PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())));
        let opts = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = RankingEngine::new(20, 8, &[2; 8], opts).unwrap();
        let decision = *engine.plan_decision().expect("planner active");
        assert!(decision.patch_budget >= 16);
        assert_eq!(decision.shards, 1, "tiny roster stays single backend");
        engine
            .submit_responses((0..20).map(|u| (u, u % 8, Some(0))))
            .unwrap();
        let planned = engine.current_ranking().unwrap();

        // Identical results on the static fallback path.
        let mut fallback = RankingEngine::new(
            20,
            8,
            &[2; 8],
            EngineOpts {
                plan_mode: PlanMode::Static,
                ..opts
            },
        )
        .unwrap();
        assert!(
            fallback.plan_decision().is_none(),
            "Static mode pins the hand-tuned constants"
        );
        fallback
            .submit_responses((0..20).map(|u| (u, u % 8, Some(0))))
            .unwrap();
        let pinned = fallback.current_ranking().unwrap();
        for (a, b) in planned.scores.iter().zip(&pinned.scores) {
            assert!((a - b).abs() <= 1e-12, "planned ≡ static serving");
        }

        // Solve feedback reached the stats and the planner.
        let stats = engine.stats();
        assert!(stats.predicted_solve_ns > 0);
        assert!(stats.actual_solve_ns > 0);
        assert!(planner.drift()[KernelClass::Solve.index()].is_some());
    }

    #[test]
    fn pinned_options_outrank_the_planner() {
        use hnd_plan::{calibrate, CalibrationOpts};
        use std::sync::OnceLock;
        static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
        let planner =
            *PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())));
        // A pinned shard plan keeps PR-5 activation even with a planner.
        let opts = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            shard_plan: Some(hnd_shard::ShardPlan {
                min_users: 4,
                ..hnd_shard::ShardPlan::exactly(3)
            }),
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let engine = RankingEngine::new(12, 5, &[2; 5], opts).unwrap();
        assert!(engine.is_sharded(), "pinned plan activates as configured");
        assert_eq!(engine.shard_count(), 3, "pinned shard count is honored");
        // A non-default density plan overrides the measured break-evens.
        let forced = EngineOpts {
            planner: Some(planner),
            plan_mode: PlanMode::Auto,
            density_plan: DensityPlan::force_csr(),
            shard_plan: None,
            ..opts
        };
        let engine = RankingEngine::new(12, 5, &[2; 5], forced).unwrap();
        let decision = engine.plan_decision().expect("planner still consulted");
        assert_eq!(
            decision.density_plan,
            DensityPlan::force_csr(),
            "explicit density plan wins over the measured thresholds"
        );
    }

    #[test]
    fn version_tracks_log() {
        let mut engine = tiny_engine();
        assert_eq!(engine.version(), 0);
        engine.submit_responses([(0, 0, Some(0))]).unwrap();
        assert_eq!(engine.version(), 1);
        assert!(!engine.is_current());
        engine.current_ranking().unwrap();
        assert!(engine.is_current());
    }
}
