//! Multi-session serving: many independent rosters behind one manager.
//!
//! A production deployment ranks many cohorts at once (one per classroom,
//! campaign, …). [`SessionManager`] owns one [`RankingEngine`] per session
//! and adds the batched maintenance pass [`SessionManager::refresh_all`]:
//! sessions with cached spectral state refresh through their incremental
//! delta+warm path (already a handful of iterations each), while cold
//! sessions — fresh bulk loads, slack-exhausted rebuild points — are
//! batch-solved *in parallel across sessions* through
//! [`hnd_response::rank_many`] and their caches seeded from the returned
//! scores (valid warm states: every solver converges up to sign).

use crate::engine::{EngineOpts, RankingEngine};
use hnd_core::SpectralSolver;
use hnd_response::{rank_many, RankError, Ranking, ResponseError, ResponseLog, ResponseMatrix};
use std::collections::BTreeMap;

/// Identifies a session within a [`SessionManager`].
pub type SessionId = u64;

/// Owns and refreshes a fleet of incremental ranking sessions.
pub struct SessionManager {
    opts: EngineOpts,
    /// Shared solver for the batched cold-refresh path (same configuration
    /// as every session's own solver).
    solver: Box<dyn SpectralSolver>,
    sessions: BTreeMap<SessionId, RankingEngine>,
    next_id: SessionId,
}

impl SessionManager {
    /// Creates a manager whose sessions all use `opts`.
    pub fn new(opts: EngineOpts) -> Self {
        SessionManager {
            solver: opts.solver.build(opts.solver_opts),
            opts,
            sessions: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Opens a session over an empty roster; returns its id.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn create_session(
        &mut self,
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<SessionId, ResponseError> {
        let engine = RankingEngine::new(n_users, n_items, options_per_item, self.opts)?;
        Ok(self.install(engine))
    }

    /// Opens a session over a pre-filled log (bulk load).
    pub fn create_session_from_log(
        &mut self,
        log: ResponseLog,
    ) -> Result<SessionId, ResponseError> {
        let engine = RankingEngine::from_log(log, self.opts)?;
        Ok(self.install(engine))
    }

    fn install(&mut self, engine: RankingEngine) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(id, engine);
        id
    }

    /// Closes a session, returning whether it existed.
    pub fn drop_session(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id).is_some()
    }

    /// Borrows a session's engine.
    pub fn session(&self, id: SessionId) -> Option<&RankingEngine> {
        self.sessions.get(&id)
    }

    /// Commits a batch of responses to one session; returns its new
    /// version.
    ///
    /// # Errors
    /// [`ResponseError`] from the session's log; unknown ids panic (the
    /// caller owns the id lifecycle).
    pub fn submit_responses(
        &mut self,
        id: SessionId,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Result<u64, ResponseError> {
        self.engine_mut(id).submit_responses(responses)
    }

    /// The current ranking of one session (cache hit, or incremental
    /// delta+warm solve).
    pub fn current_ranking(&mut self, id: SessionId) -> Result<Ranking, RankError> {
        self.engine_mut(id).current_ranking()
    }

    fn engine_mut(&mut self, id: SessionId) -> &mut RankingEngine {
        self.sessions.get_mut(&id).expect("unknown session id")
    }

    /// Refreshes every out-of-date session; returns `(id, result)` pairs
    /// for the sessions that actually solved, in ascending id order.
    ///
    /// Warm sessions take their own incremental path; cold sessions are
    /// batch-solved in parallel via [`rank_many`] (each gets its own
    /// `Result` — one degenerate roster never blocks the fleet) and seeded
    /// into their warm-start caches.
    pub fn refresh_all(&mut self) -> Vec<(SessionId, Result<Ranking, RankError>)> {
        // Phase 1: advance kernel contexts and partition the fleet.
        let mut warm_ids: Vec<SessionId> = Vec::new();
        let mut cold_ids: Vec<SessionId> = Vec::new();
        for (&id, engine) in self.sessions.iter_mut() {
            if engine.is_current() {
                continue;
            }
            engine.advance();
            if engine.has_warm_state() {
                warm_ids.push(id);
            } else {
                cold_ids.push(id);
            }
        }

        let mut results: Vec<(SessionId, Result<Ranking, RankError>)> = Vec::new();

        // Phase 2: batched cold solves across sessions via rank_many.
        if !cold_ids.is_empty() {
            let solved: Vec<Result<Ranking, RankError>> = {
                let matrices: Vec<&ResponseMatrix> = cold_ids
                    .iter()
                    .map(|id| self.sessions[id].matrix())
                    .collect();
                rank_many(self.solver.as_ranker(), &matrices)
            };
            for (id, result) in cold_ids.into_iter().zip(solved) {
                if let Ok(ranking) = &result {
                    self.engine_mut(id).seed_solution(ranking.clone());
                }
                results.push((id, result));
            }
        }

        // Phase 3: warm sessions ride their incremental path (a handful of
        // iterations each on an already-patched kernel context).
        for id in warm_ids {
            let result = self.engine_mut(id).current_ranking();
            results.push((id, result));
        }

        results.sort_by_key(|(id, _)| *id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnd_core::{SolverKind, SolverOpts};

    fn manager() -> SessionManager {
        SessionManager::new(EngineOpts {
            solver: SolverKind::Power,
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn staircase_responses(m: usize) -> Vec<(usize, usize, Option<u16>)> {
        (0..m)
            .flat_map(|j| (0..m - 1).map(move |i| (j, i, Some(u16::from(j > i)))))
            .collect()
    }

    #[test]
    fn sessions_are_independent() {
        let mut mgr = manager();
        let a = mgr.create_session(5, 4, &[2, 2, 2, 2]).unwrap();
        let b = mgr.create_session(7, 6, &[2; 6]).unwrap();
        mgr.submit_responses(a, staircase_responses(5)).unwrap();
        mgr.submit_responses(b, staircase_responses(7)).unwrap();
        let ra = mgr.current_ranking(a).unwrap();
        let rb = mgr.current_ranking(b).unwrap();
        assert_eq!(ra.len(), 5);
        assert_eq!(rb.len(), 7);
        assert!(mgr.drop_session(a));
        assert!(!mgr.drop_session(a));
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn refresh_all_batches_cold_and_warms_the_rest() {
        let mut mgr = manager();
        let ids: Vec<SessionId> = (0..4)
            .map(|k| {
                let id = mgr
                    .create_session(6 + k, 5 + k, &vec![2u16; 5 + k])
                    .unwrap();
                mgr.submit_responses(id, staircase_responses(6 + k))
                    .unwrap();
                id
            })
            .collect();
        // All four are cold → batched rank_many path.
        let first = mgr.refresh_all();
        assert_eq!(first.len(), 4);
        for (id, result) in &first {
            assert!(result.is_ok(), "session {id} failed");
        }
        // Already current → nothing to do.
        assert!(mgr.refresh_all().is_empty());

        // Trickle an edit into two sessions → warm refresh only for those.
        let rebuilds_after_load = mgr.session(ids[1]).unwrap().stats().rebuilds;
        mgr.submit_responses(ids[1], [(0, 0, Some(1))]).unwrap();
        mgr.submit_responses(ids[3], [(1, 1, Some(1))]).unwrap();
        let second = mgr.refresh_all();
        let refreshed: Vec<SessionId> = second.iter().map(|(id, _)| *id).collect();
        assert_eq!(refreshed, vec![ids[1], ids[3]]);
        let s1 = mgr.session(ids[1]).unwrap().stats();
        assert_eq!(
            s1.rebuilds, rebuilds_after_load,
            "warm refresh must stay incremental (bulk load may rebuild)"
        );
        assert_eq!(s1.delta_applies, 1, "the trickle edit was a patch");
        assert_eq!(s1.warm_solves, 1);
    }

    #[test]
    fn batched_cold_refresh_agrees_with_direct_ranking() {
        // The rank_many path and the per-session path must produce the same
        // rankings (identical solver configuration).
        let mut mgr = manager();
        let id = mgr.create_session(8, 7, &[2; 7]).unwrap();
        mgr.submit_responses(id, staircase_responses(8)).unwrap();
        let batched = mgr.refresh_all().pop().unwrap().1.unwrap();

        let mut solo = manager();
        let sid = solo.create_session(8, 7, &[2; 7]).unwrap();
        solo.submit_responses(sid, staircase_responses(8)).unwrap();
        let direct = solo.current_ranking(sid).unwrap();
        assert_eq!(batched.order_best_to_worst(), direct.order_best_to_worst());
    }
}
