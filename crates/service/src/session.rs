//! Multi-session serving: many independent rosters behind one manager.
//!
//! A production deployment ranks many cohorts at once (one per classroom,
//! campaign, …). [`SessionManager`] owns one slot per session and adds the
//! batched maintenance pass [`SessionManager::refresh_all`]: sessions with
//! cached spectral state refresh through their incremental delta+warm path
//! (already a handful of iterations each), while cold sessions — fresh
//! bulk loads, slack-exhausted rebuild points — are batch-solved *in
//! parallel across sessions* through [`hnd_response::rank_many`] and their
//! caches seeded from the returned scores (valid warm states: every solver
//! converges up to sign).
//!
//! ## Idle eviction and rehydration
//!
//! A fleet sized for millions of users is mostly idle at any instant, and
//! a live [`RankingEngine`] is the expensive representation of a session:
//! the slack-capacity CSR/CSC pattern plus a warm-start cache of `O(m)`
//! state vectors. The durable state is only the [`ResponseLog`]. With an
//! [idle threshold](SessionManager::set_idle_threshold) configured, a
//! session untouched for that many manager operations is **evicted** — its
//! engine is torn down to the log ([`RankingEngine::into_log`]) — and the
//! next touch (submit, ranking read, checkout) **rehydrates** it
//! transparently: the engine rebuilds from the log and the first solve
//! runs cold, after which the session is warm again. Rankings served by a
//! rehydrated session are identical to a never-evicted one's (the log is
//! the complete state; only cached acceleration is dropped), which
//! `tests/failure_injection.rs` pins down.
//!
//! Time is a **logical clock** (one tick per manager operation), not wall
//! time: eviction decisions are deterministic and testable, and a server
//! wrapping the manager can map ticks to wall time however it likes.
//!
//! ## Engine checkout (the concurrent server's hook)
//!
//! [`SessionManager::take_engine`] / [`SessionManager::put_engine`] move a
//! session's engine out of and back into its slot. While checked out the
//! slot answers "busy": the session cannot be evicted, re-checked-out, or
//! served through the synchronous paths. [`crate::SessionServer`] builds
//! its per-session single-writer guarantee on exactly this — a worker
//! checks the engine out, processes the session's mailbox without holding
//! any global lock, and checks it back in.

use crate::engine::{EngineOpts, EngineStats, RankingEngine};
use hnd_core::SpectralSolver;
use hnd_response::{rank_many, RankError, Ranking, ResponseError, ResponseLog, ResponseMatrix};
use hnd_store::SessionStore;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a session within a [`SessionManager`].
pub type SessionId = u64;

/// Typed errors from [`SessionManager`]'s public surface — the manager
/// never panics on id-lifecycle mistakes; callers get one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No session with this id exists.
    Unknown(SessionId),
    /// The session's engine is checked out to a worker; the synchronous
    /// paths cannot serve it and a second checkout is rejected.
    CheckedOut(SessionId),
    /// The session was quarantined after a panic; only
    /// [`SessionManager::revive_session`] can bring it back.
    Quarantined(SessionId),
    /// [`SessionManager::revive_session`] on a session that is not
    /// quarantined.
    NotQuarantined(SessionId),
    /// [`SessionManager::put_engine`] without a matching checkout — a
    /// caller bug that would silently fork session state.
    NotCheckedOut(SessionId),
    /// The session's log rejected an edit batch.
    Response(ResponseError),
    /// A solve failed.
    Rank(RankError),
    /// The durable store failed (restore, revive).
    Store(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown(id) => write!(f, "unknown session {id}"),
            SessionError::CheckedOut(id) => write!(f, "session {id} is checked out"),
            SessionError::Quarantined(id) => write!(f, "session {id} is quarantined"),
            SessionError::NotQuarantined(id) => write!(f, "session {id} is not quarantined"),
            SessionError::NotCheckedOut(id) => {
                write!(
                    f,
                    "put_engine without a matching take_engine for session {id}"
                )
            }
            SessionError::Response(e) => write!(f, "{e}"),
            SessionError::Rank(e) => write!(f, "{e}"),
            SessionError::Store(msg) => write!(f, "store failure: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ResponseError> for SessionError {
    fn from(e: ResponseError) -> Self {
        SessionError::Response(e)
    }
}

impl From<RankError> for SessionError {
    fn from(e: RankError) -> Self {
        SessionError::Rank(e)
    }
}

/// One session's representation: live (engine resident), evicted (durable
/// log only), or checked out to a worker.
enum SessionState {
    /// Engine resident in the slot; the synchronous paths serve from it.
    /// Boxed so a mostly-evicted fleet pays log-sized slots, not
    /// engine-sized ones.
    Live(Box<RankingEngine>),
    /// Torn down to the durable log; any touch rehydrates.
    Evicted(ResponseLog),
    /// Spilled to the attached [`SessionStore`]: *no* state in memory at
    /// all — the durable snapshot + WAL pair is the session. The next
    /// touch loads it back ([`SessionStore::load`]) and rebuilds the
    /// engine.
    Spilled,
    /// Engine temporarily owned by a caller of
    /// [`SessionManager::take_engine`].
    CheckedOut,
    /// Poisoned by a panic during command execution. The durable state is
    /// preserved — `log` holds the salvaged ledger when the store could
    /// not absorb it (or none is attached); otherwise the store's
    /// snapshot + WAL pair is the session. Every touch is refused until
    /// [`SessionManager::revive_session`].
    Quarantined(Option<Box<ResponseLog>>),
}

struct SessionSlot {
    state: SessionState,
    /// Logical-clock reading of the last touch (creation, submit, read,
    /// checkout, check-in).
    last_touch: u64,
}

/// What [`SessionManager::checkout`] hands a worker: a live engine, or the
/// durable log of an evicted session whose engine the worker must rebuild
/// itself (outside any shared lock).
pub enum Checkout {
    /// The resident engine, ready to serve (boxed: the enum is moved
    /// around by value and the log variant is an order of magnitude
    /// smaller).
    Live(Box<RankingEngine>),
    /// The durable log; build with [`RankingEngine::from_log`] +
    /// [`SessionManager::engine_opts`].
    Rehydrate(ResponseLog),
    /// A log just recovered from the durable store (snapshot + WAL-tail
    /// replay): build like [`Checkout::Rehydrate`] and stamp the replay
    /// cost with [`RankingEngine::record_wal_replay`].
    Restore {
        /// The recovered ledger, positioned at the durable head.
        log: ResponseLog,
        /// WAL edits replayed on top of the snapshot to reach it.
        replayed: u64,
    },
}

/// Counters describing fleet-level lifecycle events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Sessions torn down to their durable log by the idle policy (or
    /// [`SessionManager::evict_session`]).
    pub evictions: u64,
    /// Engines rebuilt from a log on the first touch after eviction
    /// (restores count here too — every restore ends in a rebuild).
    pub rehydrations: u64,
    /// Evictions that went all the way to disk: the log left memory for
    /// the attached [`SessionStore`] (WAL flushed, snapshot current).
    pub spills: u64,
    /// Sessions loaded back from the store — snapshot + WAL-tail replay —
    /// on the first touch after a spill.
    pub restores: u64,
    /// Store operations (register, sync, spill, restore) that failed.
    /// Durability is best-effort from the serving path's view: a failed
    /// spill keeps the log resident, a failed sync is retried by the next
    /// one, and every failure lands here instead of on a client.
    pub store_errors: u64,
    /// Sessions poisoned by a panic and moved to quarantine.
    pub quarantines: u64,
    /// Quarantined sessions successfully revived from durable state.
    pub revivals: u64,
}

/// Owns and refreshes a fleet of incremental ranking sessions.
pub struct SessionManager {
    opts: EngineOpts,
    /// Shared solver for the batched cold-refresh path (same configuration
    /// as every session's own solver).
    solver: Box<dyn SpectralSolver>,
    sessions: BTreeMap<SessionId, SessionSlot>,
    next_id: SessionId,
    /// Logical clock: one tick per manager operation.
    clock: u64,
    /// Evict sessions untouched for at least this many ticks (`None` =
    /// never evict).
    idle_threshold: Option<u64>,
    /// Clock reading of the last idle sweep (sweeps are strided — see
    /// [`Self::run_idle_policy`]).
    last_sweep: u64,
    stats: ManagerStats,
    /// Serving counters of engines that left the fleet (evicted, spilled,
    /// or closed) — so [`Self::aggregate_engine_stats`] reports lifetime
    /// totals, not just whatever happens to be resident right now.
    retired_stats: EngineStats,
    /// The durable tier, when attached: evictions spill to it (the log
    /// leaves memory entirely) and committed edits stream into its WALs
    /// so catch-up outlives in-memory history truncation.
    store: Option<Arc<SessionStore>>,
}

impl SessionManager {
    /// Creates a manager whose sessions all use `opts` (no idle eviction).
    pub fn new(opts: EngineOpts) -> Self {
        SessionManager {
            solver: opts.solver.build(opts.solver_opts),
            opts,
            sessions: BTreeMap::new(),
            next_id: 0,
            clock: 0,
            idle_threshold: None,
            last_sweep: 0,
            stats: ManagerStats::default(),
            retired_stats: EngineStats::default(),
            store: None,
        }
    }

    /// Creates a manager backed by a durable [`SessionStore`], adopting
    /// every session the store holds as a [spilled](SessionState::Spilled)
    /// slot — the restart path: a fresh process over the same store
    /// directory picks up exactly where the previous one crashed or shut
    /// down, ids preserved, and each adopted session rehydrates lazily on
    /// its first touch.
    pub fn with_store(opts: EngineOpts, store: Arc<SessionStore>) -> Self {
        let mut mgr = Self::new(opts);
        for id in store.session_ids() {
            mgr.sessions.insert(
                id,
                SessionSlot {
                    state: SessionState::Spilled,
                    last_touch: 0,
                },
            );
            mgr.next_id = mgr.next_id.max(id + 1);
        }
        mgr.store = Some(store);
        mgr
    }

    /// Attaches a durable store to a running manager: every resident
    /// session's log is shipped so later spills and catch-ups are
    /// incremental. Returns the number of edits shipped.
    pub fn attach_store(&mut self, store: Arc<SessionStore>) -> u64 {
        let mut shipped = 0;
        let mut errors = 0;
        for (&id, slot) in &self.sessions {
            let log = match &slot.state {
                SessionState::Live(engine) => engine.log(),
                SessionState::Evicted(log) => log,
                // Spilled is impossible without a store; a checked-out
                // session syncs at its next commit.
                _ => continue,
            };
            match store.sync_from(id, log) {
                Ok(n) => shipped += n,
                Err(_) => errors += 1,
            }
        }
        self.stats.store_errors += errors;
        self.store = Some(store);
        shipped
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<SessionStore>> {
        self.store.as_ref()
    }

    /// Every session id the manager knows, in ascending order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Number of sessions (live, evicted, or checked out).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Fleet lifecycle counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Lifetime engine counters across the whole fleet: every live
    /// engine's stats summed with those of engines already retired
    /// (evicted, spilled, or closed). The engine-side half of the unified
    /// metrics snapshot.
    pub fn aggregate_engine_stats(&self) -> EngineStats {
        let mut total = self.retired_stats;
        for slot in self.sessions.values() {
            if let SessionState::Live(ref engine) = slot.state {
                total.absorb(&engine.stats());
            }
        }
        total
    }

    /// Configures the idle-eviction policy: sessions untouched for at
    /// least `threshold` manager operations are torn down to their durable
    /// log on the next maintenance opportunity (`None` disables eviction).
    pub fn set_idle_threshold(&mut self, threshold: Option<u64>) {
        self.idle_threshold = threshold;
    }

    /// The configured idle threshold in logical-clock ticks.
    pub fn idle_threshold(&self) -> Option<u64> {
        self.idle_threshold
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Opens a session over an empty roster; returns its id.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn create_session(
        &mut self,
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<SessionId, ResponseError> {
        let engine = RankingEngine::new(n_users, n_items, options_per_item, self.opts)?;
        Ok(self.install(engine))
    }

    /// Opens a session over a pre-filled log (bulk load).
    pub fn create_session_from_log(
        &mut self,
        log: ResponseLog,
    ) -> Result<SessionId, ResponseError> {
        let engine = RankingEngine::from_log(log, self.opts)?;
        Ok(self.install(engine))
    }

    fn install(&mut self, engine: RankingEngine) -> SessionId {
        let now = self.tick();
        let id = self.next_id;
        self.next_id += 1;
        if let Some(store) = &self.store {
            // Register up front so the WAL covers the session from version
            // zero (catch-up past any later truncation) and the first
            // spill is an append, not a bulk write.
            if store.register(id, engine.log()).is_err() {
                self.stats.store_errors += 1;
            }
        }
        self.sessions.insert(
            id,
            SessionSlot {
                state: SessionState::Live(Box::new(engine)),
                last_touch: now,
            },
        );
        id
    }

    /// Closes a session, returning whether it existed. A checked-out
    /// session is closed too: its engine is discarded at check-in. With a
    /// store attached the durable files go with it.
    pub fn drop_session(&mut self, id: SessionId) -> bool {
        let removed = self.sessions.remove(&id);
        let existed = removed.is_some();
        if let Some(SessionSlot {
            state: SessionState::Live(engine),
            ..
        }) = removed
        {
            self.retired_stats.absorb(&engine.stats());
        }
        if existed {
            if let Some(store) = &self.store {
                if store.remove(id).is_err() {
                    self.stats.store_errors += 1;
                }
            }
        }
        existed
    }

    /// Borrows a session's engine when it is resident (`None` for unknown,
    /// evicted, or checked-out sessions — use [`Self::session_log`] for
    /// state that survives eviction).
    pub fn session(&self, id: SessionId) -> Option<&RankingEngine> {
        match self.sessions.get(&id)?.state {
            SessionState::Live(ref engine) => Some(engine),
            _ => None,
        }
    }

    /// `true` when the session exists and currently holds no engine (its
    /// durable log — in memory or on disk — is its only state).
    pub fn is_evicted(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id),
            Some(SessionSlot {
                state: SessionState::Evicted(_) | SessionState::Spilled,
                ..
            })
        )
    }

    /// `true` when the session's only state is the attached store's
    /// snapshot + WAL pair (nothing in memory at all).
    pub fn is_spilled(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id),
            Some(SessionSlot {
                state: SessionState::Spilled,
                ..
            })
        )
    }

    /// Borrows the durable log of an *evicted* session (`None` otherwise):
    /// the read-only fast path for log queries (catch-up deltas, snapshot
    /// export) that must not trigger an engine rehydration.
    pub fn evicted_log(&self, id: SessionId) -> Option<&ResponseLog> {
        match self.sessions.get(&id)?.state {
            SessionState::Evicted(ref log) => Some(log),
            _ => None,
        }
    }

    /// A clone of the session's versioned edit ledger — available for live
    /// *and* evicted sessions (`None` for unknown or checked-out ones).
    /// The serial-replay oracle of the concurrency tests reads this.
    pub fn session_log(&self, id: SessionId) -> Option<ResponseLog> {
        match self.sessions.get(&id)?.state {
            SessionState::Live(ref engine) => Some(engine.log().clone()),
            SessionState::Evicted(ref log) => Some(log.clone()),
            // Read straight off disk without waking the session up.
            SessionState::Spilled => self
                .store
                .as_ref()
                .and_then(|s| s.load(id).ok())
                .map(|(log, _)| log),
            SessionState::CheckedOut => None,
            // Quarantine preserves the ledger: salvaged in memory, or on
            // disk behind the attached store.
            SessionState::Quarantined(ref log) => match log {
                Some(log) => Some((**log).clone()),
                None => self
                    .store
                    .as_ref()
                    .and_then(|s| s.load(id).ok())
                    .map(|(log, _)| log),
            },
        }
    }

    /// Commits a batch of responses to one session; returns its new
    /// version. Rehydrates an evicted session first.
    ///
    /// # Errors
    /// [`SessionError::Response`] when the log rejects the batch;
    /// [`SessionError::Unknown`] / [`SessionError::CheckedOut`] /
    /// [`SessionError::Quarantined`] on id-lifecycle misses.
    pub fn submit_responses(
        &mut self,
        id: SessionId,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Result<u64, SessionError> {
        let result = self
            .live_engine_mut(id)?
            .submit_responses(responses)
            .map_err(SessionError::from);
        if result.is_ok() {
            self.sync_to_store(id);
        }
        self.run_idle_policy();
        result
    }

    /// Ships the session's committed tail to the attached store (no-op
    /// without one). Failures count in [`ManagerStats::store_errors`] —
    /// the commit already succeeded in memory, so the client never sees
    /// them; the next sync retries the whole gap.
    fn sync_to_store(&mut self, id: SessionId) {
        let Some(store) = self.store.clone() else {
            return;
        };
        let Some(slot) = self.sessions.get(&id) else {
            return;
        };
        let SessionState::Live(ref engine) = slot.state else {
            return;
        };
        if store.sync_from(id, engine.log()).is_err() {
            self.stats.store_errors += 1;
        }
    }

    /// The current ranking of one session (cache hit, or incremental
    /// delta+warm solve). Rehydrates an evicted session first (that solve
    /// runs cold — acceleration state is not durable).
    pub fn current_ranking(&mut self, id: SessionId) -> Result<Ranking, SessionError> {
        let result = self
            .live_engine_mut(id)?
            .current_ranking()
            .map_err(SessionError::from);
        self.run_idle_policy();
        result
    }

    /// Rehydrates (if needed) and mutably borrows the engine of `id`,
    /// bumping its touch time.
    fn live_engine_mut(&mut self, id: SessionId) -> Result<&mut RankingEngine, SessionError> {
        let now = self.tick();
        self.live_engine_mut_at(id, now)
    }

    /// [`Self::live_engine_mut`] at an explicit clock reading — used by
    /// [`Self::refresh_all`], which is *one* manager operation no matter
    /// how many sessions it refreshes (per-session ticks would inflate the
    /// clock and let the trailing idle sweep evict sessions the pass
    /// itself just refreshed).
    fn live_engine_mut_at(
        &mut self,
        id: SessionId,
        now: u64,
    ) -> Result<&mut RankingEngine, SessionError> {
        let store = self.store.clone();
        let (rehydrated, restored) = {
            let slot = self
                .sessions
                .get_mut(&id)
                .ok_or(SessionError::Unknown(id))?;
            slot.last_touch = now;
            match slot.state {
                SessionState::Live(_) => (false, false),
                SessionState::Evicted(_) => {
                    let SessionState::Evicted(log) =
                        std::mem::replace(&mut slot.state, SessionState::CheckedOut)
                    else {
                        unreachable!()
                    };
                    let engine = RankingEngine::from_log(log, self.opts)
                        .expect("rehydration from a previously valid log");
                    slot.state = SessionState::Live(Box::new(engine));
                    (true, false)
                }
                SessionState::Spilled => {
                    // Unrecoverable durable state degrades to a typed
                    // error; the slot stays spilled so a later repair of
                    // the files can still revive the session.
                    let loaded = store
                        .as_ref()
                        .expect("spilled session without an attached store")
                        .load(id);
                    let (log, report) = match loaded {
                        Ok(ok) => ok,
                        Err(e) => {
                            self.stats.store_errors += 1;
                            return Err(SessionError::Store(e.to_string()));
                        }
                    };
                    let mut engine = RankingEngine::from_log(log, self.opts)
                        .expect("rehydration from a previously valid log");
                    engine.record_wal_replay(report.replayed_edits);
                    slot.state = SessionState::Live(Box::new(engine));
                    (true, true)
                }
                SessionState::CheckedOut => return Err(SessionError::CheckedOut(id)),
                SessionState::Quarantined(_) => return Err(SessionError::Quarantined(id)),
            }
        };
        if rehydrated {
            self.stats.rehydrations += 1;
        }
        if restored {
            self.stats.restores += 1;
        }
        match self.sessions.get_mut(&id).expect("slot exists").state {
            SessionState::Live(ref mut engine) => Ok(engine),
            _ => unreachable!("slot was made live above"),
        }
    }

    /// Moves a session's engine out of its slot (rehydrating first if
    /// evicted), leaving the slot "checked out": no eviction, no second
    /// checkout, no synchronous serving until [`Self::put_engine`].
    ///
    /// # Errors
    /// [`SessionError::Unknown`], [`SessionError::CheckedOut`],
    /// [`SessionError::Quarantined`], or [`SessionError::Store`] when a
    /// spilled session's durable state cannot be loaded.
    pub fn take_engine(&mut self, id: SessionId) -> Result<RankingEngine, SessionError> {
        let opts = self.opts;
        Ok(match self.checkout(id)? {
            Checkout::Live(engine) => *engine,
            Checkout::Rehydrate(log) => {
                RankingEngine::from_log(log, opts).expect("rehydration from a previously valid log")
            }
            Checkout::Restore { log, replayed } => {
                let mut engine = RankingEngine::from_log(log, opts)
                    .expect("rehydration from a previously valid log");
                engine.record_wal_replay(replayed);
                engine
            }
        })
    }

    /// The lock-friendly checkout: like [`Self::take_engine`] but hands an
    /// evicted session's *log* back instead of rebuilding the engine, so a
    /// concurrent server can do the `O(nnz)` rehydration **outside** its
    /// global lock (build via [`RankingEngine::from_log`] with
    /// [`Self::engine_opts`], then [`Self::put_engine`] as usual). The
    /// rehydration is counted here — taking the log commits the caller to
    /// the rebuild.
    ///
    /// # Errors
    /// [`SessionError::Unknown`], [`SessionError::CheckedOut`],
    /// [`SessionError::Quarantined`], or [`SessionError::Store`] when a
    /// spilled session's durable state cannot be loaded (the slot stays
    /// spilled; a later repair of the files can still revive it).
    pub fn checkout(&mut self, id: SessionId) -> Result<Checkout, SessionError> {
        let now = self.tick();
        let store = self.store.clone();
        let slot = self
            .sessions
            .get_mut(&id)
            .ok_or(SessionError::Unknown(id))?;
        if matches!(slot.state, SessionState::CheckedOut) {
            return Err(SessionError::CheckedOut(id));
        }
        if matches!(slot.state, SessionState::Quarantined(_)) {
            return Err(SessionError::Quarantined(id));
        }
        slot.last_touch = now;
        match std::mem::replace(&mut slot.state, SessionState::CheckedOut) {
            SessionState::Live(engine) => Ok(Checkout::Live(engine)),
            SessionState::Evicted(log) => {
                self.stats.rehydrations += 1;
                Ok(Checkout::Rehydrate(log))
            }
            SessionState::Spilled => {
                let store = store.expect("spilled session without an attached store");
                match store.load(id) {
                    Ok((log, report)) => {
                        self.stats.rehydrations += 1;
                        self.stats.restores += 1;
                        Ok(Checkout::Restore {
                            log,
                            replayed: report.replayed_edits,
                        })
                    }
                    Err(e) => {
                        // Unrecoverable durable state: the slot stays
                        // spilled (a later repair of the files can still
                        // revive it) and the caller sees the failure.
                        self.stats.store_errors += 1;
                        self.sessions.get_mut(&id).expect("slot exists").state =
                            SessionState::Spilled;
                        Err(SessionError::Store(e.to_string()))
                    }
                }
            }
            SessionState::CheckedOut | SessionState::Quarantined(_) => {
                unreachable!("rejected above")
            }
        }
    }

    /// Folds store failures observed outside the manager (the concurrent
    /// server's workers sync WALs while engines are checked out) into
    /// [`ManagerStats::store_errors`].
    pub fn note_store_errors(&mut self, n: u64) {
        self.stats.store_errors += n;
    }

    /// The engine configuration every session uses (what a
    /// [`Checkout::Rehydrate`] caller builds with).
    pub fn engine_opts(&self) -> EngineOpts {
        self.opts
    }

    /// Returns a checked-out engine to its slot. `Ok(false)` (engine
    /// dropped) when the session was closed in the meantime.
    ///
    /// # Errors
    /// [`SessionError::NotCheckedOut`] if the slot is not checked out —
    /// pairing a `put` with a missing `take` is a caller bug that would
    /// silently fork session state. The engine is dropped.
    pub fn put_engine(
        &mut self,
        id: SessionId,
        engine: RankingEngine,
    ) -> Result<bool, SessionError> {
        let now = self.tick();
        match self.sessions.get_mut(&id) {
            Some(slot) => {
                if !matches!(slot.state, SessionState::CheckedOut) {
                    return Err(SessionError::NotCheckedOut(id));
                }
                slot.state = SessionState::Live(Box::new(engine));
                slot.last_touch = now;
                self.run_idle_policy();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// `true` when the session exists and is quarantined.
    pub fn is_quarantined(&self, id: SessionId) -> bool {
        matches!(
            self.sessions.get(&id),
            Some(SessionSlot {
                state: SessionState::Quarantined(_),
                ..
            })
        )
    }

    /// Moves a checked-out session to quarantine after a panic poisoned
    /// its engine. `salvage` is whatever committed ledger the caller
    /// could recover from the wreck (logs are edit-atomic, so a salvaged
    /// log is always structurally valid); with a store attached it is
    /// spilled so the durable tier holds the latest committed state, and
    /// kept in memory only if that spill fails. Returns `false` when the
    /// session is unknown or not checked out.
    pub fn quarantine_session(&mut self, id: SessionId, salvage: Option<ResponseLog>) -> bool {
        let store = self.store.clone();
        let Some(slot) = self.sessions.get_mut(&id) else {
            return false;
        };
        if !matches!(slot.state, SessionState::CheckedOut) {
            return false;
        }
        let kept = match (salvage, &store) {
            (Some(log), Some(store)) => {
                if store.spill(id, &log).is_ok() {
                    None
                } else {
                    // Failed spill: keep the salvage resident rather than
                    // lose committed edits the WAL never saw.
                    self.stats.store_errors += 1;
                    Some(Box::new(log))
                }
            }
            (salvage, _) => salvage.map(Box::new),
        };
        self.sessions.get_mut(&id).expect("slot exists").state = SessionState::Quarantined(kept);
        self.stats.quarantines += 1;
        true
    }

    /// Rebuilds a quarantined session's slot from its preserved state —
    /// the salvaged ledger, or the attached store's snapshot + WAL pair —
    /// leaving it evicted (the next touch rehydrates and solves cold).
    /// Returns the recovered version.
    ///
    /// # Errors
    /// [`SessionError::NotQuarantined`] / [`SessionError::Unknown`] on
    /// lifecycle misses; [`SessionError::Store`] when the durable load
    /// fails (the session stays quarantined — retryable).
    pub fn revive_session(&mut self, id: SessionId) -> Result<u64, SessionError> {
        let store = self.store.clone();
        let Some(slot) = self.sessions.get_mut(&id) else {
            return Err(SessionError::Unknown(id));
        };
        if !matches!(slot.state, SessionState::Quarantined(_)) {
            return Err(SessionError::NotQuarantined(id));
        }
        let SessionState::Quarantined(salvage) =
            std::mem::replace(&mut slot.state, SessionState::CheckedOut)
        else {
            unreachable!("checked above")
        };
        // The slot sits CheckedOut while we decide — no serving race.
        let log = match salvage {
            Some(log) => *log,
            None => match store.as_ref().map(|s| s.load(id)) {
                Some(Ok((log, _))) => log,
                Some(Err(e)) => {
                    self.stats.store_errors += 1;
                    self.sessions.get_mut(&id).expect("slot exists").state =
                        SessionState::Quarantined(None);
                    return Err(SessionError::Store(e.to_string()));
                }
                None => {
                    self.sessions.get_mut(&id).expect("slot exists").state =
                        SessionState::Quarantined(None);
                    return Err(SessionError::Store(
                        "quarantined session has no salvaged log and no store".into(),
                    ));
                }
            },
        };
        let version = log.version();
        self.sessions.get_mut(&id).expect("slot exists").state = SessionState::Evicted(log);
        self.stats.revivals += 1;
        Ok(version)
    }

    /// Applies the configured idle policy (no-op without a threshold).
    /// Sweeps are strided — at most one `O(sessions)` scan per
    /// `threshold / 8` ticks — so individual operations stay amortized
    /// `O(1)` in fleet size, at the cost of sessions lingering up to 12.5%
    /// past their idle expiry.
    fn run_idle_policy(&mut self) {
        let Some(threshold) = self.idle_threshold else {
            return;
        };
        let stride = (threshold / 8).max(1);
        if self.clock.saturating_sub(self.last_sweep) >= stride {
            self.evict_idle();
        }
    }

    /// Evicts every live session idle for at least the configured
    /// threshold, tearing each down to its durable log; returns the
    /// evicted ids. Checked-out sessions are skipped (they are in use by
    /// definition). Explicit calls sweep immediately (no stride) and work
    /// without a threshold configured (they evict nothing).
    pub fn evict_idle(&mut self) -> Vec<SessionId> {
        self.last_sweep = self.clock;
        let Some(threshold) = self.idle_threshold else {
            return Vec::new();
        };
        let now = self.clock;
        let idle: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, slot)| {
                matches!(slot.state, SessionState::Live(_))
                    && now.saturating_sub(slot.last_touch) >= threshold
            })
            .map(|(&id, _)| id)
            .collect();
        for &id in &idle {
            self.evict_session(id);
        }
        idle
    }

    /// Tears one live session down to its durable log immediately;
    /// `false` for unknown, already-evicted, or checked-out sessions.
    pub fn evict_session(&mut self, id: SessionId) -> bool {
        let store = self.store.clone();
        let Some(slot) = self.sessions.get_mut(&id) else {
            return false;
        };
        if !matches!(slot.state, SessionState::Live(_)) {
            return false;
        }
        let SessionState::Live(engine) =
            std::mem::replace(&mut slot.state, SessionState::CheckedOut)
        else {
            unreachable!()
        };
        self.retired_stats.absorb(&engine.stats());
        let log = engine.into_log();
        match &store {
            // Spill: WAL tail shipped and fsynced, then the log leaves
            // memory entirely — the store is the session now.
            Some(store) if store.spill(id, &log).is_ok() => {
                self.sessions.get_mut(&id).expect("slot exists").state = SessionState::Spilled;
                self.stats.spills += 1;
            }
            // Spill failed: keep the log resident rather than lose
            // committed state (count the failure, stay serving).
            Some(_) => {
                self.sessions.get_mut(&id).expect("slot exists").state = SessionState::Evicted(log);
                self.stats.store_errors += 1;
            }
            None => {
                self.sessions.get_mut(&id).expect("slot exists").state = SessionState::Evicted(log);
            }
        }
        self.stats.evictions += 1;
        true
    }

    /// Refreshes every out-of-date live session; returns `(id, result)`
    /// pairs for the sessions that actually solved, in ascending id order.
    /// Evicted sessions are left cold (their next touch both rehydrates
    /// and solves); checked-out sessions belong to their worker.
    ///
    /// Warm sessions take their own incremental path; cold sessions are
    /// batch-solved in parallel via [`rank_many`] (each gets its own
    /// `Result` — one degenerate roster never blocks the fleet) and seeded
    /// into their warm-start caches.
    pub fn refresh_all(&mut self) -> Vec<(SessionId, Result<Ranking, RankError>)> {
        let now = self.tick();
        // Phase 1: advance kernel contexts and partition the fleet.
        let mut warm_ids: Vec<SessionId> = Vec::new();
        let mut cold_ids: Vec<SessionId> = Vec::new();
        for (&id, slot) in self.sessions.iter_mut() {
            let SessionState::Live(ref mut engine) = slot.state else {
                continue;
            };
            if engine.is_current() {
                continue;
            }
            engine.advance();
            if engine.has_warm_state() {
                warm_ids.push(id);
            } else {
                cold_ids.push(id);
            }
        }

        let mut results: Vec<(SessionId, Result<Ranking, RankError>)> = Vec::new();

        // Phase 2: batched cold solves across sessions via rank_many.
        if !cold_ids.is_empty() {
            let solved: Vec<Result<Ranking, RankError>> = {
                let matrices: Vec<&ResponseMatrix> = cold_ids
                    .iter()
                    .map(|id| match self.sessions[id].state {
                        SessionState::Live(ref engine) => engine.matrix(),
                        _ => unreachable!("partitioned as live above"),
                    })
                    .collect();
                rank_many(self.solver.as_ranker(), &matrices)
            };
            for (id, result) in cold_ids.into_iter().zip(solved) {
                if let Ok(ranking) = &result {
                    self.live_engine_mut_at(id, now)
                        .expect("partitioned as live above")
                        .seed_solution(ranking.clone());
                }
                results.push((id, result));
            }
        }

        // Phase 3: warm sessions ride their incremental path (a handful of
        // iterations each on an already-patched kernel context).
        for id in warm_ids {
            let result = self
                .live_engine_mut_at(id, now)
                .expect("partitioned as live above")
                .current_ranking();
            results.push((id, result));
        }

        results.sort_by_key(|(id, _)| *id);
        // The fleet-wide refresh is the planner's feedback point: fold the
        // predicted-vs-actual drift every engine reported since the last
        // sweep into the catalog's correction factors.
        if self.opts.plan_mode == hnd_plan::PlanMode::Auto {
            if let Some(planner) = self.opts.planner {
                planner.refresh();
            }
        }
        self.run_idle_policy();
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnd_core::{SolverKind, SolverOpts};

    fn manager() -> SessionManager {
        SessionManager::new(EngineOpts {
            solver: SolverKind::Power,
            solver_opts: SolverOpts {
                orient: false,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn staircase_responses(m: usize) -> Vec<(usize, usize, Option<u16>)> {
        (0..m)
            .flat_map(|j| (0..m - 1).map(move |i| (j, i, Some(u16::from(j > i)))))
            .collect()
    }

    #[test]
    fn sessions_are_independent() {
        let mut mgr = manager();
        let a = mgr.create_session(5, 4, &[2, 2, 2, 2]).unwrap();
        let b = mgr.create_session(7, 6, &[2; 6]).unwrap();
        mgr.submit_responses(a, staircase_responses(5)).unwrap();
        mgr.submit_responses(b, staircase_responses(7)).unwrap();
        let ra = mgr.current_ranking(a).unwrap();
        let rb = mgr.current_ranking(b).unwrap();
        assert_eq!(ra.len(), 5);
        assert_eq!(rb.len(), 7);
        assert!(mgr.drop_session(a));
        assert!(!mgr.drop_session(a));
        assert_eq!(mgr.len(), 1);
    }

    #[test]
    fn refresh_all_batches_cold_and_warms_the_rest() {
        let mut mgr = manager();
        let ids: Vec<SessionId> = (0..4)
            .map(|k| {
                let id = mgr
                    .create_session(6 + k, 5 + k, &vec![2u16; 5 + k])
                    .unwrap();
                mgr.submit_responses(id, staircase_responses(6 + k))
                    .unwrap();
                id
            })
            .collect();
        // All four are cold → batched rank_many path.
        let first = mgr.refresh_all();
        assert_eq!(first.len(), 4);
        for (id, result) in &first {
            assert!(result.is_ok(), "session {id} failed");
        }
        // Already current → nothing to do.
        assert!(mgr.refresh_all().is_empty());

        // Trickle an edit into two sessions → warm refresh only for those.
        let rebuilds_after_load = mgr.session(ids[1]).unwrap().stats().rebuilds;
        mgr.submit_responses(ids[1], [(0, 0, Some(1))]).unwrap();
        mgr.submit_responses(ids[3], [(1, 1, Some(1))]).unwrap();
        let second = mgr.refresh_all();
        let refreshed: Vec<SessionId> = second.iter().map(|(id, _)| *id).collect();
        assert_eq!(refreshed, vec![ids[1], ids[3]]);
        let s1 = mgr.session(ids[1]).unwrap().stats();
        assert_eq!(
            s1.rebuilds, rebuilds_after_load,
            "warm refresh must stay incremental (bulk load may rebuild)"
        );
        assert_eq!(s1.delta_applies, 1, "the trickle edit was a patch");
        assert_eq!(s1.warm_solves, 1);
    }

    #[test]
    fn batched_cold_refresh_agrees_with_direct_ranking() {
        // The rank_many path and the per-session path must produce the same
        // rankings (identical solver configuration).
        let mut mgr = manager();
        let id = mgr.create_session(8, 7, &[2; 7]).unwrap();
        mgr.submit_responses(id, staircase_responses(8)).unwrap();
        let batched = mgr.refresh_all().pop().unwrap().1.unwrap();

        let mut solo = manager();
        let sid = solo.create_session(8, 7, &[2; 7]).unwrap();
        solo.submit_responses(sid, staircase_responses(8)).unwrap();
        let direct = solo.current_ranking(sid).unwrap();
        assert_eq!(batched.order_best_to_worst(), direct.order_best_to_worst());
    }

    #[test]
    fn idle_sessions_evict_and_rehydrate_on_touch() {
        let mut mgr = manager();
        mgr.set_idle_threshold(Some(4));
        let idle = mgr.create_session(5, 4, &[2; 4]).unwrap();
        let busy = mgr.create_session(5, 4, &[2; 4]).unwrap();
        mgr.submit_responses(idle, staircase_responses(5)).unwrap();
        let before_eviction = mgr.current_ranking(idle).unwrap();

        // Hammer the busy session; the idle one crosses the threshold.
        for _ in 0..6 {
            mgr.submit_responses(busy, [(0, 0, Some(1)), (0, 0, Some(0))])
                .unwrap();
        }
        assert!(mgr.is_evicted(idle), "idle session must be torn down");
        assert!(!mgr.is_evicted(busy), "touched session must stay live");
        assert!(mgr.session(idle).is_none(), "no engine while evicted");
        assert_eq!(mgr.stats().evictions, 1);

        // The durable log is intact and the next touch rehydrates.
        assert_eq!(
            mgr.session_log(idle).unwrap().version(),
            before_eviction.len() as u64 * 4
        );
        let after = mgr.current_ranking(idle).unwrap();
        assert!(!mgr.is_evicted(idle));
        assert_eq!(mgr.stats().rehydrations, 1);
        assert_eq!(
            before_eviction.order_best_to_worst(),
            after.order_best_to_worst(),
            "rehydrated ranking must match the pre-eviction one"
        );
    }

    #[test]
    fn refresh_all_is_one_tick_and_never_evicts_its_own_work() {
        // Regression: refresh_all used to tick once per refreshed session,
        // so with a small idle threshold its trailing sweep could evict
        // the very sessions it had just refreshed (throwing away the warm
        // state rank_many computed).
        let mut mgr = manager();
        let ids: Vec<SessionId> = (0..6)
            .map(|_| {
                let id = mgr.create_session(5, 4, &[2; 4]).unwrap();
                mgr.submit_responses(id, staircase_responses(5)).unwrap();
                id
            })
            .collect();
        // Arm the policy only now: setup ops must not pre-evict the fleet.
        mgr.set_idle_threshold(Some(4));
        let refreshed = mgr.refresh_all();
        assert_eq!(refreshed.len(), 6);
        for &id in &ids {
            assert!(
                !mgr.is_evicted(id),
                "session {id} evicted by the refresh pass that warmed it"
            );
            assert!(mgr.session(id).unwrap().has_warm_state());
        }
        assert_eq!(mgr.stats().evictions, 0);
    }

    #[test]
    fn checkout_blocks_eviction_and_serving() {
        let mut mgr = manager();
        mgr.set_idle_threshold(Some(1));
        let id = mgr.create_session(4, 3, &[2; 3]).unwrap();
        let mut engine = mgr.take_engine(id).unwrap();
        assert!(
            matches!(mgr.take_engine(id), Err(SessionError::CheckedOut(_))),
            "double checkout rejected"
        );
        assert!(mgr.session(id).is_none());
        assert!(mgr.session_log(id).is_none());
        assert!(!mgr.evict_session(id), "checked-out session never evicts");
        assert!(mgr.evict_idle().is_empty());

        engine.submit_responses(staircase_responses(4)).unwrap();
        assert!(mgr.put_engine(id, engine).unwrap());
        assert_eq!(mgr.session(id).unwrap().version(), 12);

        // A put without a matching take is a typed error, not a panic.
        let extra = RankingEngine::new(4, 3, &[2; 3], mgr.engine_opts()).unwrap();
        assert!(matches!(
            mgr.put_engine(id, extra),
            Err(SessionError::NotCheckedOut(_))
        ));

        // Check-in onto a closed session drops the engine quietly.
        let engine = mgr.take_engine(id).unwrap();
        assert!(mgr.drop_session(id));
        assert!(!mgr.put_engine(id, engine).unwrap());
    }

    #[test]
    fn unknown_ids_are_typed_errors_not_panics() {
        let mut mgr = manager();
        assert!(matches!(
            mgr.submit_responses(99, [(0, 0, Some(1))]),
            Err(SessionError::Unknown(99))
        ));
        assert!(matches!(
            mgr.current_ranking(99),
            Err(SessionError::Unknown(99))
        ));
        assert!(matches!(
            mgr.take_engine(99),
            Err(SessionError::Unknown(99))
        ));
        assert!(matches!(
            mgr.revive_session(99),
            Err(SessionError::Unknown(99))
        ));
    }

    #[test]
    fn quarantine_preserves_state_and_revive_restores_it() {
        let mut mgr = manager();
        let id = mgr.create_session(5, 4, &[2; 4]).unwrap();
        mgr.submit_responses(id, staircase_responses(5)).unwrap();
        let before = mgr.current_ranking(id).unwrap();
        let committed = mgr.session_log(id).unwrap();

        // A worker checks the engine out, panics, and salvages the log.
        let engine = mgr.take_engine(id).unwrap();
        let salvage = engine.into_log();
        assert!(mgr.quarantine_session(id, Some(salvage)));
        assert!(mgr.is_quarantined(id));
        assert_eq!(mgr.stats().quarantines, 1);

        // Every touch is refused while quarantined…
        assert!(matches!(
            mgr.submit_responses(id, [(0, 0, Some(1))]),
            Err(SessionError::Quarantined(_))
        ));
        assert!(matches!(
            mgr.checkout(id),
            Err(SessionError::Quarantined(_))
        ));
        assert!(!mgr.evict_session(id), "quarantined sessions never evict");
        // …but the committed ledger is preserved and readable.
        assert_eq!(mgr.session_log(id).unwrap().version(), committed.version());

        // Revive rebuilds from the preserved log, bit-identically.
        let version = mgr.revive_session(id).unwrap();
        assert_eq!(version, committed.version());
        assert!(!mgr.is_quarantined(id));
        assert_eq!(mgr.stats().revivals, 1);
        let after = mgr.current_ranking(id).unwrap();
        assert_eq!(before.scores, after.scores, "bitwise-identical recovery");
        assert!(matches!(
            mgr.revive_session(id),
            Err(SessionError::NotQuarantined(_))
        ));
    }
}
