#![warn(missing_docs)]

//! # hnd-service
//!
//! The incremental ranking engine and warm-start serving layer: the
//! production face of the HITSnDIFFS reproduction for traffic where
//! responses arrive as a **stream of edits** rather than finished
//! matrices.
//!
//! ## Why incremental
//!
//! The paper's pipeline recomputes the second eigenvector of the update
//! matrix from scratch per response matrix: build the one-hot pattern
//! (`O(nnz)` sort-and-mirror), then iterate to convergence (tens of
//! `O(mn)` passes). Under serving traffic both costs are avoidable:
//!
//! * **The pattern barely changes.** A batch of k answers touches k rows
//!   and k columns of `C`. `hnd_response::ResponseOps::apply_delta`
//!   patches the slack-capacity CSR/CSC pattern and its degree scalings in
//!   `O(nnz(delta))` (`hnd_linalg::BinaryCsr::apply_delta`).
//! * **The spectrum barely moves.** Power/Arnoldi/Lanczos iterations
//!   restarted from the previous eigenpair (`hnd_core::SolveState`)
//!   converge in a handful of steps — spectral state is an excellent warm
//!   start under small perturbations.
//!
//! ## Architecture
//!
//! ```text
//!   clients (any thread)
//!        │  submit / ranking / catch_up …
//!        ▼
//!   SessionServer ── worker pool (HND_THREADS convention) draining
//!        │           per-session mailboxes: FIFO per session, sessions
//!        │           in parallel, each session single-writer (engine
//!        │           checkout) ── Reply<V> back to the caller
//!        ▼
//!   SessionManager (fleet: idle sessions evict to their durable logs
//!        │           and lazily rehydrate on touch; warm sessions
//!        │           refresh incrementally, cold ones batch through
//!        ▼           rank_many)
//!   RankingEngine ──────▶ Ranking
//!        │  kernel backend, auto-selected per EngineOpts::shard_plan:
//!        │    · ResponseOps (single-shard fast path, in-place patched)
//!        │    · hnd_shard::ShardedOps (huge sessions: user-range shards,
//!        │      shard-parallel kernels, per-shard delta routing,
//!        │      skew-triggered re-splits — results ≡ single ≤1e-12)
//!        │  Box<dyn SpectralSolver> (unified family)
//!        │  WarmStartCache (version-keyed LRU of rankings + states)
//!        ▲
//!   ResponseLog ──delta──▶ (versioned edit ledger: the durable state;
//!                           compact_range serves one-delta client
//!                           catch-up across any version span)
//! ```
//!
//! Every solve is keyed by the [`ResponseLog`](hnd_response::ResponseLog)
//! **version** (one monotone counter per committed edit), so repeat reads
//! are cache hits, deltas compose exactly (enforced by proptests against
//! full rebuilds), and a version mismatch can always fall back to a cold
//! rebuild without serving anything stale.
//!
//! ## Concurrency model
//!
//! [`SessionServer`] is the thread-safe front-end: every session owns a
//! FIFO **mailbox**, a scoped pool of workers (sized by the `HND_THREADS`
//! convention of [`hnd_linalg::parallel`]) drains ready mailboxes, and a
//! worker processes a session only while holding its engine *checked out*
//! of the [`SessionManager`] — per-session single-writer, cross-session
//! parallel, no lock held during a solve. Commands return [`Reply`]
//! handles immediately; waiting is the client's choice, so batch clients
//! pipeline. The concurrency battery (`tests/concurrency_stress.rs`)
//! pins the model down: under seeded multi-threaded storms every
//! session's final ranking matches a serial replay of its own log.
//!
//! ## Lifecycle: eviction, rehydration, catch-up — and the durable tier
//!
//! The durable state of a session is its log, nothing else. Idle sessions
//! (logical-clock threshold, see [`SessionManager::set_idle_threshold`])
//! are torn down to that log and transparently rebuilt on the next touch;
//! reconnecting clients resync from any cached version with one compacted
//! delta ([`ResponseLog::compact_range`](hnd_response::ResponseLog::compact_range)
//! via [`SessionServer::catch_up`]).
//!
//! With a [`SessionStore`] attached ([`SessionServer::with_store`] /
//! [`SessionManager::with_store`]) the log itself leaves memory: commits
//! stream into per-session crash-safe WALs (group-commit fsync batching),
//! idle evictions **spill** — binary snapshot + flushed WAL on disk,
//! nothing resident — and the next touch **restores** by snapshot read +
//! WAL-tail replay. A fresh process over the same store directory adopts
//! every session where the last one left off, and `catch_up` from a
//! version older than the in-memory history serves off the WAL instead of
//! failing. `tests/failure_injection.rs` pins restart and catch-up
//! equivalence; the crash/corruption battery lives in `hnd-store` itself.
//!
//! ## Overload & fault resilience
//!
//! The server is load-shedding, deadline-aware, and panic-isolating:
//!
//! * **Admission control** — per-session mailboxes are bounded
//!   ([`ServerOpts::mailbox_cap`]) and a global in-flight budget
//!   ([`ServerOpts::max_inflight`]) caps admitted-unfinished commands.
//!   Rejected commands fail *fast* with
//!   [`ServerError::Overloaded`] carrying a `retry_after_ms` hint derived
//!   from the live command-stage latency histogram. Shedding is
//!   priority-aware: mutating and bulk commands shed first (at ⅞ of the
//!   budget), cheap reads shed only at the hard cap, and `Close` is never
//!   shed.
//! * **Deadlines** — any command can carry a [`Deadline`] (see
//!   [`SessionServer::with_deadline`]); expired commands are dropped at
//!   dequeue with [`ServerError::DeadlineExceeded`] instead of wasting a
//!   solve, and [`Reply::wait_timeout`] bounds the client's wait.
//! * **Panic isolation** — a panic while a worker drives a session
//!   poisons *only that session*: its slot is quarantined (later commands
//!   get [`ServerError::Quarantined`]), its durable log is salvaged, all
//!   other sessions keep serving bit-identical results, and
//!   [`SessionServer::revive_session`] rebuilds the session from its log.
//! * **Chaos-tested durability** — the store layer accepts a
//!   deterministic seed-driven [`FaultPlan`] injecting transient / hard /
//!   torn faults per I/O class; transients are absorbed by bounded
//!   exponential backoff (retries counted in [`StoreStats`]). The chaos
//!   battery (`tests/resilience.rs`, `hnd-store/tests/chaos_proptests.rs`)
//!   proves every fault schedule ends bit-identical to a fault-free run or
//!   in counted, typed errors — never a hang, never silent loss.
//!
//! ## Quickstart
//!
//! ```
//! use hnd_service::{EngineOpts, RankingEngine};
//!
//! // A classroom of 4 students × 3 questions (2 options each).
//! let mut engine = RankingEngine::new(4, 3, &[2, 2, 2], EngineOpts::default()).unwrap();
//! engine.submit_responses([
//!     (0, 0, Some(0)), (1, 0, Some(0)), (2, 0, Some(1)), (3, 0, Some(1)),
//! ]).unwrap();
//! let before = engine.current_ranking().unwrap();
//!
//! // More answers trickle in: the next ranking is a delta-patch plus a
//! // warm-started solve, not a rebuild.
//! engine.submit_responses([(0, 1, Some(0)), (3, 1, Some(1))]).unwrap();
//! let after = engine.current_ranking().unwrap();
//! assert_eq!(before.len(), after.len());
//! assert_eq!(engine.stats().rebuilds, 0);
//! ```

pub mod cache;
pub mod engine;
pub mod server;
pub mod session;

pub use cache::{CachedSolve, WarmStartCache};
pub use engine::{EngineOpts, EngineStats, QueryTier, RankingEngine, COARSE_MAX_ITER};
pub use server::{
    Deadline, DeadlineClient, Reply, ServerError, ServerOpts, ServerSnapshot, SessionServer,
};
pub use session::{Checkout, ManagerStats, SessionError, SessionId, SessionManager};

// Re-export the building blocks callers configure the service with.
pub use hnd_core::{SolveOutcome, SolveState, SolverKind, SolverOpts, SpectralSolver, Target};
pub use hnd_plan::{PlanDecision, PlanMode, Planner};
pub use hnd_response::{
    RankError, Ranking, ResponseDelta, ResponseEdit, ResponseError, ResponseLog, ResponseMatrix,
    VersionedMatrix,
};
pub use hnd_shard::ShardPlan;
pub use hnd_store::{
    FaultKind, FaultOp, FaultPlan, FlushPolicy, RecoveryReport, RecoverySource, SessionStore,
    StoreError, StoreOpts, StoreStats, MAX_TRANSIENT_RETRIES,
};
pub use hnd_telemetry::{
    CheckoutKind, CommandKind, EventKind, HistogramSummary, MetricsSnapshot, SkipRefusal,
    StageSummary, TraceDump, TraceEvent, WorkerTrace,
};
