#![warn(missing_docs)]

//! # hnd-service
//!
//! The incremental ranking engine and warm-start serving layer: the
//! production face of the HITSnDIFFS reproduction for traffic where
//! responses arrive as a **stream of edits** rather than finished
//! matrices.
//!
//! ## Why incremental
//!
//! The paper's pipeline recomputes the second eigenvector of the update
//! matrix from scratch per response matrix: build the one-hot pattern
//! (`O(nnz)` sort-and-mirror), then iterate to convergence (tens of
//! `O(mn)` passes). Under serving traffic both costs are avoidable:
//!
//! * **The pattern barely changes.** A batch of k answers touches k rows
//!   and k columns of `C`. `hnd_response::ResponseOps::apply_delta`
//!   patches the slack-capacity CSR/CSC pattern and its degree scalings in
//!   `O(nnz(delta))` (`hnd_linalg::BinaryCsr::apply_delta`).
//! * **The spectrum barely moves.** Power/Arnoldi/Lanczos iterations
//!   restarted from the previous eigenpair (`hnd_core::SolveState`)
//!   converge in a handful of steps — spectral state is an excellent warm
//!   start under small perturbations.
//!
//! ## Architecture
//!
//! ```text
//!   submit_responses          current_ranking
//!        │                          │
//!        ▼                          ▼
//!   ResponseLog ──delta──▶ RankingEngine ──────▶ Ranking
//!   (versioned             │  ResponseOps (in-place patched kernels)
//!    edit ledger)          │  Box<dyn SpectralSolver> (unified family)
//!                          │  WarmStartCache (version-keyed LRU of
//!                          │    rankings + spectral states)
//!                          ▼
//!                    SessionManager (fleet: warm sessions refresh
//!                    incrementally, cold ones batch through rank_many)
//! ```
//!
//! Every solve is keyed by the [`ResponseLog`](hnd_response::ResponseLog)
//! **version** (one monotone counter per committed edit), so repeat reads
//! are cache hits, deltas compose exactly (enforced by proptests against
//! full rebuilds), and a version mismatch can always fall back to a cold
//! rebuild without serving anything stale.
//!
//! ## Quickstart
//!
//! ```
//! use hnd_service::{EngineOpts, RankingEngine};
//!
//! // A classroom of 4 students × 3 questions (2 options each).
//! let mut engine = RankingEngine::new(4, 3, &[2, 2, 2], EngineOpts::default()).unwrap();
//! engine.submit_responses([
//!     (0, 0, Some(0)), (1, 0, Some(0)), (2, 0, Some(1)), (3, 0, Some(1)),
//! ]).unwrap();
//! let before = engine.current_ranking().unwrap();
//!
//! // More answers trickle in: the next ranking is a delta-patch plus a
//! // warm-started solve, not a rebuild.
//! engine.submit_responses([(0, 1, Some(0)), (3, 1, Some(1))]).unwrap();
//! let after = engine.current_ranking().unwrap();
//! assert_eq!(before.len(), after.len());
//! assert_eq!(engine.stats().rebuilds, 0);
//! ```

pub mod cache;
pub mod engine;
pub mod session;

pub use cache::{CachedSolve, WarmStartCache};
pub use engine::{EngineOpts, EngineStats, RankingEngine};
pub use session::{SessionId, SessionManager};

// Re-export the building blocks callers configure the service with.
pub use hnd_core::{SolveOutcome, SolveState, SolverKind, SolverOpts, SpectralSolver};
pub use hnd_response::{
    RankError, Ranking, ResponseDelta, ResponseEdit, ResponseError, ResponseLog, ResponseMatrix,
    VersionedMatrix,
};
