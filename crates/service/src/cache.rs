//! The version-keyed warm-start cache.
//!
//! Serving traffic revisits rankings: clients poll `current_ranking` while
//! edits trickle in, dashboards re-read recent versions, and every new
//! solve wants the *nearest previous* spectral state as its warm start.
//! [`WarmStartCache`] is a small capacity-bounded LRU keyed by the
//! [`ResponseLog`](hnd_response::ResponseLog) version: lookups by exact
//! version serve repeat reads for free, and [`WarmStartCache::latest`]
//! hands the *highest-version* state to warm-start the next solve —
//! independent of access recency, so client reads of old versions can
//! never change (or evict) what the engine resumes from.
//!
//! The cache is deliberately dependency-free (a `Vec` scanned linearly):
//! capacities are single digits to low hundreds — the state vectors
//! themselves (`m` floats each) dominate the footprint, not the scan.

use hnd_core::SolveState;
use hnd_response::Ranking;

/// One cached solve: the ranking served to clients and the spectral state
/// used to warm-start subsequent solves.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The log version this solve corresponds to.
    pub version: u64,
    /// The (oriented) ranking at that version.
    pub ranking: Ranking,
    /// The raw spectral state at that version.
    pub state: SolveState,
}

/// A capacity-bounded LRU of [`CachedSolve`]s keyed by log version.
#[derive(Debug)]
pub struct WarmStartCache {
    /// Entries in LRU order: index 0 = least recently used.
    entries: Vec<CachedSolve>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl WarmStartCache {
    /// Creates a cache holding at most `capacity` solves (min 1).
    pub fn new(capacity: usize) -> Self {
        WarmStartCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached solves.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters for observability.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up an exact version, promoting it to most-recently-used.
    pub fn get(&mut self, version: u64) -> Option<&CachedSolve> {
        match self.entries.iter().position(|e| e.version == version) {
            Some(pos) => {
                self.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.push(entry);
                self.entries.last()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The highest-version entry (the natural warm start), without
    /// touching LRU order or counters.
    ///
    /// Deliberately *not* "most recently used": clients re-reading old
    /// versions promote them in LRU order, and a warm start taken from a
    /// promoted stale entry would silently cost extra iterations. The
    /// newest spectral state is always the right one to resume from.
    pub fn latest(&self) -> Option<&CachedSolve> {
        self.entries.iter().max_by_key(|e| e.version)
    }

    /// Inserts (or refreshes) a solve, evicting the least recently used
    /// entry when over capacity.
    ///
    /// Recency accounting: [`Self::latest`] takes `&self` and cannot bump
    /// LRU order itself, yet the newest entry is read by *every* solve as
    /// its warm start. That use is accounted here instead — the previous
    /// newest entry is promoted before the new solve is pushed — so the
    /// entry the engine uses most can never be the first evicted.
    pub fn insert(&mut self, solve: CachedSolve) {
        if let Some(newest) = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.version)
            .map(|(pos, _)| pos)
        {
            let entry = self.entries.remove(newest);
            self.entries.push(entry);
        }
        if let Some(pos) = self.entries.iter().position(|e| e.version == solve.version) {
            self.entries.remove(pos);
        }
        self.entries.push(solve);
        if self.entries.len() > self.capacity {
            // The newest entry sits at the back after the promotion above;
            // the true LRU is at the front, and it is never the newest
            // (len ≥ 2 here). The filter is belt-and-braces.
            let newest = self.entries.iter().map(|e| e.version).max().unwrap();
            let victim = self
                .entries
                .iter()
                .position(|e| e.version != newest)
                .expect("a non-newest entry exists");
            self.entries.remove(victim);
        }
    }

    /// Drops every entry (e.g. after a roster change).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(version: u64) -> CachedSolve {
        CachedSolve {
            version,
            ranking: Ranking::from_scores(vec![version as f64]),
            state: SolveState::from_scores(vec![version as f64]),
        }
    }

    #[test]
    fn lru_evicts_oldest_unused() {
        let mut cache = WarmStartCache::new(2);
        cache.insert(solve(1));
        cache.insert(solve(2));
        assert!(cache.get(1).is_some()); // promote 1…
        cache.insert(solve(3)); // …but 2 warm-started this solve: evict 1
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn latest_tracks_highest_version_not_recency() {
        let mut cache = WarmStartCache::new(4);
        assert!(cache.latest().is_none());
        cache.insert(solve(10));
        cache.insert(solve(11));
        assert_eq!(cache.latest().unwrap().version, 11);
        // A get() promotes in LRU order but must NOT change the warm
        // start: the newest spectral state stays the resume point.
        cache.get(10);
        assert_eq!(cache.latest().unwrap().version, 11);
    }

    #[test]
    fn newest_version_survives_stale_promotion_storm() {
        // Regression: latest() never bumped LRU recency while get() did,
        // so a burst of reads on old versions could make the
        // highest-version entry — the one every warm start uses — the
        // first evicted.
        let mut cache = WarmStartCache::new(3);
        cache.insert(solve(1));
        cache.insert(solve(2));
        cache.insert(solve(3));
        for _ in 0..5 {
            cache.get(1);
            cache.get(2);
            cache.latest(); // warm-start reads: recency-neutral
        }
        cache.insert(solve(4));
        // v3 (the pinned newest at eviction time… now superseded by 4) must
        // not have been the victim: the LRU among {1, 2} went instead.
        assert!(cache.latest().is_some_and(|e| e.version == 4));
        let surviving: Vec<u64> = {
            let mut v: Vec<u64> = (1..=4).filter(|&k| cache.get(k).is_some()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(surviving, vec![2, 3, 4], "eviction follows access order");
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut cache = WarmStartCache::new(2);
        cache.insert(solve(1));
        cache.insert(solve(2));
        cache.insert(solve(1)); // refresh, no growth
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.latest().unwrap().version,
            2,
            "latest = highest version"
        );
    }

    #[test]
    fn hit_miss_counters() {
        let mut cache = WarmStartCache::new(1);
        cache.insert(solve(5));
        cache.get(5);
        cache.get(6);
        assert_eq!(cache.stats(), (1, 1));
    }
}
