//! The version-keyed warm-start cache.
//!
//! Serving traffic revisits rankings: clients poll `current_ranking` while
//! edits trickle in, dashboards re-read recent versions, and every new
//! solve wants the *nearest previous* spectral state as its warm start.
//! [`WarmStartCache`] is a small capacity-bounded LRU keyed by the
//! [`ResponseLog`](hnd_response::ResponseLog) version: lookups by exact
//! version serve repeat reads for free, and [`WarmStartCache::latest`]
//! hands the most recently inserted state to warm-start the next solve.
//!
//! The cache is deliberately dependency-free (a `Vec` scanned linearly):
//! capacities are single digits to low hundreds — the state vectors
//! themselves (`m` floats each) dominate the footprint, not the scan.

use hnd_core::SolveState;
use hnd_response::Ranking;

/// One cached solve: the ranking served to clients and the spectral state
/// used to warm-start subsequent solves.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The log version this solve corresponds to.
    pub version: u64,
    /// The (oriented) ranking at that version.
    pub ranking: Ranking,
    /// The raw spectral state at that version.
    pub state: SolveState,
}

/// A capacity-bounded LRU of [`CachedSolve`]s keyed by log version.
#[derive(Debug)]
pub struct WarmStartCache {
    /// Entries in LRU order: index 0 = least recently used.
    entries: Vec<CachedSolve>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl WarmStartCache {
    /// Creates a cache holding at most `capacity` solves (min 1).
    pub fn new(capacity: usize) -> Self {
        WarmStartCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached solves.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters for observability.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Looks up an exact version, promoting it to most-recently-used.
    pub fn get(&mut self, version: u64) -> Option<&CachedSolve> {
        match self.entries.iter().position(|e| e.version == version) {
            Some(pos) => {
                self.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.push(entry);
                self.entries.last()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The most-recently-used entry (the natural warm start), without
    /// touching LRU order or counters.
    pub fn latest(&self) -> Option<&CachedSolve> {
        self.entries.last()
    }

    /// Inserts (or refreshes) a solve, evicting the least recently used
    /// entry when over capacity.
    pub fn insert(&mut self, solve: CachedSolve) {
        if let Some(pos) = self.entries.iter().position(|e| e.version == solve.version) {
            self.entries.remove(pos);
        }
        self.entries.push(solve);
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    /// Drops every entry (e.g. after a roster change).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(version: u64) -> CachedSolve {
        CachedSolve {
            version,
            ranking: Ranking::from_scores(vec![version as f64]),
            state: SolveState::from_scores(vec![version as f64]),
        }
    }

    #[test]
    fn lru_evicts_oldest_unused() {
        let mut cache = WarmStartCache::new(2);
        cache.insert(solve(1));
        cache.insert(solve(2));
        assert!(cache.get(1).is_some()); // promote 1
        cache.insert(solve(3)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn latest_tracks_most_recent_insert() {
        let mut cache = WarmStartCache::new(4);
        assert!(cache.latest().is_none());
        cache.insert(solve(10));
        cache.insert(solve(11));
        assert_eq!(cache.latest().unwrap().version, 11);
        // A get() promotes, making the hit the latest.
        cache.get(10);
        assert_eq!(cache.latest().unwrap().version, 10);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut cache = WarmStartCache::new(2);
        cache.insert(solve(1));
        cache.insert(solve(2));
        cache.insert(solve(1)); // refresh, no growth
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.latest().unwrap().version, 1);
    }

    #[test]
    fn hit_miss_counters() {
        let mut cache = WarmStartCache::new(1);
        cache.insert(solve(5));
        cache.get(5);
        cache.get(6);
        assert_eq!(cache.stats(), (1, 1));
    }
}
