//! The concurrent serving front-end: a worker pool over per-session
//! mailboxes.
//!
//! [`SessionServer`] turns the synchronous [`SessionManager`] into a
//! thread-safe service. Every session owns a **mailbox** (a FIFO command
//! queue); a pool of worker threads drains ready mailboxes, and while a
//! worker is processing a session it holds that session's engine *checked
//! out* of the manager ([`SessionManager::take_engine`]) — so each session
//! is strictly single-writer while different sessions solve fully in
//! parallel. The global mutex guards only queue bookkeeping and engine
//! checkout/check-in, never a solve.
//!
//! ```text
//!   clients (any thread)               worker pool (HND_THREADS)
//!   ──────────────────────             ─────────────────────────
//!   submit ─┐                          pop ready session id
//!   ranking ─┼─▶ session mailbox ──▶   check out engine
//!   catch_up┘    (FIFO per id)         drain mailbox, process commands
//!        ▲                             check engine back in
//!        └──────── Reply<V> ◀───────── send each reply
//! ```
//!
//! * **Ordering.** Commands to one session execute in enqueue order
//!   (FIFO mailbox + single writer). Commands to different sessions have
//!   no ordering relationship — that is what buys the parallelism.
//! * **Worker count.** [`ServerOpts::workers`] follows the `HND_THREADS`
//!   convention of [`hnd_linalg::parallel`]: `0` means "one worker per
//!   effective thread". Inside a worker, kernel parallelism is scaled down
//!   to `threads / workers` so the pool and the gather kernels do not
//!   oversubscribe the machine; at `HND_THREADS=1` the server degrades to
//!   one worker running fully serial kernels.
//! * **Replies.** Every call returns a [`Reply`] immediately; [`Reply::wait`]
//!   blocks for the result. Pipelining (enqueue many, wait later) is how
//!   batch clients get throughput. [`Reply::wait_settled`] additionally
//!   blocks until the worker checked the session back in — the barrier
//!   tests and orderly teardowns need before observing manager state.
//! * **Overload.** Admission control is enforced at enqueue:
//!   [`ServerOpts::mailbox_cap`] bounds each session's queue and
//!   [`ServerOpts::max_inflight`] bounds the server-wide count of
//!   admitted, unfinished commands. A full server sheds with
//!   [`ServerError::Overloaded`] (carrying a retry hint derived from the
//!   observed median command latency) instead of queueing unboundedly.
//!   Shedding is priority-aware: mutating/bulk commands (`submit`,
//!   `catch_up`, `session_log`) shed first at ~7/8 of the global budget,
//!   cheap certified reads (`ranking`, `top_k`, `rank_of`, `stats`,
//!   `snapshot`) only at the full budget, and `close_session` is never
//!   shed (it frees capacity).
//! * **Deadlines.** [`SessionServer::with_deadline`] stamps commands with
//!   a [`Deadline`]; a worker drops a command whose deadline passed while
//!   it sat queued ([`ServerError::DeadlineExceeded`], counted and
//!   trace-recorded) rather than spending a solve on a reply nobody is
//!   waiting for.
//! * **Panic isolation.** A panic while executing a command poisons *only
//!   its session*: the worker survives, salvages what it can of the
//!   session's log, and the manager quarantines the session. Later
//!   commands fail fast with [`ServerError::Quarantined`]; the durable
//!   log is untouched, and [`SessionServer::revive_session`] rebuilds the
//!   session from it. Other sessions' rankings are bit-identical to a run
//!   without the panic.
//! * **Eviction.** The manager's idle policy (logical-clock ticks, see
//!   [`SessionManager::set_idle_threshold`]) sweeps at check-ins on an
//!   amortized stride; checked-out (busy) sessions are never evicted, and
//!   rehydration builds run outside the global lock (the worker receives
//!   the durable log and rebuilds the engine itself).
//! * **Catch-up.** [`SessionServer::catch_up`] returns the compacted delta
//!   from any cached client version to head
//!   ([`ResponseLog::compact_range`](hnd_response::ResponseLog::compact_range)),
//!   so reconnecting clients resync in one `apply_delta` instead of
//!   re-downloading a snapshot.
//! * **Shutdown.** Dropping the server drains the ready queue, resolves
//!   late commands with [`ServerError::Terminated`], and joins the pool.

use crate::engine::{EngineOpts, EngineStats, RankingEngine};
use crate::session::{Checkout, ManagerStats, SessionError, SessionId, SessionManager};
use hnd_linalg::parallel;
use hnd_response::{
    rank_many, RankError, Ranking, ResponseDelta, ResponseError, ResponseLog, ResponseMatrix,
};
use hnd_store::{SessionStore, StoreStats};
use hnd_telemetry::{
    CheckoutKind, CommandKind, Counter, EventKind, MetricsSnapshot, Probe, Stage, StageSummary,
    TelemetryHub, TraceDump,
};
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`SessionServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerOpts {
    /// Worker threads in the pool; `0` (the default) = one per effective
    /// kernel thread (the `HND_THREADS` convention).
    pub workers: usize,
    /// Idle-eviction threshold in manager ticks (`None` = never evict),
    /// forwarded to [`SessionManager::set_idle_threshold`].
    pub idle_threshold: Option<u64>,
    /// Engine configuration for every session.
    pub engine: EngineOpts,
    /// Cold solves a worker batches per pass: when a rehydration needs a
    /// solve, up to this many *other* evicted solve-hungry sessions are
    /// pulled into the same pass and solved together through
    /// [`rank_many`] (batch-level parallelism during reconnect storms).
    /// The batched pass re-prepares each session's matrix from scratch —
    /// cross-session parallelism is what buys that back, so on a fully
    /// subscribed box batching is a measured net loss (the `serving_cold`
    /// bench pins both regimes). `0` (the default) = auto: batch 8 when
    /// the worker has inner kernel threads to spend, one-at-a-time
    /// otherwise. `1` disables batching unconditionally.
    pub cold_batch: usize,
    /// Whether the telemetry hub records (flight-recorder events, stage
    /// histograms, hub counters). Default **on** — the `telemetry` bench
    /// group's pair gate holds the overhead at ≤5% of a serving wave
    /// round. Off, every record site is a single branch and the trace
    /// rings hold no memory.
    pub telemetry: bool,
    /// Most commands one session's mailbox may hold; enqueues beyond it
    /// shed with [`ServerError::Overloaded`]. `0` (the default) =
    /// unbounded — the pre-admission-control behaviour.
    pub mailbox_cap: usize,
    /// Most admitted-but-unfinished commands server-wide (queued in any
    /// mailbox or drained into a worker's pass). Low-priority commands
    /// shed at `cap − cap/8`, cheap reads at `cap`; `close_session` is
    /// always admitted. `0` (the default) = unbounded.
    pub max_inflight: usize,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            workers: 0,
            idle_threshold: None,
            engine: EngineOpts::default(),
            cold_batch: 0,
            telemetry: true,
            mailbox_cap: 0,
            max_inflight: 0,
        }
    }
}

/// The unified per-session observability snapshot returned by
/// [`SessionServer::snapshot`]: every layer's counters in one reply, taken
/// through the session's own mailbox so it is ordered with the commands
/// around it. Worker-local store-error counts accrued in the same pass are
/// already folded into `manager`.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    /// The session's engine counters.
    pub engine: EngineStats,
    /// Fleet lifecycle counters (evictions, rehydrations, spills,
    /// restores, store errors — including this pass's).
    pub manager: ManagerStats,
    /// Durable-tier counters (`None` without a store).
    pub store: Option<StoreStats>,
    /// Per-stage latency summaries from the telemetry hub (empty with
    /// telemetry off).
    pub telemetry: Vec<StageSummary>,
}

/// Errors surfaced to server clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The session id is unknown (never created, or already closed).
    UnknownSession(SessionId),
    /// The session's log rejected the request.
    Response(ResponseError),
    /// The solve failed.
    Rank(RankError),
    /// The durable store could not serve the request (stringly typed:
    /// `hnd_store::StoreError` wraps `std::io::Error`, which is neither
    /// `Clone` nor `PartialEq`).
    Store(String),
    /// Admission control shed the command: the session's mailbox or the
    /// server-wide in-flight budget is full. Back off for roughly
    /// `retry_after_ms` (the observed median command latency — the time
    /// one queued slot takes to clear) and retry.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The command's [`Deadline`] passed while it sat queued; it was
    /// dropped at dequeue without executing.
    DeadlineExceeded,
    /// The session was poisoned by a panic and sits in quarantine; revive
    /// it from its durable log with [`SessionServer::revive_session`].
    Quarantined(SessionId),
    /// The server is shutting down (or a worker died mid-request).
    Terminated,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::Response(e) => write!(f, "{e}"),
            ServerError::Rank(e) => write!(f, "{e}"),
            ServerError::Store(detail) => write!(f, "{detail}"),
            ServerError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after ~{retry_after_ms}ms")
            }
            ServerError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServerError::Quarantined(id) => write!(f, "session {id} is quarantined"),
            ServerError::Terminated => write!(f, "server terminated"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<ResponseError> for ServerError {
    fn from(e: ResponseError) -> Self {
        ServerError::Response(e)
    }
}

impl From<RankError> for ServerError {
    fn from(e: RankError) -> Self {
        ServerError::Rank(e)
    }
}

impl From<SessionError> for ServerError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Unknown(id) => ServerError::UnknownSession(id),
            SessionError::Quarantined(id) => ServerError::Quarantined(id),
            SessionError::Response(e) => ServerError::Response(e),
            SessionError::Rank(e) => ServerError::Rank(e),
            SessionError::Store(detail) => ServerError::Store(detail),
            // Checkout-discipline violations never escape the server's
            // single-writer protocol; surface them as internal errors.
            other => ServerError::Store(other.to_string()),
        }
    }
}

/// A per-command execution deadline, resolved against the queue: a worker
/// drops (never executes) a command whose deadline passed while it waited
/// in its mailbox, failing its reply with
/// [`ServerError::DeadlineExceeded`]. [`Deadline::NONE`] — the default for
/// every plain [`SessionServer`] method — never expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: the command waits as long as it takes.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline(Instant::now().checked_add(budget))
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline(Some(at))
    }

    /// `true` once the deadline has passed.
    pub fn expired(self) -> bool {
        self.0.is_some_and(|at| Instant::now() > at)
    }

    /// Nanoseconds past the deadline (0 when unexpired or `NONE`).
    fn late_ns(self) -> u64 {
        self.0.map_or(0, |at| {
            Instant::now().saturating_duration_since(at).as_nanos() as u64
        })
    }
}

/// A pending server reply. Obtain the value with [`Reply::wait`]; holding
/// several replies before waiting pipelines commands through the pool.
#[derive(Debug)]
pub struct Reply<V> {
    rx: Receiver<Result<V, ServerError>>,
    settled: Receiver<()>,
}

impl<V> Reply<V> {
    fn pair() -> (Sender<Result<V, ServerError>>, Sender<()>, Self) {
        let (tx, rx) = channel();
        let (settle, settled) = channel();
        (tx, settle, Reply { rx, settled })
    }

    /// Blocks until the command has been processed.
    pub fn wait(self) -> Result<V, ServerError> {
        self.rx.recv().unwrap_or(Err(ServerError::Terminated))
    }

    /// Blocks until the command has been processed, but at most `timeout`.
    /// `None` means the reply has not resolved yet — the command is still
    /// queued or executing, and the `Reply` stays valid for another wait.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<V, ServerError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServerError::Terminated)),
        }
    }

    /// Like [`Reply::wait`], but additionally blocks until the worker that
    /// processed the command has checked the session back into the
    /// manager. `wait` returns at execution time — *before* check-in — so
    /// manager-level state (eviction flags, [`ManagerStats`], quarantine)
    /// observed right after a plain `wait` can race the check-in;
    /// `wait_settled` closes that window. Commands that never reach a
    /// worker (rejected, shed, served directly off the durable log) settle
    /// immediately.
    pub fn wait_settled(self) -> Result<V, ServerError> {
        let result = self.rx.recv().unwrap_or(Err(ServerError::Terminated));
        // Resolves on the worker's post-check-in send, or on disconnect
        // when the command never reached a worker.
        let _ = self.settled.recv();
        result
    }
}

/// One queued command; each carries its reply channel.
enum Command {
    Submit(
        Vec<(usize, usize, Option<u16>)>,
        Sender<Result<u64, ServerError>>,
    ),
    Ranking(Sender<Result<Ranking, ServerError>>),
    #[allow(clippy::type_complexity)]
    TopK(usize, Sender<Result<Vec<(usize, f64)>, ServerError>>),
    RankOf(usize, Sender<Result<usize, ServerError>>),
    CatchUp(u64, Sender<Result<ResponseDelta, ServerError>>),
    Stats(Sender<Result<EngineStats, ServerError>>),
    Snapshot(Sender<Result<ServerSnapshot, ServerError>>),
    SessionLog(Sender<Result<ResponseLog, ServerError>>),
    Close(Sender<Result<(), ServerError>>),
    /// Test-only: panics inside the worker's execution guard, exercising
    /// the quarantine path end to end.
    InjectPanic(Sender<Result<(), ServerError>>),
}

impl Command {
    /// Whether executing this command runs (or may run) a spectral solve —
    /// the commands worth batching cold rehydrations for.
    fn needs_solve(&self) -> bool {
        matches!(
            self,
            Command::Ranking(_) | Command::TopK(..) | Command::RankOf(..)
        )
    }

    /// The command's flight-recorder tag.
    fn kind(&self) -> CommandKind {
        match self {
            Command::Submit(..) => CommandKind::Submit,
            Command::Ranking(_) => CommandKind::Ranking,
            Command::TopK(..) => CommandKind::TopK,
            Command::RankOf(..) => CommandKind::RankOf,
            Command::CatchUp(..) => CommandKind::CatchUp,
            Command::Stats(_) => CommandKind::Stats,
            Command::Snapshot(_) => CommandKind::Snapshot,
            Command::SessionLog(_) => CommandKind::SessionLog,
            Command::Close(_) => CommandKind::Close,
            Command::InjectPanic(_) => CommandKind::Inject,
        }
    }

    /// Whether admission control may shed this command early (at
    /// `cap − cap/8` of the global budget). Cheap certified reads shed
    /// last; `Close` is never shed at all (it *frees* capacity).
    fn sheds_early(&self) -> bool {
        matches!(
            self,
            Command::Submit(..)
                | Command::CatchUp(..)
                | Command::SessionLog(_)
                | Command::InjectPanic(_)
        )
    }

    /// Resolves the command's reply with `err` without executing it.
    fn reject(self, err: ServerError) {
        match self {
            Command::Submit(_, tx) => drop(tx.send(Err(err))),
            Command::Ranking(tx) => drop(tx.send(Err(err))),
            Command::TopK(_, tx) => drop(tx.send(Err(err))),
            Command::RankOf(_, tx) => drop(tx.send(Err(err))),
            Command::CatchUp(_, tx) => drop(tx.send(Err(err))),
            Command::Stats(tx) => drop(tx.send(Err(err))),
            Command::Snapshot(tx) => drop(tx.send(Err(err))),
            Command::SessionLog(tx) => drop(tx.send(Err(err))),
            Command::Close(tx) => drop(tx.send(Err(err))),
            Command::InjectPanic(tx) => drop(tx.send(Err(err))),
        }
    }

    /// Executes against a checked-out engine; sets `close` on
    /// [`Command::Close`]. With a store attached, commits stream into the
    /// session's WAL and catch-up falls through to it when the in-memory
    /// history has been truncated; store *write* failures never fail the
    /// client (the commit already happened) — they accumulate in
    /// `store_errors` for the check-in to fold into [`ManagerStats`].
    /// `record` runs with the reply's `Ok`/`Err` outcome *before* the
    /// reply is sent, so a client whose [`Reply::wait`] has returned is
    /// guaranteed to find its command already in the telemetry hub — no
    /// sampling race between `wait` and [`SessionServer::metrics`].
    #[allow(clippy::too_many_arguments)]
    fn execute(
        self,
        id: SessionId,
        engine: &mut RankingEngine,
        store: Option<&SessionStore>,
        store_errors: &mut u64,
        close: &mut bool,
        mgr_stats: ManagerStats,
        hub: &TelemetryHub,
        record: &dyn Fn(bool),
    ) {
        match self {
            Command::Submit(batch, tx) => {
                let result = engine.submit_responses(batch).map_err(ServerError::from);
                if result.is_ok() {
                    if let Some(store) = store {
                        let started = engine.probe().map(|_| Instant::now());
                        let synced = store.sync_from(id, engine.log());
                        if let (Some(started), Some(p)) = (started, engine.probe()) {
                            p.event(EventKind::WalAppend {
                                ns: started.elapsed().as_nanos() as u64,
                            });
                        }
                        if synced.is_err() {
                            *store_errors += 1;
                        }
                    }
                }
                record(result.is_ok());
                let _ = tx.send(result);
            }
            Command::Ranking(tx) => {
                let result = engine.current_ranking().map_err(ServerError::from);
                record(result.is_ok());
                let _ = tx.send(result);
            }
            Command::TopK(k, tx) => {
                let result = engine.top_k(k).map_err(ServerError::from);
                record(result.is_ok());
                let _ = tx.send(result);
            }
            Command::RankOf(user, tx) => {
                let result = engine.rank_of(user).map_err(ServerError::from);
                record(result.is_ok());
                let _ = tx.send(result);
            }
            Command::CatchUp(from, tx) => {
                let head = engine.version();
                let result = match engine.log().compact_range(from, head) {
                    Ok(delta) => Ok(delta),
                    // The ledger no longer reaches back to the client's
                    // version (history_retention truncated it), but the
                    // session's WAL does: serve the delta off disk
                    // instead of failing the resync.
                    Err(ResponseError::HistoryUnavailable { .. }) if store.is_some() => store
                        .expect("checked above")
                        .catch_up(id, from)
                        .map_err(|e| ServerError::Store(e.to_string())),
                    Err(e) => Err(ServerError::from(e)),
                };
                record(result.is_ok());
                let _ = tx.send(result);
            }
            Command::Stats(tx) => {
                record(true);
                let _ = tx.send(Ok(engine.stats()));
            }
            Command::Snapshot(tx) => {
                // Fold this pass's accrued store errors in so the caller
                // sees a count consistent with the commands ordered before
                // the snapshot in the same mailbox drain.
                let mut manager = mgr_stats;
                manager.store_errors += *store_errors;
                record(true);
                let _ = tx.send(Ok(ServerSnapshot {
                    engine: engine.stats(),
                    manager,
                    store: store.map(SessionStore::stats),
                    telemetry: hub.stage_summaries(),
                }));
            }
            Command::SessionLog(tx) => {
                record(true);
                let _ = tx.send(Ok(engine.log().clone()));
            }
            Command::Close(tx) => {
                *close = true;
                record(true);
                let _ = tx.send(Ok(()));
            }
            Command::InjectPanic(tx) => {
                // The reply channel dies with the unwind: the injecting
                // caller's `wait` resolves `Terminated`, every *later*
                // command on the session gets `Quarantined`.
                record(false);
                drop(tx);
                panic!("injected worker panic");
            }
        }
    }
}

/// A command sitting in a mailbox, stamped for the flight recorder at
/// enqueue time (`seq`/`at_ns` are zero with telemetry off).
struct Queued {
    cmd: Command,
    /// Checked at dequeue: expired commands are dropped, not executed.
    deadline: Deadline,
    /// Fired (or dropped) once the session is checked back in — the
    /// [`Reply::wait_settled`] barrier.
    settle: Sender<()>,
    /// Hub-global command sequence number (links the client ring's
    /// `Enqueue` event to the worker ring's lifecycle events).
    seq: u64,
    /// Hub-epoch nanosecond stamp taken at enqueue (dwell = dequeue − this).
    at_ns: u64,
}

/// Per-session command queue.
struct Mailbox {
    queue: VecDeque<Queued>,
    /// Engine checked out: a worker is processing this session.
    busy: bool,
    /// Already sitting in the ready queue (at most one entry per session).
    enqueued: bool,
}

impl Mailbox {
    fn empty() -> Self {
        Mailbox {
            queue: VecDeque::new(),
            busy: false,
            enqueued: false,
        }
    }
}

struct Inner {
    mgr: SessionManager,
    mailboxes: BTreeMap<SessionId, Mailbox>,
    ready: VecDeque<SessionId>,
    /// Admitted commands not yet finished: queued in any mailbox or
    /// drained into a worker's pass. Decremented at check-in (and on every
    /// reject of an already-admitted command), so it bounds work in the
    /// system, not just queue depth.
    inflight: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<Inner>,
    work: Condvar,
}

/// How one session's pass through a worker ended.
enum Outcome {
    /// Commands executed; the engine comes back (or the session closed).
    Done {
        engine: Box<RankingEngine>,
        close: bool,
    },
    /// A command panicked (or rehydration failed): quarantine the session,
    /// preserving whatever log the worker could salvage from the engine.
    Quarantine { salvage: Option<ResponseLog> },
}

/// The concurrent session server: a worker pool draining per-session
/// mailboxes over a [`SessionManager`]. See the module docs for the
/// architecture.
pub struct SessionServer {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    hub: Arc<TelemetryHub>,
    mailbox_cap: usize,
    max_inflight: usize,
}

/// Suppresses stderr noise from the *injected* test panic (and only it):
/// the quarantine batteries fire `inject_panic` on purpose, and the
/// default hook's backtrace spam would drown their output. Real panics
/// still reach the previously installed hook. Installed once per process,
/// the first time a server starts.
fn install_panic_filter() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected worker panic"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected worker panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

impl SessionServer {
    /// Starts the worker pool. With `opts.workers == 0` the pool follows
    /// the effective kernel thread count (`HND_THREADS` convention).
    pub fn new(opts: ServerOpts) -> Self {
        Self::start(opts, SessionManager::new(opts.engine))
    }

    /// Starts the worker pool over a durable [`SessionStore`]: every
    /// session the store already holds is adopted (same ids, rehydrated
    /// lazily from snapshot + WAL on first touch — the restart path),
    /// commits stream into per-session WALs, idle evictions spill to disk,
    /// and [`SessionServer::catch_up`] serves pre-truncation versions off
    /// the WAL instead of failing with `HistoryUnavailable`.
    pub fn with_store(opts: ServerOpts, store: Arc<SessionStore>) -> Self {
        Self::start(opts, SessionManager::with_store(opts.engine, store))
    }

    fn start(opts: ServerOpts, mut mgr: SessionManager) -> Self {
        install_panic_filter();
        let total = parallel::threads();
        // The single resolution point for the HND_THREADS convention —
        // benches/examples sizing their own pools go through it too.
        let workers = parallel::resolve_workers(opts.workers);
        // Split the machine between the pool and the in-solve kernels so a
        // fleet of sessions does not oversubscribe: workers × inner ≈ total.
        let inner_threads = (total / workers).max(1);
        // Resolve the auto cold-batch: without inner parallelism the
        // batched pass has nothing to amortize its duplicated prepares.
        let cold_batch = match opts.cold_batch {
            0 if inner_threads > 1 => 8,
            0 => 1,
            n => n,
        };
        mgr.set_idle_threshold(opts.idle_threshold);
        // One flight-recorder ring per worker plus the client ring (direct
        // serves and rejects record from caller threads).
        let hub = TelemetryHub::new(workers + 1, opts.telemetry);
        let store = mgr.store().cloned();
        if let Some(store) = &store {
            store.attach_telemetry(hub.clone());
        }
        // Adopted (spilled) sessions need mailboxes from the start.
        let mailboxes: BTreeMap<SessionId, Mailbox> = mgr
            .session_ids()
            .into_iter()
            .map(|id| (id, Mailbox::empty()))
            .collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(Inner {
                mgr,
                mailboxes,
                ready: VecDeque::new(),
                inflight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });

        let handles = (0..workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                let store = store.clone();
                let hub = hub.clone();
                std::thread::Builder::new()
                    .name(format!("hnd-serve-{k}"))
                    .spawn(move || worker_loop(&shared, inner_threads, cold_batch, store, hub, k))
                    .expect("spawn server worker")
            })
            .collect();
        SessionServer {
            shared,
            handles,
            workers,
            hub,
            mailbox_cap: opts.mailbox_cap,
            max_inflight: opts.max_inflight,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.shared.state.lock().expect("server state poisoned")
    }

    /// Opens a session over an empty roster; returns its id immediately
    /// (session creation is cheap and needs no mailbox round-trip).
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn create_session(
        &self,
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<SessionId, ServerError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(ServerError::Terminated);
        }
        let id = st.mgr.create_session(n_users, n_items, options_per_item)?;
        st.mailboxes.insert(id, Mailbox::empty());
        Ok(id)
    }

    /// Opens a session over a pre-filled log (bulk load / rehydration of
    /// externally durable state).
    pub fn create_session_from_log(&self, log: ResponseLog) -> Result<SessionId, ServerError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(ServerError::Terminated);
        }
        let id = st.mgr.create_session_from_log(log)?;
        st.mailboxes.insert(id, Mailbox::empty());
        Ok(id)
    }

    /// Flight-records a command served directly off the durable log (no
    /// mailbox round-trip) on the client ring, and feeds the end-to-end
    /// histogram so direct serves show up in the latency profile.
    fn record_direct(&self, id: SessionId, seq: u64, at_ns: u64, kind: CommandKind, ok: bool) {
        if !self.hub.enabled() {
            return;
        }
        let e2e_ns = self.hub.now_ns().saturating_sub(at_ns);
        self.hub.record(
            self.hub.client_ring(),
            id,
            seq,
            EventKind::Reply {
                cmd: kind,
                ok,
                e2e_ns,
            },
        );
        self.hub.record_stage(Stage::Command, e2e_ns);
        self.hub.bump(if ok {
            Counter::RepliesOk
        } else {
            Counter::RepliesErr
        });
        self.hub.bump(Counter::DirectServes);
        if !ok {
            self.hub.capture_error();
        }
    }

    /// Flight-records a command rejected before reaching a worker
    /// (unknown session, shutdown, quarantine, shed).
    fn record_reject(&self, id: SessionId, seq: u64, at_ns: u64, kind: CommandKind) {
        if !self.hub.enabled() {
            return;
        }
        let e2e_ns = self.hub.now_ns().saturating_sub(at_ns);
        self.hub.record(
            self.hub.client_ring(),
            id,
            seq,
            EventKind::Reply {
                cmd: kind,
                ok: false,
                e2e_ns,
            },
        );
        self.hub.bump(Counter::RepliesErr);
    }

    /// The shed reply's retry hint: the `Command` stage's median
    /// end-to-end latency — roughly the time one queued slot takes to
    /// clear — clamped to `[1ms, 10s]`; `1ms` before any command has
    /// completed (or with telemetry off).
    fn retry_after_hint_ms(&self) -> u64 {
        let data = self.hub.stage_data(Stage::Command);
        if data.count == 0 {
            return 1;
        }
        (data.summary().p50_ns / 1_000_000).clamp(1, 10_000)
    }

    fn enqueue(&self, id: SessionId, cmd: Command, deadline: Deadline, settle: Sender<()>) {
        let st = self.lock();
        // Stamp the command for the flight recorder before anything can
        // serve it; with telemetry off both stamps are zero and no event
        // is recorded anywhere downstream.
        let (seq, at_ns) = if self.hub.enabled() {
            let seq = self.hub.next_seq();
            let at_ns = self.hub.now_ns();
            self.hub.record(
                self.hub.client_ring(),
                id,
                seq,
                EventKind::Enqueue { cmd: cmd.kind() },
            );
            self.hub.bump(Counter::CommandsEnqueued);
            (seq, at_ns)
        } else {
            (0, 0)
        };
        if st.shutdown {
            drop(st);
            let kind = cmd.kind();
            cmd.reject(ServerError::Terminated);
            self.record_reject(id, seq, at_ns, kind);
            return;
        }
        // Read-only log commands against an evicted, quiescent session are
        // answered straight from the durable log: rehydrating an O(nnz)
        // kernel context to read bytes the log already holds would defeat
        // eviction (think reconnect storms full of catch_up calls). Only
        // safe when the mailbox is idle — queued commands must stay FIFO.
        let quiescent = st
            .mailboxes
            .get(&id)
            .is_some_and(|mb| mb.queue.is_empty() && !mb.busy);
        if quiescent && !st.mgr.is_quarantined(id) {
            // A *spilled* session has nothing in memory at all: log reads
            // go straight to the store's files (clone the Arc, drop the
            // lock, read disk unlocked) — rehydrating an engine to answer
            // a catch_up would defeat the spill.
            if st.mgr.is_spilled(id) {
                if let Some(store) = st.mgr.store().cloned() {
                    match cmd {
                        Command::CatchUp(from, tx) => {
                            drop(st);
                            let result = store
                                .catch_up(id, from)
                                .map_err(|e| ServerError::Store(e.to_string()));
                            let ok = result.is_ok();
                            let _ = tx.send(result);
                            self.record_direct(id, seq, at_ns, CommandKind::CatchUp, ok);
                            return;
                        }
                        Command::SessionLog(tx) => {
                            drop(st);
                            let result = store
                                .load(id)
                                .map(|(log, _)| log)
                                .map_err(|e| ServerError::Store(e.to_string()));
                            let ok = result.is_ok();
                            let _ = tx.send(result);
                            self.record_direct(id, seq, at_ns, CommandKind::SessionLog, ok);
                            return;
                        }
                        other => {
                            return self.enqueue_locked(
                                st,
                                id,
                                Queued {
                                    cmd: other,
                                    deadline,
                                    settle,
                                    seq,
                                    at_ns,
                                },
                            )
                        }
                    }
                }
            }
            if let Some(log) = st.mgr.evicted_log(id) {
                match cmd {
                    Command::CatchUp(from, tx) => {
                        // Copy the raw slice under the lock (memcpy), run
                        // the O(range) composition after releasing it.
                        let head = log.version();
                        let raw = log.history_range(from, head).map(<[_]>::to_vec);
                        // History truncated under the client? The WAL
                        // still reaches back — resolve off disk.
                        let store = match &raw {
                            Err(ResponseError::HistoryUnavailable { .. }) => {
                                st.mgr.store().cloned()
                            }
                            _ => None,
                        };
                        drop(st);
                        let result = match (raw, store) {
                            (Ok(edits), _) => Ok(ResponseDelta::compacted(from, head, &edits)),
                            (Err(_), Some(store)) => store
                                .catch_up(id, from)
                                .map_err(|e| ServerError::Store(e.to_string())),
                            (Err(e), None) => Err(ServerError::from(e)),
                        };
                        let ok = result.is_ok();
                        let _ = tx.send(result);
                        self.record_direct(id, seq, at_ns, CommandKind::CatchUp, ok);
                        return;
                    }
                    Command::SessionLog(tx) => {
                        let log = log.clone();
                        drop(st);
                        let _ = tx.send(Ok(log));
                        self.record_direct(id, seq, at_ns, CommandKind::SessionLog, true);
                        return;
                    }
                    other => {
                        // Engine-bound command: fall through to the mailbox
                        // (the worker rehydrates).
                        return self.enqueue_locked(
                            st,
                            id,
                            Queued {
                                cmd: other,
                                deadline,
                                settle,
                                seq,
                                at_ns,
                            },
                        );
                    }
                }
            }
        }
        self.enqueue_locked(
            st,
            id,
            Queued {
                cmd,
                deadline,
                settle,
                seq,
                at_ns,
            },
        )
    }

    fn enqueue_locked(&self, mut st: std::sync::MutexGuard<'_, Inner>, id: SessionId, q: Queued) {
        let Queued { seq, at_ns, .. } = q;
        let kind = q.cmd.kind();
        if !st.mailboxes.contains_key(&id) {
            drop(st);
            q.cmd.reject(ServerError::UnknownSession(id));
            self.record_reject(id, seq, at_ns, kind);
            return;
        }
        // Fail fast on a poisoned session: its worker pass already
        // rejected everything queued, and nothing new may join until
        // `revive_session` rebuilds it from the durable log.
        if st.mgr.is_quarantined(id) {
            drop(st);
            q.cmd.reject(ServerError::Quarantined(id));
            self.record_reject(id, seq, at_ns, kind);
            return;
        }
        // Admission control. `Close` is always admitted — it frees
        // capacity, and refusing it would wedge an overloaded server.
        if !matches!(q.cmd, Command::Close(_)) {
            let mailbox_full = self.mailbox_cap != 0
                && st.mailboxes.get(&id).expect("checked above").queue.len() >= self.mailbox_cap;
            let budget_full = self.max_inflight != 0 && {
                let cap = self.max_inflight as u64;
                // Mutating/bulk commands shed first: the last 1/8 of the
                // budget is reserved for the cheap certified reads that
                // callers poll under load.
                let threshold = if q.cmd.sheds_early() {
                    cap - cap / 8
                } else {
                    cap
                };
                st.inflight >= threshold.max(1)
            };
            if mailbox_full || budget_full {
                let inflight = st.inflight;
                drop(st);
                if self.hub.enabled() {
                    self.hub.record(
                        self.hub.client_ring(),
                        id,
                        seq,
                        EventKind::Shed {
                            cmd: kind,
                            inflight,
                        },
                    );
                    self.hub.bump(Counter::CommandsShed);
                }
                let retry_after_ms = self.retry_after_hint_ms();
                q.cmd.reject(ServerError::Overloaded { retry_after_ms });
                self.record_reject(id, seq, at_ns, kind);
                return;
            }
        }
        st.inflight += 1;
        let mailbox = st.mailboxes.get_mut(&id).expect("checked above");
        mailbox.queue.push_back(q);
        if !mailbox.busy && !mailbox.enqueued {
            mailbox.enqueued = true;
            st.ready.push_back(id);
            drop(st);
            self.shared.work.notify_one();
        }
    }

    /// A client handle whose commands all carry `deadline`: a worker drops
    /// any of them whose deadline passed while queued
    /// ([`ServerError::DeadlineExceeded`]) instead of executing it. The
    /// plain [`SessionServer`] methods are equivalent to
    /// `with_deadline(Deadline::NONE)`.
    pub fn with_deadline(&self, deadline: Deadline) -> DeadlineClient<'_> {
        DeadlineClient {
            srv: self,
            deadline,
        }
    }

    /// Commits a batch of `(user, item, choice)` responses; the reply is
    /// the session's new version.
    pub fn submit(
        &self,
        id: SessionId,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Reply<u64> {
        self.with_deadline(Deadline::NONE).submit(id, responses)
    }

    /// The session's current ranking (cache hit, incremental delta+warm
    /// solve, or cold rehydration solve — whatever the engine needs).
    pub fn ranking(&self, id: SessionId) -> Reply<Ranking> {
        self.with_deadline(Deadline::NONE).ranking(id)
    }

    /// The session's best `k` users as `(user, score)` pairs at the
    /// engine's default certified tier: the solve early-terminates once
    /// the top-`k` set and order are certified decided, or is skipped
    /// outright when the pending wave provably cannot change them.
    pub fn top_k(&self, id: SessionId, k: usize) -> Reply<Vec<(usize, f64)>> {
        self.with_deadline(Deadline::NONE).top_k(id, k)
    }

    /// `user`'s current rank (0 = best) at the certified tier.
    pub fn rank_of(&self, id: SessionId, user: usize) -> Reply<usize> {
        self.with_deadline(Deadline::NONE).rank_of(id, user)
    }

    /// The compacted delta from a client's cached version to the session's
    /// head: apply it with
    /// [`ResponseMatrix::apply_delta`](hnd_response::ResponseMatrix::apply_delta)
    /// to resync in one step.
    pub fn catch_up(&self, id: SessionId, from_version: u64) -> Reply<ResponseDelta> {
        self.with_deadline(Deadline::NONE)
            .catch_up(id, from_version)
    }

    /// The session's serving counters.
    pub fn stats(&self, id: SessionId) -> Reply<EngineStats> {
        self.with_deadline(Deadline::NONE).stats(id)
    }

    /// Every layer's counters in one ordered reply — engine, manager
    /// (store errors from the same pass folded in), store, and the
    /// telemetry hub's per-stage latency summaries. Rides the session's
    /// mailbox, so it observes exactly the commands enqueued before it.
    pub fn snapshot(&self, id: SessionId) -> Reply<ServerSnapshot> {
        self.with_deadline(Deadline::NONE).snapshot(id)
    }

    /// A clone of the session's durable log (the serial-replay oracle of
    /// the concurrency tests; also the handoff format for re-sharding).
    pub fn session_log(&self, id: SessionId) -> Reply<ResponseLog> {
        self.with_deadline(Deadline::NONE).session_log(id)
    }

    /// Closes the session after the commands already queued ahead of it;
    /// later commands fail with [`ServerError::UnknownSession`]. Never
    /// shed by admission control.
    pub fn close_session(&self, id: SessionId) -> Reply<()> {
        let (tx, settle, reply) = Reply::pair();
        self.enqueue(id, Command::Close(tx), Deadline::NONE, settle);
        reply
    }

    /// Test-only: makes the session's worker panic mid-command,
    /// exercising panic isolation and quarantine end to end. The reply
    /// resolves [`ServerError::Terminated`] (its channel dies with the
    /// unwind); every later command gets [`ServerError::Quarantined`].
    #[doc(hidden)]
    pub fn inject_panic(&self, id: SessionId) -> Reply<()> {
        let (tx, settle, reply) = Reply::pair();
        self.enqueue(id, Command::InjectPanic(tx), Deadline::NONE, settle);
        reply
    }

    /// `true` when the session exists and is quarantined (poisoned by a
    /// panic, serving only [`ServerError::Quarantined`]).
    pub fn is_quarantined(&self, id: SessionId) -> bool {
        self.lock().mgr.is_quarantined(id)
    }

    /// Revives a quarantined session from its durable state (the salvaged
    /// log, or snapshot + WAL replay through the store) and returns the
    /// restored version. The session comes back evicted: its next
    /// engine-bound command rehydrates it cold, exactly like a restart.
    pub fn revive_session(&self, id: SessionId) -> Result<u64, ServerError> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(ServerError::Terminated);
        }
        Ok(st.mgr.revive_session(id)?)
    }

    /// Runs the idle-eviction sweep now (it also runs at every check-in);
    /// returns the ids evicted by this call.
    pub fn evict_idle(&self) -> Vec<SessionId> {
        self.lock().mgr.evict_idle()
    }

    /// `true` when the session exists and is currently torn down to its
    /// durable log.
    pub fn is_evicted(&self, id: SessionId) -> bool {
        self.lock().mgr.is_evicted(id)
    }

    /// Fleet lifecycle counters (evictions, rehydrations, spills,
    /// restores, store errors, quarantines, revivals).
    pub fn manager_stats(&self) -> ManagerStats {
        self.lock().mgr.stats()
    }

    /// The durable tier's cumulative counters (`None` when the server was
    /// built without a store).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.lock().mgr.store().map(|s| s.stats())
    }

    /// The unified fleet-wide metrics snapshot: engine counters aggregated
    /// across every session (live and retired), manager and store
    /// counters, hub counters, and per-stage latency histograms — the one
    /// structure the text exposition format and the example summary tables
    /// render. The per-layer stats accessors remain as thin views of the
    /// same numbers.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (engine, manager, store, sessions) = {
            let st = self.lock();
            (
                st.mgr.aggregate_engine_stats(),
                st.mgr.stats(),
                st.mgr.store().map(|s| s.stats()),
                st.mgr.len(),
            )
        };
        let mut snap = MetricsSnapshot::new();
        snap.gauge("server_workers", self.workers as f64);
        snap.gauge("server_sessions", sessions as f64);
        snap.counter("engine_delta_applies", engine.delta_applies);
        snap.counter("engine_rebuilds", engine.rebuilds);
        snap.counter("engine_warm_solves", engine.warm_solves);
        snap.counter("engine_cold_solves", engine.cold_solves);
        snap.counter("engine_sharded_solves", engine.sharded_solves);
        snap.counter("engine_shard_rebalances", engine.shard_rebalances);
        snap.counter("engine_shard_rebuilds", engine.shard_rebuilds);
        snap.counter("engine_plan_replans", engine.plan_replans);
        snap.counter("engine_predicted_patch_ns", engine.predicted_patch_ns);
        snap.counter("engine_actual_patch_ns", engine.actual_patch_ns);
        snap.counter("engine_predicted_rebuild_ns", engine.predicted_rebuild_ns);
        snap.counter("engine_actual_rebuild_ns", engine.actual_rebuild_ns);
        snap.counter("engine_predicted_solve_ns", engine.predicted_solve_ns);
        snap.counter("engine_actual_solve_ns", engine.actual_solve_ns);
        snap.counter("engine_skipped_solves", engine.skipped_solves);
        snap.counter("engine_early_terminations", engine.early_terminations);
        snap.counter("engine_iterations_saved", engine.iterations_saved);
        snap.counter("engine_wal_replayed", engine.wal_replayed);
        snap.gauge("engine_bitmap_rows", engine.formats.bitmap_rows as f64);
        snap.gauge("engine_sparse_rows", engine.formats.sparse_rows as f64);
        snap.gauge("engine_bitmap_cols", engine.formats.bitmap_cols as f64);
        snap.gauge("engine_sparse_cols", engine.formats.sparse_cols as f64);
        snap.counter("manager_evictions", manager.evictions);
        snap.counter("manager_rehydrations", manager.rehydrations);
        snap.counter("manager_spills", manager.spills);
        snap.counter("manager_restores", manager.restores);
        snap.counter("manager_store_errors", manager.store_errors);
        snap.counter("manager_quarantines", manager.quarantines);
        snap.counter("manager_revivals", manager.revivals);
        if let Some(store) = store {
            snap.counter("store_frames_appended", store.frames_appended);
            snap.counter("store_edits_appended", store.edits_appended);
            snap.counter("store_fsyncs", store.fsyncs);
            snap.counter("store_snapshots_written", store.snapshots_written);
            snap.counter("store_wal_rotations", store.wal_rotations);
            snap.counter("store_loads", store.loads);
            snap.counter("store_replayed_edits", store.replayed_edits);
            snap.counter("store_damaged_frames", store.damaged_frames());
            snap.counter("store_snapshot_failures", store.snapshot_failures);
            snap.counter("store_retries_append", store.retries_append);
            snap.counter("store_retries_fsync", store.retries_fsync);
            snap.counter("store_retries_read", store.retries_read);
            snap.counter("store_retries_snapshot", store.retries_snapshot);
            snap.counter("store_faults_transient", store.faults_transient);
            snap.counter("store_faults_hard", store.faults_hard);
            snap.counter("store_faults_torn", store.faults_torn);
        }
        self.hub.fill(&mut snap);
        snap
    }

    /// Serializes the flight recorder: the last [`hnd_telemetry::RING_CAPACITY`]
    /// events per worker ring (plus the client ring), chronological within
    /// each ring. Cheap enough to call on demand; empty with telemetry off.
    pub fn trace_dump(&self) -> TraceDump {
        self.hub.trace_dump()
    }

    /// The trace dump captured automatically when a command last resolved
    /// with an error (`None` when no command has failed, or telemetry is
    /// off). The failure-injection suite writes this to disk as its
    /// post-mortem artifact.
    pub fn last_error_trace(&self) -> Option<TraceDump> {
        self.hub.last_error_trace()
    }

    /// Forces every session's group-commit WAL debt to disk (checkpoint /
    /// orderly-shutdown barrier); `Ok` and a no-op without a store.
    pub fn flush_store(&self) -> Result<(), ServerError> {
        let store = self.lock().mgr.store().cloned();
        match store {
            Some(store) => store
                .flush_all()
                .map_err(|e| ServerError::Store(e.to_string())),
            None => Ok(()),
        }
    }

    /// Number of sessions (live, evicted, or busy).
    pub fn len(&self) -> usize {
        self.lock().mgr.len()
    }

    /// `true` when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.lock().mgr.is_empty()
    }
}

/// A borrowed [`SessionServer`] handle that stamps every command with one
/// [`Deadline`]; see [`SessionServer::with_deadline`].
#[derive(Clone, Copy)]
pub struct DeadlineClient<'a> {
    srv: &'a SessionServer,
    deadline: Deadline,
}

impl DeadlineClient<'_> {
    /// [`SessionServer::submit`] under this client's deadline.
    pub fn submit(
        &self,
        id: SessionId,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Reply<u64> {
        let (tx, settle, reply) = Reply::pair();
        self.srv.enqueue(
            id,
            Command::Submit(responses.into_iter().collect(), tx),
            self.deadline,
            settle,
        );
        reply
    }

    /// [`SessionServer::ranking`] under this client's deadline.
    pub fn ranking(&self, id: SessionId) -> Reply<Ranking> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::Ranking(tx), self.deadline, settle);
        reply
    }

    /// [`SessionServer::top_k`] under this client's deadline.
    pub fn top_k(&self, id: SessionId, k: usize) -> Reply<Vec<(usize, f64)>> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::TopK(k, tx), self.deadline, settle);
        reply
    }

    /// [`SessionServer::rank_of`] under this client's deadline.
    pub fn rank_of(&self, id: SessionId, user: usize) -> Reply<usize> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::RankOf(user, tx), self.deadline, settle);
        reply
    }

    /// [`SessionServer::catch_up`] under this client's deadline.
    pub fn catch_up(&self, id: SessionId, from_version: u64) -> Reply<ResponseDelta> {
        let (tx, settle, reply) = Reply::pair();
        self.srv.enqueue(
            id,
            Command::CatchUp(from_version, tx),
            self.deadline,
            settle,
        );
        reply
    }

    /// [`SessionServer::stats`] under this client's deadline.
    pub fn stats(&self, id: SessionId) -> Reply<EngineStats> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::Stats(tx), self.deadline, settle);
        reply
    }

    /// [`SessionServer::snapshot`] under this client's deadline.
    pub fn snapshot(&self, id: SessionId) -> Reply<ServerSnapshot> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::Snapshot(tx), self.deadline, settle);
        reply
    }

    /// [`SessionServer::session_log`] under this client's deadline.
    pub fn session_log(&self, id: SessionId) -> Reply<ResponseLog> {
        let (tx, settle, reply) = Reply::pair();
        self.srv
            .enqueue(id, Command::SessionLog(tx), self.deadline, settle);
        reply
    }
}

impl Drop for SessionServer {
    fn drop(&mut self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Workers have exited: resolve everything still queued, then pay
        // off any group-commit debt so shutdown loses nothing durable.
        let mut st = self.lock();
        for (_, mailbox) in std::mem::take(&mut st.mailboxes) {
            for q in mailbox.queue {
                q.cmd.reject(ServerError::Terminated);
            }
        }
        if let Some(store) = st.mgr.store() {
            let _ = store.flush_all();
        }
    }
}

/// Pulls up to `cap − 1` additional *evicted, solve-hungry* sessions out
/// of the ready queue into the worker's pass (the cold-storm batch).
/// Unselected ids keep their queue position and `enqueued` flag.
fn collect_cold_batch(
    st: &mut Inner,
    batch: &mut Vec<(SessionId, Vec<Queued>, Checkout)>,
    cap: usize,
) {
    let mut passed: Vec<SessionId> = Vec::new();
    while batch.len() < cap {
        let Some(id) = st.ready.pop_front() else {
            break;
        };
        let eligible = st.mgr.is_evicted(id)
            && st
                .mailboxes
                .get(&id)
                .is_some_and(|mb| !mb.busy && mb.queue.iter().any(|q| q.cmd.needs_solve()));
        if !eligible {
            passed.push(id);
            continue;
        }
        let mailbox = st.mailboxes.get_mut(&id).expect("checked above");
        mailbox.enqueued = false;
        let commands: Vec<Queued> = mailbox.queue.drain(..).collect();
        match st.mgr.checkout(id) {
            Ok(checkout) => {
                st.mailboxes.get_mut(&id).expect("checked above").busy = true;
                batch.push((id, commands, checkout));
            }
            Err(e) => {
                st.inflight = st.inflight.saturating_sub(commands.len() as u64);
                let err = ServerError::from(e);
                for q in commands {
                    q.cmd.reject(err.clone());
                }
            }
        }
    }
    // Unselected ids return to the front in their original order.
    for id in passed.into_iter().rev() {
        st.ready.push_front(id);
    }
}

/// One worker: pop a ready session, check its engine out, drain its
/// mailbox outside the lock, check back in (re-enqueueing if commands
/// arrived meanwhile). Exits once shutdown is set and the ready queue is
/// drained.
///
/// When the popped session is an evicted one needing a solve, up to
/// `cold_batch − 1` more such sessions join the pass: their engines are
/// rebuilt outside the lock and their cold solves run together through
/// [`rank_many`] (batch-level parallelism), each result seeded into its
/// engine's cache before the commands execute.
fn worker_loop(
    shared: &Shared,
    inner_threads: usize,
    cold_batch: usize,
    store: Option<Arc<SessionStore>>,
    hub: Arc<TelemetryHub>,
    ring: usize,
) {
    loop {
        // Acquire one or more sessions to process (or exit).
        let (batch, engine_opts, mgr_stats) = {
            let mut st = shared.state.lock().expect("server state poisoned");
            'acquire: loop {
                while let Some(id) = st.ready.pop_front() {
                    let Some(mailbox) = st.mailboxes.get_mut(&id) else {
                        continue; // closed while queued
                    };
                    mailbox.enqueued = false;
                    if mailbox.busy || mailbox.queue.is_empty() {
                        continue;
                    }
                    let commands: Vec<Queued> = mailbox.queue.drain(..).collect();
                    // checkout (not take_engine): an evicted session hands
                    // back its log so the O(nnz) rehydration build runs
                    // outside the lock — the mutex guards bookkeeping only.
                    match st.mgr.checkout(id) {
                        Ok(checkout) => {
                            st.mailboxes
                                .get_mut(&id)
                                .expect("mailbox checked above")
                                .busy = true;
                            let opts = st.mgr.engine_opts();
                            // Manager counters as of this pass, for any
                            // Snapshot command in the drained queue.
                            let mgr_stats = st.mgr.stats();
                            let mut batch = vec![(id, commands, checkout)];
                            if cold_batch > 1
                                && matches!(
                                    batch[0].2,
                                    Checkout::Rehydrate(_) | Checkout::Restore { .. }
                                )
                                && batch[0].1.iter().any(|q| q.cmd.needs_solve())
                            {
                                collect_cold_batch(&mut st, &mut batch, cold_batch);
                            }
                            break 'acquire (batch, opts, mgr_stats);
                        }
                        Err(e) => {
                            // The manager cannot serve the id (closed
                            // concurrently, quarantined, restore failed):
                            // fail the drained batch, keep popping.
                            st.inflight = st.inflight.saturating_sub(commands.len() as u64);
                            let err = ServerError::from(e);
                            for q in commands {
                                q.cmd.reject(err.clone());
                            }
                        }
                    }
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("server state poisoned");
            }
        };

        // Process the batch outside the lock: each session is single-writer
        // (its engine is checked out), other sessions proceed in parallel.
        let enabled = hub.enabled();
        let mut items: Vec<(SessionId, Vec<Queued>, RankingEngine)> =
            Vec::with_capacity(batch.len());
        // Sessions whose rehydration build failed or panicked: their
        // durable state is still on disk (salvage `None`) — quarantine
        // them at check-in instead of taking the worker down.
        let mut broken: Vec<(SessionId, Vec<Queued>)> = Vec::new();
        let mut cold: Vec<usize> = Vec::new();
        let batched = batch.len() > 1;
        for (id, commands, checkout) in batch {
            // The checkout event carries the first queued command's seq so
            // a trace reader can tie the rebuild to the command that paid
            // for it.
            let seq0 = commands.first().map_or(0, |q| q.seq);
            let kind0 = commands
                .first()
                .map_or(CommandKind::Close, |q| q.cmd.kind());
            let (engine, was_cold) = match checkout {
                Checkout::Live(engine) => {
                    if enabled {
                        hub.record(
                            ring,
                            id,
                            seq0,
                            EventKind::Checkout {
                                kind: CheckoutKind::Live,
                                replayed: 0,
                            },
                        );
                    }
                    (Some(*engine), false)
                }
                Checkout::Rehydrate(log) => {
                    let started = Instant::now();
                    let built = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        RankingEngine::from_log(log, engine_opts)
                    }));
                    let engine = built.ok().and_then(Result::ok);
                    if engine.is_some() && enabled {
                        hub.record(
                            ring,
                            id,
                            seq0,
                            EventKind::Checkout {
                                kind: CheckoutKind::Rehydrate,
                                replayed: 0,
                            },
                        );
                        hub.record_stage(Stage::Restore, started.elapsed().as_nanos() as u64);
                    }
                    (engine, true)
                }
                Checkout::Restore { log, replayed } => {
                    let started = Instant::now();
                    let built = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        RankingEngine::from_log(log, engine_opts)
                    }));
                    let engine = built.ok().and_then(Result::ok).map(|mut engine| {
                        engine.record_wal_replay(replayed);
                        engine
                    });
                    if engine.is_some() && enabled {
                        hub.record(
                            ring,
                            id,
                            seq0,
                            EventKind::Checkout {
                                kind: CheckoutKind::Restore,
                                replayed,
                            },
                        );
                        hub.record_stage(Stage::Restore, started.elapsed().as_nanos() as u64);
                    }
                    (engine, true)
                }
            };
            match engine {
                Some(mut engine) => {
                    // Cold indices are assigned only after a successful
                    // build so a broken session never corrupts the
                    // batched-solve index set.
                    if batched && was_cold {
                        cold.push(items.len());
                    }
                    // (Re)install the probe every checkout: the engine may
                    // have last run on a different worker's ring.
                    engine.set_probe(enabled.then(|| Probe::new(hub.clone(), ring, id)));
                    items.push((id, commands, engine));
                }
                None => {
                    if enabled {
                        hub.record(ring, id, seq0, EventKind::Quarantine { cmd: kind0 });
                        hub.bump(Counter::SessionsQuarantined);
                        hub.capture_error();
                    }
                    broken.push((id, commands));
                }
            }
        }
        let (mut finished, store_errors, mut consumed) =
            parallel::with_threads(inner_threads, || {
                // Batched pass: one rank_many over the cold engines' matrices,
                // results seeded so the queued ranking commands hit the cache.
                // A failed slot just falls through to the per-command solve
                // (which reports the error to its own caller).
                if !cold.is_empty() {
                    let solver = engine_opts.solver.build(engine_opts.solver_opts);
                    let matrices: Vec<&ResponseMatrix> =
                        cold.iter().map(|&i| items[i].2.matrix()).collect();
                    let solved = rank_many(solver.as_ranker(), &matrices);
                    for (&i, result) in cold.iter().zip(solved) {
                        if let Ok(ranking) = result {
                            items[i].2.seed_solution(ranking);
                        }
                    }
                }
                let mut finished: Vec<(SessionId, Outcome, Vec<Sender<()>>)> =
                    Vec::with_capacity(items.len());
                let mut store_errors = 0u64;
                let mut consumed = 0u64;
                for (id, commands, mut engine) in items {
                    consumed += commands.len() as u64;
                    let mut close = false;
                    let mut settles: Vec<Sender<()>> = Vec::with_capacity(commands.len());
                    let mut panicked = false;
                    let mut iter = commands.into_iter();
                    for q in iter.by_ref() {
                        let Queued {
                            cmd,
                            deadline,
                            settle,
                            seq,
                            at_ns,
                        } = q;
                        if close {
                            // Ordered after a Close in the same batch: the
                            // session is already logically gone.
                            cmd.reject(ServerError::UnknownSession(id));
                            continue;
                        }
                        let kind = cmd.kind();
                        // Deadline check at dequeue: a command nobody is
                        // waiting for anymore is dropped, not executed —
                        // under overload this converts queue debt into fast
                        // failures instead of late useless solves.
                        if deadline.expired() {
                            if enabled {
                                hub.record(
                                    ring,
                                    id,
                                    seq,
                                    EventKind::Expired {
                                        cmd: kind,
                                        late_ns: deadline.late_ns(),
                                    },
                                );
                                hub.bump(Counter::CommandsExpired);
                                hub.bump(Counter::RepliesErr);
                            }
                            cmd.reject(ServerError::DeadlineExceeded);
                            continue;
                        }
                        if enabled {
                            let dwell_ns = hub.now_ns().saturating_sub(at_ns);
                            hub.record(
                                ring,
                                id,
                                seq,
                                EventKind::Dequeue {
                                    cmd: kind,
                                    dwell_ns,
                                },
                            );
                            hub.record_stage(Stage::QueueWait, dwell_ns);
                            engine.set_probe_seq(seq);
                        }
                        // Recording runs inside `execute`, before the reply is
                        // sent: once a client's `wait` returns, the command is
                        // already visible to `metrics()`/`trace_dump()`.
                        let record = |ok: bool| {
                            if enabled {
                                let e2e_ns = hub.now_ns().saturating_sub(at_ns);
                                hub.record(
                                    ring,
                                    id,
                                    seq,
                                    EventKind::Reply {
                                        cmd: kind,
                                        ok,
                                        e2e_ns,
                                    },
                                );
                                hub.record_stage(Stage::Command, e2e_ns);
                                hub.bump(if ok {
                                    Counter::RepliesOk
                                } else {
                                    Counter::RepliesErr
                                });
                                if !ok {
                                    hub.capture_error();
                                }
                            }
                        };
                        // The panic guard: an unwinding command must not take
                        // the worker (and every other session's mailbox) down
                        // with it. The engine may be mid-mutation — quarantine
                        // the session, never reuse the engine.
                        let guarded = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            cmd.execute(
                                id,
                                &mut engine,
                                store.as_deref(),
                                &mut store_errors,
                                &mut close,
                                mgr_stats,
                                &hub,
                                &record,
                            );
                        }));
                        match guarded {
                            Ok(()) => settles.push(settle),
                            Err(_) => {
                                if enabled {
                                    hub.record(ring, id, seq, EventKind::Quarantine { cmd: kind });
                                    hub.bump(Counter::SessionsQuarantined);
                                    hub.capture_error();
                                }
                                // Settle with the rest so wait_settled on the
                                // injecting command observes the quarantine.
                                settles.push(settle);
                                panicked = true;
                                break;
                            }
                        }
                    }
                    if panicked {
                        // Everything queued behind the panic fails fast.
                        for q in iter {
                            q.cmd.reject(ServerError::Quarantined(id));
                        }
                        // Salvage the log out of the poisoned engine — the
                        // committed prefix survives a mid-submit panic
                        // structurally valid. If even that unwinds, the store
                        // tier still holds the durable copy.
                        let salvage =
                            std::panic::catch_unwind(AssertUnwindSafe(move || engine.into_log()))
                                .ok();
                        finished.push((id, Outcome::Quarantine { salvage }, settles));
                    } else {
                        finished.push((
                            id,
                            Outcome::Done {
                                engine: Box::new(engine),
                                close,
                            },
                            settles,
                        ));
                    }
                }
                (finished, store_errors, consumed)
            });
        // Fold rehydration failures in as salvage-free quarantines; their
        // replies resolve here (outside the lock), their sessions
        // transition at check-in below.
        for (id, commands) in broken {
            consumed += commands.len() as u64;
            for q in commands {
                q.cmd.reject(ServerError::Quarantined(id));
            }
            finished.push((id, Outcome::Quarantine { salvage: None }, Vec::new()));
        }

        // Check back in.
        let mut st = shared.state.lock().expect("server state poisoned");
        if store_errors > 0 {
            st.mgr.note_store_errors(store_errors);
        }
        let mut dropped = 0u64;
        let mut notify = false;
        for (id, outcome, settles) in finished {
            match outcome {
                Outcome::Done { engine, close } => {
                    if close {
                        st.mgr.drop_session(id);
                        if let Some(mailbox) = st.mailboxes.remove(&id) {
                            dropped += mailbox.queue.len() as u64;
                            for q in mailbox.queue {
                                q.cmd.reject(ServerError::UnknownSession(id));
                            }
                        }
                    } else {
                        st.mgr
                            .put_engine(id, *engine)
                            .expect("worker holds this session's checkout");
                        if let Some(mailbox) = st.mailboxes.get_mut(&id) {
                            mailbox.busy = false;
                            if !mailbox.queue.is_empty() && !mailbox.enqueued {
                                mailbox.enqueued = true;
                                st.ready.push_back(id);
                                notify = true;
                            }
                        }
                    }
                }
                Outcome::Quarantine { salvage } => {
                    st.mgr.quarantine_session(id, salvage);
                    if let Some(mailbox) = st.mailboxes.get_mut(&id) {
                        mailbox.busy = false;
                        dropped += mailbox.queue.len() as u64;
                        for q in mailbox.queue.drain(..) {
                            q.cmd.reject(ServerError::Quarantined(id));
                        }
                    }
                }
            }
            // The wait_settled barrier: the session's state transition
            // above is visible before any of its clients proceed.
            for settle in settles {
                let _ = settle.send(());
            }
        }
        st.inflight = st.inflight.saturating_sub(consumed + dropped);
        drop(st);
        if notify {
            shared.work.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hnd_core::{SolverKind, SolverOpts};

    fn server(workers: usize) -> SessionServer {
        SessionServer::new(ServerOpts {
            workers,
            engine: EngineOpts {
                solver: SolverKind::Power,
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn staircase(m: usize) -> Vec<(usize, usize, Option<u16>)> {
        (0..m)
            .flat_map(|j| (0..m - 1).map(move |i| (j, i, Some(u16::from(j > i)))))
            .collect()
    }

    #[test]
    fn submit_then_rank_roundtrip() {
        let srv = server(2);
        let id = srv.create_session(6, 5, &[2; 5]).unwrap();
        let version = srv.submit(id, staircase(6)).wait().unwrap();
        assert_eq!(version, 30);
        let ranking = srv.ranking(id).wait().unwrap();
        assert_eq!(ranking.len(), 6);
    }

    #[test]
    fn pipelined_commands_keep_fifo_order_per_session() {
        let srv = server(4);
        let id = srv.create_session(5, 4, &[2; 4]).unwrap();
        // Enqueue a pipeline without waiting: versions must be monotone.
        let r1 = srv.submit(id, vec![(0, 0, Some(0))]);
        let r2 = srv.submit(id, vec![(1, 0, Some(1))]);
        let rank = srv.ranking(id);
        let r3 = srv.submit(id, vec![(2, 1, Some(0))]);
        assert_eq!(r1.wait().unwrap(), 1);
        assert_eq!(r2.wait().unwrap(), 2);
        assert_eq!(rank.wait().unwrap().len(), 5);
        assert_eq!(r3.wait().unwrap(), 3);
    }

    #[test]
    fn unknown_and_closed_sessions_error() {
        let srv = server(2);
        assert_eq!(
            srv.ranking(99).wait().unwrap_err(),
            ServerError::UnknownSession(99)
        );
        let id = srv.create_session(4, 3, &[2; 3]).unwrap();
        srv.close_session(id).wait().unwrap();
        assert_eq!(
            srv.submit(id, vec![(0, 0, Some(0))]).wait().unwrap_err(),
            ServerError::UnknownSession(id)
        );
        assert!(srv.is_empty());
    }

    #[test]
    fn catch_up_resyncs_a_stale_client() {
        let srv = server(2);
        let id = srv.create_session(5, 4, &[3; 4]).unwrap();
        srv.submit(id, staircase(5)).wait().unwrap();
        // Client caches the version-20 state.
        let cached = srv.session_log(id).wait().unwrap();
        let mut client_matrix = cached.to_matrix();
        // The session moves on (including an overwrite of an old answer).
        srv.submit(id, vec![(0, 0, Some(2)), (1, 2, Some(1)), (0, 0, Some(1))])
            .wait()
            .unwrap();
        let delta = srv.catch_up(id, cached.version()).wait().unwrap();
        assert!(delta.len() <= 2, "compacted: at most one edit per cell");
        client_matrix.apply_delta(&delta).unwrap();
        assert_eq!(
            client_matrix,
            srv.session_log(id).wait().unwrap().to_matrix()
        );
    }

    #[test]
    fn log_reads_on_evicted_sessions_skip_rehydration() {
        let srv = SessionServer::new(ServerOpts {
            workers: 2,
            idle_threshold: Some(2),
            engine: EngineOpts {
                solver: SolverKind::Power,
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        });
        let quiet = srv.create_session(5, 4, &[2; 4]).unwrap();
        let loud = srv.create_session(5, 4, &[2; 4]).unwrap();
        srv.submit(quiet, staircase(5)).wait().unwrap();
        let head = srv.ranking(quiet).wait().unwrap();
        // Reply::wait returns when a command *executes*, before its worker
        // checks the engine back in — so the quiet session's last-touch
        // (stamped at check-in) can land mid-way through this traffic.
        // Keep the loud session ticking until the idle sweep catches the
        // quiet one; the bound only trips on a real eviction bug.
        let mut round = 0u16;
        while !srv.is_evicted(quiet) {
            assert!(round < 64, "quiet session never evicted");
            srv.submit(loud, vec![(0, 0, Some(round % 2))])
                .wait()
                .unwrap();
            round += 1;
        }
        assert!(srv.is_evicted(quiet));
        // (the loud session may itself have evicted+rehydrated during
        // setup with this aggressive threshold — baseline against that)
        let base = srv.manager_stats().rehydrations;

        // catch_up and session_log answer from the durable log without
        // waking the engine back up…
        let delta = srv.catch_up(quiet, 0).wait().unwrap();
        assert_eq!(delta.to_version, 20);
        assert_eq!(srv.session_log(quiet).wait().unwrap().version(), 20);
        assert!(srv.is_evicted(quiet), "log reads must not rehydrate");
        assert_eq!(srv.manager_stats().rehydrations, base);

        // …while an actual ranking read rehydrates as before.
        let after = srv.ranking(quiet).wait().unwrap();
        assert!(!srv.is_evicted(quiet));
        assert_eq!(srv.manager_stats().rehydrations, base + 1);
        assert_eq!(head.len(), after.len());
    }

    #[test]
    fn expired_deadline_drops_at_dequeue() {
        let srv = server(1);
        let id = srv.create_session(5, 4, &[2; 4]).unwrap();
        // A deadline already in the past: the worker must drop it unserved.
        let past = Deadline::at(Instant::now() - Duration::from_millis(5));
        let late = srv.with_deadline(past).ranking(id);
        assert_eq!(late.wait().unwrap_err(), ServerError::DeadlineExceeded);
        // The session itself is unharmed…
        srv.submit(id, staircase(5)).wait().unwrap();
        assert_eq!(srv.ranking(id).wait().unwrap().len(), 5);
        // …and Deadline::NONE never expires.
        assert!(!Deadline::NONE.expired());
    }

    #[test]
    fn wait_timeout_resolves_or_times_out() {
        let srv = server(2);
        let id = srv.create_session(4, 3, &[2; 3]).unwrap();
        let reply = srv.submit(id, vec![(0, 0, Some(0))]);
        // The command resolves within a generous bounded wait…
        let mut out = None;
        for _ in 0..200 {
            out = reply.wait_timeout(Duration::from_millis(50));
            if out.is_some() {
                break;
            }
        }
        assert_eq!(out.unwrap().unwrap(), 1);
        // …and an instant timeout on a never-resolving reply returns None.
        let (_tx, _settle, pending) = Reply::<u64>::pair();
        assert!(pending.wait_timeout(Duration::from_millis(1)).is_none());
    }

    #[test]
    fn mailbox_cap_sheds_with_retry_hint() {
        // One worker and a cap-1 mailbox: a deep pipeline must shed.
        let srv = SessionServer::new(ServerOpts {
            workers: 1,
            mailbox_cap: 1,
            engine: EngineOpts {
                solver: SolverKind::Power,
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        });
        let id = srv.create_session(5, 4, &[2; 4]).unwrap();
        let replies: Vec<Reply<u64>> = (0..64)
            .map(|k| srv.submit(id, vec![(k % 5, k % 4, Some(0))]))
            .collect();
        let mut shed = 0;
        for reply in replies {
            match reply.wait() {
                Ok(_) => {}
                Err(ServerError::Overloaded { retry_after_ms }) => {
                    assert!((1..=10_000).contains(&retry_after_ms));
                    shed += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(shed > 0, "cap-1 mailbox under a 64-deep pipeline must shed");
        // Close is exempt from admission control.
        srv.close_session(id).wait().unwrap();
    }

    #[test]
    fn panic_quarantines_only_its_session() {
        let srv = server(2);
        let healthy = srv.create_session(6, 5, &[2; 5]).unwrap();
        let doomed = srv.create_session(6, 5, &[2; 5]).unwrap();
        srv.submit(healthy, staircase(6)).wait().unwrap();
        srv.submit(doomed, staircase(6)).wait().unwrap();
        let before = srv.ranking(healthy).wait().unwrap();

        // Panic mid-command: the injecting reply's channel dies with the
        // unwind; wait_settled returns only after the quarantine landed.
        assert_eq!(
            srv.inject_panic(doomed).wait_settled().unwrap_err(),
            ServerError::Terminated
        );
        assert!(srv.is_quarantined(doomed));
        assert_eq!(
            srv.ranking(doomed).wait().unwrap_err(),
            ServerError::Quarantined(doomed)
        );
        assert_eq!(srv.manager_stats().quarantines, 1);

        // The healthy session is bit-identical to before the panic.
        let after = srv.ranking(healthy).wait().unwrap();
        assert_eq!(before.scores, after.scores);

        // Revive from the salvaged log: full state back, serving again.
        let version = srv.revive_session(doomed).unwrap();
        assert_eq!(version, 30);
        assert!(!srv.is_quarantined(doomed));
        assert_eq!(srv.ranking(doomed).wait().unwrap().len(), 6);
        assert_eq!(srv.manager_stats().revivals, 1);
    }

    #[test]
    fn wait_settled_observes_check_in() {
        let srv = SessionServer::new(ServerOpts {
            workers: 1,
            idle_threshold: Some(1),
            engine: EngineOpts {
                solver: SolverKind::Power,
                solver_opts: SolverOpts {
                    orient: false,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        });
        let idle = srv.create_session(5, 4, &[2; 4]).unwrap();
        let busy = srv.create_session(5, 4, &[2; 4]).unwrap();
        // After wait_settled the engine is back in the manager — not
        // CheckedOut — so once the clock advances past the threshold an
        // explicit sweep evicts it deterministically (a plain `wait`
        // races the check-in here and would make this assertion flaky).
        srv.submit(idle, staircase(5)).wait_settled().unwrap();
        srv.submit(busy, vec![(0, 0, Some(0))])
            .wait_settled()
            .unwrap();
        // (The amortized sweep at the second check-in may beat the
        // explicit call to it — either way the idle session must be out.)
        let evicted = srv.evict_idle();
        assert!(
            evicted.contains(&idle) || srv.is_evicted(idle),
            "settled session must be evictable"
        );
    }

    #[test]
    fn many_sessions_proceed_in_parallel() {
        let srv = server(4);
        let ids: Vec<SessionId> = (0..8)
            .map(|k| {
                let id = srv.create_session(6 + k, 5, &[2; 5]).unwrap();
                srv.submit(id, staircase(6 + k));
                id
            })
            .collect();
        let replies: Vec<Reply<Ranking>> = ids.iter().map(|&id| srv.ranking(id)).collect();
        for (k, reply) in replies.into_iter().enumerate() {
            assert_eq!(reply.wait().unwrap().len(), 6 + k);
        }
    }
}
