//! Resilience acceptance battery: deterministic chaos under the durable
//! tier, and worker-panic quarantine.
//!
//! * **Chaos sweep** — a seeded [`FaultPlan`] under the store, a serial
//!   seeded schedule on top. Every schedule must *terminate* with every
//!   command either served or failed with a typed error; sessions whose
//!   commands all succeeded must end **bit-identical** to the fault-free
//!   reference run; every injected fault must show up in the store's
//!   counters. Never a hang, never silent loss.
//! * **Panic isolation** — a mid-stream injected worker panic quarantines
//!   exactly one session: every *other* session's final ranking is
//!   bit-identical to an uninjected run of the same schedule, and
//!   [`SessionServer::revive_session`] restores the victim to its exact
//!   pre-panic committed state (proptested).

use hnd_service::{
    EngineOpts, FaultKind, FaultPlan, FlushPolicy, RankingEngine, ServerError, ServerOpts,
    SessionServer, SessionStore, SolverKind, SolverOpts, StoreOpts,
};
use proptest::prelude::*;
use std::sync::Arc;

const SESSIONS: usize = 4;
const USERS: usize = 12;
const ITEMS: usize = 8;
const OPS: usize = 120;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hnd-resilience-{}-{tag}-{k}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic LCG stream: the seeded schedule generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn opts() -> EngineOpts {
    EngineOpts {
        solver: SolverKind::Power,
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        // Aggressive in-memory retention forces catch-up to read the WAL —
        // the read-class fault paths stay exercised.
        history_retention: Some(4),
        ..Default::default()
    }
}

/// Ability-structured seeded answer: keeps the instances well-conditioned.
fn seeded_answer(rng: &mut Lcg, user: usize, item: usize) -> u16 {
    let correct = (item % 2) as u16;
    let ability = user as f64 / USERS as f64;
    if (rng.below(1000) as f64) / 1000.0 < 0.2 + 0.7 * ability {
        correct
    } else {
        1 - correct
    }
}

/// Everything observable about one serial chaos run.
struct ChaosRun {
    /// Final per-session ranking: score bits, or the error's display.
    finals: Vec<Result<Vec<u64>, String>>,
    /// Per-session command errors, in schedule order.
    errors: Vec<Vec<String>>,
    injected: u64,
    injected_hard_or_torn: u64,
    store_faults: u64,
    store_retries: u64,
}

/// Drives the seeded serial schedule against a store-backed server, with
/// an optional chaos plan installed after session creation (so the fleet
/// always exists; everything after runs under fire). Serial `wait_settled`
/// calls mean one command in flight at a time — the store's global fault
/// occurrence numbering is a function of the schedule alone.
fn serial_chaos_run(tag: &str, schedule_seed: u64, chaos: Option<(u64, f64)>) -> ChaosRun {
    let dir = temp_dir(tag);
    let store = Arc::new(
        SessionStore::open(
            &dir,
            StoreOpts {
                flush: FlushPolicy::EveryCommit,
                snapshot_every: 4,
            },
        )
        .unwrap(),
    );
    let srv = SessionServer::with_store(
        ServerOpts {
            workers: 2,
            idle_threshold: None,
            engine: opts(),
            ..Default::default()
        },
        Arc::clone(&store),
    );
    let ids: Vec<_> = (0..SESSIONS)
        .map(|_| srv.create_session(USERS, ITEMS, &[2; ITEMS]).unwrap())
        .collect();
    let plan = chaos.map(|(seed, intensity)| {
        let plan = Arc::new(FaultPlan::seeded(seed, intensity));
        store.inject_faults(Arc::clone(&plan));
        plan
    });

    let mut errors: Vec<Vec<String>> = vec![Vec::new(); SESSIONS];
    let mut rng = Lcg(schedule_seed);
    for _ in 0..OPS {
        let idx = rng.below(SESSIONS as u64) as usize;
        let sid = ids[idx];
        let outcome: Result<(), ServerError> = match rng.below(100) {
            0..=59 => {
                let batch: Vec<(usize, usize, Option<u16>)> = (0..1 + rng.below(4))
                    .map(|_| {
                        let u = rng.below(USERS as u64) as usize;
                        let i = rng.below(ITEMS as u64) as usize;
                        (u, i, Some(seeded_answer(&mut rng, u, i)))
                    })
                    .collect();
                srv.submit(sid, batch).wait_settled().map(|_| ())
            }
            60..=84 => srv.ranking(sid).wait_settled().map(|_| ()),
            _ => srv.catch_up(sid, 0).wait_settled().map(|_| ()),
        };
        if let Err(e) = outcome {
            errors[idx].push(e.to_string());
        }
    }

    let finals = ids
        .iter()
        .map(|&sid| {
            srv.ranking(sid)
                .wait_settled()
                .map(|r| r.scores.iter().map(|s| s.to_bits()).collect())
                .map_err(|e| e.to_string())
        })
        .collect();

    // Post-mortem artifact for CI: the most recent failed command's trace.
    if plan.is_some() {
        if let (Ok(path), Some(dump)) = (std::env::var("TRACE_DUMP_OUT"), srv.last_error_trace()) {
            std::fs::write(&path, dump.to_json()).expect("write trace artifact");
        }
    }

    let stats = srv.store_stats().expect("store-backed server");
    let run = ChaosRun {
        finals,
        errors,
        injected: plan.as_ref().map_or(0, |p| p.total_injected()),
        injected_hard_or_torn: plan.as_ref().map_or(0, |p| {
            p.injected(FaultKind::Hard) + p.injected(FaultKind::Torn)
        }),
        store_faults: stats.faults_injected(),
        store_retries: stats.retries(),
    };
    drop(srv);
    std::fs::remove_dir_all(&dir).ok();
    run
}

/// The chaos battery: a sweep of seeds × intensities. Each schedule must
/// end bit-identical to the fault-free reference *or* in counted, typed
/// errors — and the zero-intensity corner must be exactly the reference.
#[test]
fn chaos_sweep_ends_bitwise_identical_or_counted() {
    const SCHEDULE: u64 = 0xD15EA5E;
    let reference = serial_chaos_run("ref", SCHEDULE, None);
    assert_eq!(reference.injected, 0);
    assert_eq!(reference.store_faults, 0);
    for (s, errs) in reference.errors.iter().enumerate() {
        assert!(errs.is_empty(), "fault-free session {s} errored: {errs:?}");
    }

    for chaos_seed in [7u64, 1881] {
        for intensity in [0.0, 0.02, 0.08] {
            let tag = format!("chaos-{chaos_seed}-{}", (intensity * 100.0) as u32);
            let run = serial_chaos_run(&tag, SCHEDULE, Some((chaos_seed, intensity)));

            // Every injected fault is visible in the store's counters.
            assert_eq!(
                run.store_faults, run.injected,
                "{tag}: injected faults must all be counted"
            );
            // Hard/torn faults can't vanish: some command saw an error.
            let total_errors: usize = run.errors.iter().map(Vec::len).sum();
            if run.injected_hard_or_torn > 0 {
                assert!(
                    total_errors > 0,
                    "{tag}: {} hard/torn faults but zero surfaced errors",
                    run.injected_hard_or_torn
                );
            }
            // Transients were absorbed, and absorbed means retried.
            assert!(
                run.store_retries >= run.injected - run.injected_hard_or_torn,
                "{tag}: transient faults must be retried"
            );

            // Sessions whose every command succeeded are bit-identical to
            // the reference — faults elsewhere in the fleet are invisible.
            for s in 0..SESSIONS {
                if run.errors[s].is_empty() {
                    assert_eq!(
                        run.finals[s], reference.finals[s],
                        "{tag}: untouched session {s} diverged from fault-free run"
                    );
                }
            }
            if run.injected == 0 {
                for s in 0..SESSIONS {
                    assert_eq!(run.finals[s], reference.finals[s]);
                }
            }
        }
    }
}

/// Chaos runs are *deterministic*: the same (schedule, seed, intensity)
/// replayed twice produces the same per-session outcomes and the same
/// errors in the same order.
#[test]
fn chaos_runs_are_reproducible() {
    let a = serial_chaos_run("repro-a", 0xFACADE, Some((99, 0.06)));
    let b = serial_chaos_run("repro-b", 0xFACADE, Some((99, 0.06)));
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.errors, b.errors);
    assert_eq!(a.finals, b.finals);
    assert_eq!(a.store_retries, b.store_retries);
}

/// Runs the panic-acceptance schedule and returns every session's final
/// ranking (bits or error string) plus the server for follow-up checks.
fn panic_schedule(inject: bool) -> (SessionServer, Vec<hnd_service::SessionId>) {
    let srv = SessionServer::new(ServerOpts {
        workers: 2,
        idle_threshold: None,
        engine: opts(),
        ..Default::default()
    });
    let ids: Vec<_> = (0..SESSIONS)
        .map(|_| srv.create_session(USERS, ITEMS, &[2; ITEMS]).unwrap())
        .collect();
    let victim = ids[SESSIONS - 1];
    let mut rng = Lcg(0xACCE55);
    for op in 0..OPS {
        if inject && op == OPS / 2 {
            let err = srv.inject_panic(victim).wait_settled().unwrap_err();
            assert!(matches!(err, ServerError::Terminated));
            assert!(srv.is_quarantined(victim));
        }
        let idx = rng.below(SESSIONS as u64) as usize;
        let sid = ids[idx];
        let outcome: Result<(), ServerError> = match rng.below(100) {
            0..=69 => {
                let batch: Vec<(usize, usize, Option<u16>)> = (0..1 + rng.below(4))
                    .map(|_| {
                        let u = rng.below(USERS as u64) as usize;
                        let i = rng.below(ITEMS as u64) as usize;
                        (u, i, Some(seeded_answer(&mut rng, u, i)))
                    })
                    .collect();
                srv.submit(sid, batch).wait_settled().map(|_| ())
            }
            _ => srv.ranking(sid).wait_settled().map(|_| ()),
        };
        match outcome {
            Ok(()) => {}
            // After the injection, the victim's commands fail closed.
            Err(ServerError::Quarantined(q)) => {
                assert!(inject && q == victim, "unexpected quarantine of {q}");
            }
            Err(e) => panic!("schedule op {op} failed: {e}"),
        }
    }
    (srv, ids)
}

/// The acceptance gate: a mid-stream worker panic leaves every *other*
/// session's final ranking bit-identical to an uninjected run of the same
/// schedule — and the victim, once revived, serves exactly the serial
/// replay of its own salvaged log.
#[test]
fn mid_stream_panic_leaves_other_sessions_bitwise_identical() {
    let (clean_srv, clean_ids) = panic_schedule(false);
    let (srv, ids) = panic_schedule(true);
    let victim = ids[SESSIONS - 1];

    for s in 0..SESSIONS - 1 {
        let clean = clean_srv.ranking(clean_ids[s]).wait_settled().unwrap();
        let poisoned = srv.ranking(ids[s]).wait_settled().unwrap();
        let (a, b): (Vec<u64>, Vec<u64>) = (
            clean.scores.iter().map(|x| x.to_bits()).collect(),
            poisoned.scores.iter().map(|x| x.to_bits()).collect(),
        );
        assert_eq!(a, b, "session {s} diverged after an unrelated panic");
    }

    // The victim is quarantined, counted, and revivable.
    assert!(srv.is_quarantined(victim));
    assert!(matches!(
        srv.ranking(victim).wait_settled(),
        Err(ServerError::Quarantined(_))
    ));
    assert_eq!(srv.manager_stats().quarantines, 1);
    let version = srv.revive_session(victim).unwrap();
    assert!(!srv.is_quarantined(victim));
    assert_eq!(srv.manager_stats().revivals, 1);

    // Revived state is the serial replay of the salvaged log.
    let log = srv.session_log(victim).wait_settled().unwrap();
    assert_eq!(log.version(), version);
    let served = srv.ranking(victim).wait_settled().unwrap();
    let replayed = RankingEngine::from_log(log, opts())
        .unwrap()
        .current_ranking()
        .unwrap();
    assert_eq!(served.scores, replayed.scores);
}

/// Proptest: quarantine + revive restores the victim's *exact* pre-panic
/// committed state (same version, bitwise-identical ranking), and a
/// bystander session never notices.
fn pre_panic_stream() -> impl Strategy<Value = (u64, usize)> {
    (1u64..u64::MAX, 2usize..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn revive_restores_exact_pre_panic_state((seed, batches) in pre_panic_stream()) {
        let srv = SessionServer::new(ServerOpts {
            workers: 2,
            idle_threshold: None,
            engine: opts(),
            ..Default::default()
        });
        let victim = srv.create_session(USERS, ITEMS, &[2; ITEMS]).unwrap();
        let witness = srv.create_session(USERS, ITEMS, &[2; ITEMS]).unwrap();
        let mut rng = Lcg(seed);
        for _ in 0..batches {
            for &sid in &[victim, witness] {
                let batch: Vec<(usize, usize, Option<u16>)> = (0..2 + rng.below(5))
                    .map(|_| {
                        let u = rng.below(USERS as u64) as usize;
                        let i = rng.below(ITEMS as u64) as usize;
                        (u, i, Some(seeded_answer(&mut rng, u, i)))
                    })
                    .collect();
                srv.submit(sid, batch).wait_settled().unwrap();
            }
        }
        let before_version = srv.session_log(victim).wait_settled().unwrap().version();
        let before = srv.ranking(victim).wait_settled().unwrap();
        let witness_before = srv.ranking(witness).wait_settled().unwrap();

        let err = srv.inject_panic(victim).wait_settled().unwrap_err();
        prop_assert!(matches!(err, ServerError::Terminated));
        prop_assert!(srv.is_quarantined(victim));
        prop_assert!(matches!(
            srv.submit(victim, vec![(0, 0, Some(0))]).wait_settled(),
            Err(ServerError::Quarantined(_))
        ));

        // Revive lands on the exact committed version…
        let version = srv.revive_session(victim).unwrap();
        prop_assert_eq!(version, before_version);
        // …and serves the exact pre-panic bits, while the witness never
        // wavered.
        let after = srv.ranking(victim).wait_settled().unwrap();
        prop_assert_eq!(before.scores, after.scores);
        let witness_after = srv.ranking(witness).wait_settled().unwrap();
        prop_assert_eq!(witness_before.scores, witness_after.scores);

        // The revived session keeps serving the stream.
        srv.submit(victim, vec![(0, 0, Some(1))]).wait_settled().unwrap();
        prop_assert_eq!(srv.ranking(victim).wait_settled().unwrap().len(), USERS);
    }
}

/// Guard against a trivially-green battery: at the sweep's top intensity
/// the plan genuinely bites, including faults the retry loop can't absorb.
#[test]
fn chaos_sweep_top_intensity_actually_injects() {
    let run = serial_chaos_run("bite", 0xD15EA5E, Some((7, 0.08)));
    assert!(run.injected > 0, "top-intensity sweep never injected");
    assert!(
        run.injected_hard_or_torn > 0,
        "sweep should exercise hard/torn faults, got only transients"
    );
    assert!(run.errors.iter().map(Vec::len).sum::<usize>() > 0);
}
