//! The serving-layer acceptance tests: after a small delta, the
//! incremental path (delta-patch + warm solve) must agree with a cold
//! solve to tolerance, converge in strictly fewer iterations, and must
//! never rebuild the full CSR — the latter enforced both by the engine's
//! rebuild counter and by a byte-counting global allocator that bounds the
//! incremental path's allocations far below the pattern's size.

use hnd_service::{EngineOpts, RankingEngine, SolverKind, SolverOpts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// A seeded IRT instance bulk-loaded into an engine.
fn seeded_engine(m: usize, n: usize, opts: EngineOpts) -> (RankingEngine, u16) {
    let mut rng = StdRng::seed_from_u64(2024);
    let ds = hnd_irt::generate(
        &hnd_irt::GeneratorConfig {
            n_users: m,
            n_items: n,
            ..Default::default()
        },
        &mut rng,
    );
    let k = ds.responses.max_options();
    let mut engine = RankingEngine::new(
        m,
        n,
        &(0..n)
            .map(|i| ds.responses.options_of(i))
            .collect::<Vec<_>>(),
        opts,
    )
    .unwrap();
    engine
        .submit_responses(ds.responses.iter_choices().map(|(u, i, o)| (u, i, Some(o))))
        .unwrap();
    (engine, k)
}

fn unoriented_opts() -> EngineOpts {
    EngineOpts {
        solver: SolverKind::Power,
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A small delta guaranteed to change state: `count` users flip their
/// current answer on item 0 to the next option.
fn small_delta(engine: &RankingEngine, count: usize) -> Vec<(usize, usize, Option<u16>)> {
    let matrix = engine.matrix();
    let k = matrix.options_of(0);
    (0..count)
        .map(|u| {
            let user = 3 * u + 1;
            let next = match matrix.choice(user, 0) {
                Some(opt) => (opt + 1) % k,
                None => 0,
            };
            (user, 0, Some(next))
        })
        .collect()
}

#[test]
fn warm_solve_after_small_delta_matches_cold_and_iterates_less() {
    let (mut engine, _k) = seeded_engine(400, 60, unoriented_opts());
    engine.current_ranking().unwrap();

    let delta = small_delta(&engine, 8);
    engine.submit_responses(delta.iter().copied()).unwrap();
    let warm = engine.current_ranking().unwrap();
    let warm_iters = engine.stats().last_iterations;
    assert_eq!(engine.stats().warm_solves, 1);

    // Cold reference at the same state: fresh engine, same edits.
    let (mut cold_engine, _) = seeded_engine(400, 60, unoriented_opts());
    cold_engine.submit_responses(delta).unwrap();
    let cold = cold_engine.current_ranking().unwrap();
    let cold_iters = cold_engine.stats().last_iterations;

    // Strictly fewer iterations on this seeded instance.
    assert!(
        warm_iters < cold_iters,
        "warm ({warm_iters}) must beat cold ({cold_iters})"
    );

    // Tolerance-level agreement: same ranking up to the C1P reversal
    // symmetry, and score vectors close in the sign-invariant L2 sense
    // once both are normalized.
    let wo = warm.order_best_to_worst();
    let co = cold.order_best_to_worst();
    let rev: Vec<usize> = co.iter().rev().copied().collect();
    assert!(wo == co || wo == rev, "orders diverge");
    let normalize = |v: &[f64]| {
        let n = (v.iter().map(|x| x * x).sum::<f64>()).sqrt();
        v.iter().map(|x| x / n).collect::<Vec<f64>>()
    };
    let a = normalize(&warm.scores);
    let b = normalize(&cold.scores);
    let dist_direct: f64 = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let dist_flipped: f64 = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x + y) * (x + y))
        .sum::<f64>()
        .sqrt();
    let dist = dist_direct.min(dist_flipped);
    // Both solves stop at tol = 1e-5; their fixed points agree to a small
    // multiple of that.
    assert!(dist < 1e-3, "score vectors too far apart: {dist}");
}

#[test]
fn incremental_path_never_rebuilds_the_csr() {
    let m = 800;
    let n = 80;
    let (mut engine, _k) = seeded_engine(m, n, unoriented_opts());
    engine.current_ranking().unwrap();
    let baseline_rebuilds = engine.stats().rebuilds;

    // nnz of the pattern ≈ m·n answers; a full rebuild allocates at least
    // 2 index arrays (CSR + CSC) of 4 bytes each plus pointers — use the
    // index-array floor as the "rebuild-sized" yardstick.
    let nnz = engine.matrix().row_counts().iter().sum::<usize>();
    let rebuild_floor_bytes = (2 * 4 * nnz) as u64;

    for round in 0..5 {
        let delta = small_delta(&engine, 4 + round);
        engine.submit_responses(delta).unwrap();
        let before = allocated_bytes();
        engine.current_ranking().unwrap();
        let spent = allocated_bytes() - before;
        // The incremental refresh allocates iteration vectors (O(m) floats)
        // and clones for the cache — but never anything CSR-sized.
        assert!(
            spent < rebuild_floor_bytes / 4,
            "round {round}: incremental refresh allocated {spent} bytes, \
             suspiciously close to a {rebuild_floor_bytes}-byte rebuild"
        );
    }
    let stats = engine.stats();
    assert_eq!(
        stats.rebuilds, baseline_rebuilds,
        "delta-serving must not rebuild the kernel context"
    );
    // The bulk load itself rebuilt (64k answers dwarf any slack); all five
    // trickle rounds must have been in-place patches.
    assert_eq!(stats.delta_applies, 5, "every refresh was a delta patch");
    assert_eq!(stats.warm_solves, 5);

    // And the warm solves stay cheap: far fewer iterations than the cold
    // solve needed.
    assert!(
        stats.last_iterations <= 10,
        "warm solve took {} iterations",
        stats.last_iterations
    );
}

#[test]
fn zero_slack_engine_still_serves_correctly_via_rebuilds() {
    // The rebuild fallback is exercised (and counted) when slack is off.
    let opts = EngineOpts {
        row_slack: 0,
        col_slack: 0,
        ..unoriented_opts()
    };
    let (mut engine, _k) = seeded_engine(60, 20, opts);
    engine.current_ranking().unwrap();
    let delta = small_delta(&engine, 3);
    engine.submit_responses(delta.iter().copied()).unwrap();
    let served = engine.current_ranking().unwrap();
    assert!(engine.stats().rebuilds >= 1, "zero slack must rebuild");

    let (mut reference, _) = seeded_engine(60, 20, unoriented_opts());
    reference.submit_responses(delta).unwrap();
    let expected = reference.current_ranking().unwrap();
    let so = served.order_best_to_worst();
    let eo = expected.order_best_to_worst();
    let rev: Vec<usize> = eo.iter().rev().copied().collect();
    assert!(so == eo || so == rev);
}
