//! Planner ≡ forced-configuration equivalence battery.
//!
//! The cost-model planner may pick any backend (single or sharded, any
//! shard count) and any lane-format thresholds — but it must never change
//! *results*. These proptests drive a planner-configured engine and a
//! panel of forced baselines (Single × forced-CSR, Single × forced-bitmap,
//! pinned-Sharded × default formats, and the static-fallback path) through
//! identical edit streams, ranking after every batch, and assert the
//! served scores agree to ≤1e-12 throughout.
//!
//! The planner comes from a real (quick) calibration pass of the build
//! host, so the decisions under test are the decisions production would
//! make on this machine.

use hnd_core::SolverOpts;
use hnd_linalg::DensityPlan;
use hnd_plan::{calibrate, CalibrationOpts, PlanMode, Planner};
use hnd_service::{EngineOpts, RankingEngine, ShardPlan};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One calibration pass shared across every case and baseline.
fn planner() -> &'static Planner {
    static PLANNER: OnceLock<&'static Planner> = OnceLock::new();
    PLANNER.get_or_init(|| Planner::leaked(calibrate(&CalibrationOpts::quick())))
}

/// One write in a generated stream: `(user, item, choice)`.
type Write = (usize, usize, Option<u16>);

/// A generated roster + edit stream: `(m, n, options, batches)`.
type EditStream = (usize, usize, Vec<u16>, Vec<Vec<Write>>);

/// Small heterogeneous rosters with revision/clear edits — the same
/// traffic shape the shard- and delta-equivalence batteries use.
fn edit_stream() -> impl Strategy<Value = EditStream> {
    (3usize..=14, 1usize..=8).prop_flat_map(|(m, n)| {
        let options = proptest::collection::vec(1u16..=4, n);
        options.prop_flat_map(move |opts| {
            let cell = (0..m, 0..n);
            let batch = proptest::collection::vec(
                cell.prop_flat_map(move |(u, i)| {
                    (Just(u), Just(i), proptest::option::weighted(0.8, 0..5u16))
                }),
                1..12,
            );
            let opts2 = opts.clone();
            (
                Just(m),
                Just(n),
                Just(opts),
                proptest::collection::vec(batch, 1..6).prop_map(move |batches| {
                    batches
                        .into_iter()
                        .map(|b| {
                            b.into_iter()
                                .map(|(u, i, c)| (u, i, c.map(|o| o % opts2[i])))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }),
            )
        })
    })
}

fn base_opts() -> EngineOpts {
    EngineOpts {
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Builds an engine, replays the stream ranking after every batch, and
/// returns the final scores plus the per-batch score history.
fn replay(
    m: usize,
    n: usize,
    options: &[u16],
    batches: &[Vec<Write>],
    opts: EngineOpts,
) -> Vec<Vec<f64>> {
    let mut engine = RankingEngine::new(m, n, options, opts).expect("valid roster");
    let mut history = Vec::with_capacity(batches.len());
    for batch in batches {
        engine
            .submit_responses(batch.iter().copied())
            .expect("in-roster writes");
        history.push(engine.current_ranking().expect("solvable").scores);
    }
    history
}

fn assert_history_close(got: &[Vec<f64>], want: &[Vec<f64>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: batch count");
    for (k, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.len(), b.len(), "{what}: batch {k} length");
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() <= 1e-12,
                "{what}: batch {k} diverged ({x} vs {y})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planner_matches_every_forced_baseline((m, n, options, batches) in edit_stream()) {
        let planned = replay(m, n, &options, &batches, EngineOpts {
            planner: Some(planner()),
            plan_mode: PlanMode::Auto,
            ..base_opts()
        });

        // Static fallback (the PR-5 path, hand-tuned constants).
        let fallback = replay(m, n, &options, &batches, EngineOpts {
            plan_mode: PlanMode::Static,
            ..base_opts()
        });
        assert_history_close(&planned, &fallback, "planner vs static fallback");

        // Forced single backend, pure-CSR lanes.
        let csr = replay(m, n, &options, &batches, EngineOpts {
            plan_mode: PlanMode::Static,
            density_plan: DensityPlan::force_csr(),
            ..base_opts()
        });
        assert_history_close(&planned, &csr, "planner vs forced-CSR");

        // Forced single backend, all-bitmap lanes.
        let bitmap = replay(m, n, &options, &batches, EngineOpts {
            plan_mode: PlanMode::Static,
            density_plan: DensityPlan::force_bitmap(),
            ..base_opts()
        });
        assert_history_close(&planned, &bitmap, "planner vs forced-bitmap");

        // Pinned sharded backend (2 shards, activation forced on).
        let sharded = replay(m, n, &options, &batches, EngineOpts {
            plan_mode: PlanMode::Static,
            shard_plan: Some(ShardPlan {
                min_users: 2,
                ..ShardPlan::exactly(2)
            }),
            ..base_opts()
        });
        assert_history_close(&planned, &sharded, "planner vs pinned-sharded");
    }

    #[test]
    fn planner_matches_forced_configs_on_planner_opts_too(
        (m, n, options, batches) in edit_stream(),
    ) {
        // The planner with explicitly forced lane formats must equal the
        // same forced formats without a planner: the explicit density plan
        // outranks the measured thresholds, so only budgets may differ —
        // never results.
        let planned_forced = replay(m, n, &options, &batches, EngineOpts {
            planner: Some(planner()),
            plan_mode: PlanMode::Auto,
            density_plan: DensityPlan::force_bitmap(),
            ..base_opts()
        });
        let forced = replay(m, n, &options, &batches, EngineOpts {
            planner: None,
            density_plan: DensityPlan::force_bitmap(),
            ..base_opts()
        });
        assert_history_close(&planned_forced, &forced, "forced formats under planner");
    }
}
