//! The approximate-serving contract of [`RankingEngine`]: tiered queries,
//! the rank-stability delta-skip fast path, and the exactness guarantees
//! around both.
//!
//! The bitwise oracle used here is the *matched-warm-chain* reference: a
//! second engine fed the same edits, solving at exactly the versions the
//! engine under test ran its exact solves — same cold start, same
//! warm-start lineage, hence bitwise-equal scores. (Comparing against an
//! engine that solved at every wave would be a different warm chain and
//! only order-equal.)

use hnd_core::{SolverOpts, Target};
use hnd_service::{EngineOpts, QueryTier, RankingEngine};

fn opts() -> EngineOpts {
    EngineOpts {
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        planner: None, // deterministic: no per-host catalog influence
        ..Default::default()
    }
}

/// All-cuts staircase responses: user j answers item i correctly iff
/// j > i — well-separated scores, the friendly case for certification.
fn staircase(m: usize) -> Vec<(usize, usize, Option<u16>)> {
    (0..m)
        .flat_map(|j| (0..m - 1).map(move |i| (j, i, Some(u16::from(j > i)))))
        .collect()
}

fn engine(m: usize) -> RankingEngine {
    let mut e = RankingEngine::new(m, m - 1, &vec![2; m - 1], opts()).unwrap();
    e.submit_responses(staircase(m)).unwrap();
    e
}

#[test]
fn certified_top_k_matches_exact_and_counts_early_termination() {
    // A tight tolerance makes the exact solve run long enough for the
    // certificate (which needs a few convergence-rate windows before it
    // may fire) to terminate well short of it.
    let tight = || {
        let mut o = opts();
        o.solver_opts.tol = 1e-13;
        o
    };
    let m = 24;
    let build = |o: EngineOpts| {
        let mut e = RankingEngine::new(m, m - 1, &vec![2; m - 1], o).unwrap();
        e.submit_responses(staircase(m)).unwrap();
        e
    };
    let mut certified = build(tight());
    let mut exact = build(tight());
    let top = certified.top_k(5).unwrap();
    let want = exact.top_k_tier(5, QueryTier::Exact).unwrap();
    assert_eq!(top.len(), 5);
    let users = |v: &[(usize, f64)]| v.iter().map(|&(u, _)| u).collect::<Vec<_>>();
    assert_eq!(users(&top), users(&want), "certified head ≡ exact head");
    // The staircase has well-separated scores: the certificate fires well
    // before the exact tolerance on a roster this size.
    let stats = certified.stats();
    assert_eq!(stats.early_terminations, 1, "certificate fired");
    assert!(stats.iterations_saved > 0);
    assert!(
        certified.stats().last_iterations < exact.stats().last_iterations,
        "certified {} vs exact {}",
        certified.stats().last_iterations,
        exact.stats().last_iterations
    );
}

#[test]
fn coarse_tier_is_capped_and_uncertified() {
    let mut e = engine(32);
    let top = e.top_k_tier(3, QueryTier::Coarse).unwrap();
    assert_eq!(top.len(), 3);
    assert!(
        e.stats().last_iterations <= hnd_service::COARSE_MAX_ITER,
        "coarse solves stop at the cap"
    );
}

#[test]
fn rank_of_tiers_agree_on_separated_scores() {
    let m = 20;
    let mut e = engine(m);
    for user in [0, m / 2, m - 1] {
        let exact = e.rank_of_tier(user, QueryTier::Exact).unwrap();
        let certified = e.rank_of(user).unwrap();
        assert_eq!(exact, certified, "user {user}");
    }
    assert!(e.rank_of(m).is_err(), "out-of-roster user rejected");
}

#[test]
fn tiny_waves_skip_solves_and_exactness_is_restored_bitwise() {
    let m = 16;
    let k = 3;
    let mut e = engine(m);
    // Warm up the approx slot (certified solve at the bulk version).
    e.top_k(k).unwrap();
    // Calibration wave: one mid-roster flip, then an exact solve — the
    // engine measures how far one edit actually moves the scores.
    e.submit_responses([(m / 2, 0, Some(0))]).unwrap();
    let calibrated = e.current_ranking().unwrap();

    // Tiny far-from-boundary waves: single mid-roster edits whose bounded
    // influence cannot reach the top-3 (or bottom-3) gaps.
    let mut skipped_heads = Vec::new();
    for round in 0..4u16 {
        e.submit_responses([(m / 2 + 1, 1, Some(round % 2))])
            .unwrap();
        skipped_heads.push(e.top_k(k).unwrap());
    }
    let stats = e.stats();
    assert!(
        stats.skipped_solves > 0,
        "far-from-boundary waves must skip (got {stats:?})"
    );
    // Every skip served the calibrated ranking's head.
    let want_users: Vec<usize> = calibrated
        .order_best_to_worst()
        .into_iter()
        .take(k)
        .collect();
    for head in &skipped_heads {
        let got: Vec<usize> = head.iter().map(|&(u, _)| u).collect();
        assert_eq!(got, want_users, "skip serves the certified stale head");
    }

    // An exact query drains everything and restores exactness — bitwise
    // equal to the matched-warm-chain reference (same submits, solving at
    // the same two versions this engine ran exact solves at).
    let served = e.current_ranking().unwrap();
    let mut reference = engine(m);
    reference.submit_responses([(m / 2, 0, Some(0))]).unwrap();
    reference.current_ranking().unwrap();
    for round in 0..4u16 {
        reference
            .submit_responses([(m / 2 + 1, 1, Some(round % 2))])
            .unwrap();
    }
    let want = reference.current_ranking().unwrap();
    assert_eq!(served.scores, want.scores, "exactness restored bitwise");
    // And the skipped answers were right: the final exact head matches
    // what the skip path served all along.
    let final_users: Vec<usize> = served.order_best_to_worst().into_iter().take(k).collect();
    assert_eq!(final_users, want_users);
}

#[test]
fn boundary_straddling_ties_never_skip() {
    // The users at ranked positions `k-1` and `k` are exact duplicates:
    // the top-k boundary cuts through an exact tie, so no wave — however
    // tiny — may be skipped (a zero gap can never exceed a positive
    // perturbation bound). In the staircase user `j`'s score grows with
    // `j`, so the boundary pair is users `m-k` and `m-k-1`.
    let m = 10;
    let k = 3;
    let mut responses = staircase(m);
    // Make user m-k a duplicate of user m-k-1 (both answer alike).
    for (user, item, choice) in &mut responses {
        if *user == m - k {
            *choice = Some(u16::from(m - k - 1 > *item));
        }
    }
    let mut e = RankingEngine::new(m, m - 1, &vec![2; m - 1], opts()).unwrap();
    e.submit_responses(responses).unwrap();
    e.top_k(k).unwrap();
    e.submit_responses([(m / 2, 0, Some(0))]).unwrap();
    e.current_ranking().unwrap(); // calibrate
    e.submit_responses([(m / 2, 1, Some(0))]).unwrap();
    let head = e.top_k(k).unwrap();
    assert_eq!(head.len(), k);
    assert_eq!(
        e.stats().skipped_solves,
        0,
        "a tie at the boundary must force a solve"
    );
}

#[test]
fn same_version_top_k_reuses_without_counting_a_skip() {
    let mut e = engine(12);
    let first = e.top_k(4).unwrap();
    let again = e.top_k(4).unwrap();
    assert_eq!(first, again);
    assert_eq!(e.stats().skipped_solves, 0, "no pending wave, no skip");
    // One solve total: the second query reused the approx slot.
    let stats = e.stats();
    assert_eq!(stats.cold_solves + stats.warm_solves, 1);
}

#[test]
fn exact_target_query_is_bitwise_current_ranking() {
    let m = 14;
    let mut tiered = engine(m);
    let mut plain = engine(m);
    let via_tier = tiered.top_k_tier(m, QueryTier::Exact).unwrap();
    let want = plain.current_ranking().unwrap();
    let want_head: Vec<(usize, f64)> = {
        let order = want.order_best_to_worst();
        order.into_iter().map(|u| (u, want.scores[u])).collect()
    };
    assert_eq!(via_tier.len(), want_head.len());
    for (a, b) in via_tier.iter().zip(&want_head) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "exact tier is the exact solve, bitwise");
    }
    // Exact tier never early-terminates.
    assert_eq!(tiered.stats().early_terminations, 0);
}

#[test]
fn solver_target_on_engine_opts_threads_through() {
    // Sanity: an engine whose *solver options* carry a TopK target still
    // serves exact `current_ranking` (the engine's own exact path pins
    // `Target::Exact` semantics by construction of the default opts).
    let mut base = opts();
    base.solver_opts.target = Target::Exact;
    let mut e = RankingEngine::new(8, 7, &[2; 7], base).unwrap();
    e.submit_responses(staircase(8)).unwrap();
    assert_eq!(e.current_ranking().unwrap().scores.len(), 8);
}
