//! Deterministic concurrency stress: seeded client schedules driving real
//! threads against a [`SessionServer`] with ≥ 4 workers.
//!
//! The offline registry rules out `loom`-style exhaustive interleaving
//! exploration, so the harness takes the complementary approach: the *ops*
//! are seeded (every client thread derives its schedule from the test
//! seed), the *interleaving* is whatever the OS scheduler produces, and
//! every assertion is interleaving-independent:
//!
//! * versions returned to one client for one session never go backwards
//!   (per-session FIFO + single-writer),
//! * `catch_up` always succeeds (history is never truncated here),
//! * after the storm, every session's final ranking matches a **serial
//!   replay of its own log** — the log records whatever interleaving
//!   actually happened, so a fresh engine fed that log is the ground
//!   truth for what the server should be serving.
//!
//! Three distinct seeds run as three tests (the acceptance criterion).

use hnd_service::{
    EngineOpts, RankingEngine, ServerOpts, SessionId, SessionServer, SolverKind, SolverOpts,
};
use std::collections::HashMap;

const WORKERS: usize = 4;
const CLIENTS: usize = 4;
const SESSIONS: usize = 6;
const USERS: usize = 30;
const ITEMS: usize = 12;
const OPS_PER_CLIENT: usize = 120;

/// Deterministic LCG stream: the seeded schedule generator.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn opts() -> EngineOpts {
    EngineOpts {
        solver: SolverKind::Power,
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A seeded ability-structured answer: strong signal (probability of the
/// "correct" option rises steeply with user index) keeps every session's
/// spectral gap healthy, so replay comparisons are far from ties.
fn seeded_answer(rng: &mut Lcg, user: usize, item: usize, k: u16) -> u16 {
    let correct = (item % k as usize) as u16;
    let ability = user as f64 / USERS as f64;
    if (rng.below(1000) as f64) / 1000.0 < 0.15 + 0.75 * ability {
        correct
    } else {
        (correct + 1 + rng.below(k as u64 - 1) as u16) % k
    }
}

/// Sign-invariant distance between normalized score vectors.
fn score_distance(a: &[f64], b: &[f64]) -> f64 {
    let norm = |v: &[f64]| {
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
        v.iter().map(|x| x / n).collect::<Vec<f64>>()
    };
    let (a, b) = (norm(a), norm(b));
    let direct: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum::<f64>();
    let flipped: f64 = a.iter().zip(&b).map(|(x, y)| (x + y).powi(2)).sum::<f64>();
    direct.min(flipped).sqrt()
}

fn run_storm(seed: u64) {
    run_storm_with(seed, true);
}

fn run_storm_with(seed: u64, telemetry: bool) {
    let srv = SessionServer::new(ServerOpts {
        workers: WORKERS,
        idle_threshold: Some(40),
        engine: opts(),
        telemetry,
        ..Default::default()
    });
    assert_eq!(srv.workers(), WORKERS);

    // Heterogeneous rosters: sessions alternate between 2- and 3-option
    // quizzes.
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|s| {
            let k = 2 + (s % 2) as u16;
            srv.create_session(USERS, ITEMS, &[k; ITEMS]).unwrap()
        })
        .collect();

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let srv = &srv;
            let ids = &ids;
            scope.spawn(move || {
                let mut rng = Lcg(seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(client as u64 + 1)));
                // version returned by my latest submit, per session.
                let mut last_version: HashMap<SessionId, u64> = HashMap::new();
                for _ in 0..OPS_PER_CLIENT {
                    let idx = rng.below(SESSIONS as u64) as usize;
                    let sid = ids[idx];
                    let k = 2 + (idx % 2) as u16;
                    match rng.below(100) {
                        // 60%: submit a small seeded batch.
                        0..=59 => {
                            let batch: Vec<(usize, usize, Option<u16>)> = (0..1 + rng.below(4))
                                .map(|_| {
                                    let u = rng.below(USERS as u64) as usize;
                                    let i = rng.below(ITEMS as u64) as usize;
                                    (u, i, Some(seeded_answer(&mut rng, u, i, k)))
                                })
                                .collect();
                            let version = srv.submit(sid, batch).wait().unwrap();
                            let prev = last_version.insert(sid, version).unwrap_or(0);
                            assert!(
                                version >= prev,
                                "seed {seed:#x}: session {sid} went backwards: {prev} → {version}"
                            );
                        }
                        // 25%: read the ranking.
                        60..=84 => {
                            let ranking = srv.ranking(sid).wait().unwrap();
                            assert_eq!(ranking.len(), USERS);
                            assert!(ranking.scores.iter().all(|s| s.is_finite()));
                        }
                        // 10%: compacted catch-up from my last known version.
                        85..=94 => {
                            let from = last_version.get(&sid).copied().unwrap_or(0);
                            let delta = srv.catch_up(sid, from).wait().unwrap();
                            assert!(delta.from_version == from && delta.to_version >= from);
                        }
                        // 5%: force an eviction sweep mid-storm.
                        _ => {
                            srv.evict_idle();
                        }
                    }
                }
            });
        }
    });

    // The storm is over; the fleet state is frozen. Serial replay oracle:
    // a fresh engine over each session's own log must agree with what the
    // server serves.
    for &sid in &ids {
        let served = srv.ranking(sid).wait().unwrap();
        let log = srv.session_log(sid).wait().unwrap();
        let replayed = RankingEngine::from_log(log, opts())
            .unwrap()
            .current_ranking()
            .unwrap();
        assert_eq!(served.len(), replayed.len());
        let dist = score_distance(&served.scores, &replayed.scores);
        assert!(
            dist < 1e-2,
            "seed {seed:#x}: session {sid} diverged from serial replay (distance {dist:.2e})"
        );
    }
    let stats = srv.manager_stats();
    assert_eq!(
        stats.evictions, stats.rehydrations,
        "every evicted session was touched again by the final sweep above"
    );
}

#[test]
fn storm_seed_1() {
    run_storm(0xA11CE);
}

#[test]
fn storm_seed_2() {
    run_storm(0xB0B5EED);
}

#[test]
fn storm_seed_3() {
    run_storm(0x5EED_2024);
}

/// The storm battery holds with the flight recorder disabled too — the
/// telemetry-off configuration is not a separate code path for ordering.
#[test]
fn storm_with_telemetry_off() {
    run_storm_with(0xA11CE, false);
}

/// Runs a seeded schedule serially (every command settled before the
/// next) so the command order is a total order, and returns every
/// session's final score vector. With the interleaving pinned, the
/// server's output is a pure function of the schedule — which is exactly
/// what lets the test below compare telemetry-on against telemetry-off
/// bitwise.
///
/// Eviction is **on** here: `Reply::wait_settled` blocks until the worker
/// has checked the session back in, so the manager's logical clock — and
/// with it every eviction decision — is a deterministic function of the
/// schedule alone. (Plain `Reply::wait` resolves a moment *before*
/// check-in, which is why this schedule historically had to keep eviction
/// disabled.) Evicted sessions re-solve cold, and those cold solves must
/// also be bit-identical across telemetry modes.
fn serial_schedule_scores(seed: u64, telemetry: bool) -> Vec<Vec<u64>> {
    let srv = SessionServer::new(ServerOpts {
        workers: WORKERS,
        idle_threshold: Some(40),
        engine: opts(),
        telemetry,
        ..Default::default()
    });
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|s| {
            let k = 2 + (s % 2) as u16;
            srv.create_session(USERS, ITEMS, &[k; ITEMS]).unwrap()
        })
        .collect();
    let mut rng = Lcg(seed);
    for _ in 0..240 {
        let idx = rng.below(SESSIONS as u64) as usize;
        let sid = ids[idx];
        let k = 2 + (idx % 2) as u16;
        match rng.below(100) {
            0..=59 => {
                let batch: Vec<(usize, usize, Option<u16>)> = (0..1 + rng.below(4))
                    .map(|_| {
                        let u = rng.below(USERS as u64) as usize;
                        let i = rng.below(ITEMS as u64) as usize;
                        (u, i, Some(seeded_answer(&mut rng, u, i, k)))
                    })
                    .collect();
                srv.submit(sid, batch).wait_settled().unwrap();
            }
            60..=84 => {
                srv.ranking(sid).wait_settled().unwrap();
            }
            85..=94 => {
                srv.catch_up(sid, 0).wait_settled().unwrap();
            }
            // 5%: an explicit eviction sweep — deterministic now that
            // every preceding command has settled through check-in.
            _ => {
                srv.evict_idle();
            }
        }
    }
    ids.iter()
        .map(|&sid| {
            srv.ranking(sid)
                .wait_settled()
                .unwrap()
                .scores
                .iter()
                .map(|s| s.to_bits())
                .collect()
        })
        .collect()
}

/// Telemetry must be *observation only*: the identical seeded schedule
/// served with the recorder on and off yields bit-identical score vectors
/// for every session (not approximately equal — the same f64 bits).
#[test]
fn telemetry_on_and_off_serve_bitwise_identical_rankings() {
    for seed in [0xA11CEu64, 0xB0B5EED] {
        let on = serial_schedule_scores(seed, true);
        let off = serial_schedule_scores(seed, false);
        assert_eq!(
            on, off,
            "seed {seed:#x}: telemetry changed the numbers it was supposed to only watch"
        );
    }
}
