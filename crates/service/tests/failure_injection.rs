//! Service-layer failure injection: malformed client input, capacity
//! exhaustion, and lifecycle edges must degrade *gracefully* — errors for
//! the offending request, correct service for everyone else, and never a
//! panic or a silently wrong ranking.

use hnd_service::{
    EngineOpts, RankingEngine, ResponseError, ServerError, ServerOpts, SessionManager,
    SessionServer, SessionStore, SolverKind, SolverOpts, StoreOpts,
};
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let k = UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "hnd-failure-injection-{}-{tag}-{k}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn opts() -> EngineOpts {
    EngineOpts {
        solver: SolverKind::Power,
        solver_opts: SolverOpts {
            orient: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// An ability staircase with a couple of dissenting answers — a
/// well-conditioned instance whose ranking is stable under small edits.
fn staircase(m: usize, n: usize) -> Vec<(usize, usize, Option<u16>)> {
    (0..m)
        .flat_map(|j| (0..n).map(move |i| (j, i, Some(u16::from(j * n > i * m)))))
        .collect()
}

/// Orders agree up to the C1P reversal symmetry.
fn orders_agree(a: &[usize], b: &[usize]) -> bool {
    let rev: Vec<usize> = b.iter().rev().copied().collect();
    a == b || a == rev
}

#[test]
fn out_of_bounds_submit_mid_stream_keeps_previous_version_serving() {
    let mut engine = RankingEngine::new(8, 6, &[2; 6], opts()).unwrap();
    engine.submit_responses(staircase(8, 6)).unwrap();
    engine.current_ranking().unwrap();

    // A malformed batch: one valid edit, then an out-of-roster user. The
    // valid prefix commits (documented non-atomicity), the bad tuple is
    // rejected, and nothing panics.
    let before_version = engine.version();
    let err = engine
        .submit_responses([(0, 0, Some(1)), (99, 0, Some(0)), (1, 1, Some(1))])
        .unwrap_err();
    assert!(matches!(
        err,
        ResponseError::IndexOutOfBounds { user: 99, .. }
    ));
    assert_eq!(engine.version(), before_version + 1, "prefix committed");

    // The engine serves exactly the state an engine fed only the committed
    // prefix would serve — bitwise: the replica replays the identical
    // schedule (bulk, solve, prefix, solve), so both take the same
    // delta+warm path from the same cached state.
    let served = engine.current_ranking().unwrap();
    let mut replica = RankingEngine::new(8, 6, &[2; 6], opts()).unwrap();
    replica.submit_responses(staircase(8, 6)).unwrap();
    replica.current_ranking().unwrap();
    replica.submit_responses([(0, 0, Some(1))]).unwrap();
    assert_eq!(served.scores, replica.current_ranking().unwrap().scores);

    // Out-of-range options are caught by the log the same way.
    let err = engine
        .submit_responses([(2, 2, Some(7)), (3, 3, Some(0))])
        .unwrap_err();
    assert!(matches!(err, ResponseError::OptionOutOfRange { .. }));

    // …and the stream continues: later valid batches serve normally.
    engine.submit_responses([(3, 3, Some(1))]).unwrap();
    assert_eq!(engine.current_ranking().unwrap().len(), 8);
}

#[test]
fn out_of_bounds_submit_through_the_server_poisons_nothing() {
    let srv = SessionServer::new(ServerOpts {
        workers: 2,
        engine: opts(),
        ..Default::default()
    });
    let healthy = srv.create_session(6, 5, &[2; 5]).unwrap();
    let faulty = srv.create_session(6, 5, &[2; 5]).unwrap();
    srv.submit(healthy, staircase(6, 5)).wait().unwrap();
    srv.submit(faulty, staircase(6, 5)).wait().unwrap();

    let err = srv
        .submit(faulty, vec![(100, 0, Some(0))])
        .wait()
        .unwrap_err();
    assert!(matches!(
        err,
        ServerError::Response(ResponseError::IndexOutOfBounds { user: 100, .. })
    ));

    // The faulty session still serves, the healthy one never noticed, and
    // the worker that processed the bad batch is alive for both.
    assert_eq!(srv.ranking(faulty).wait().unwrap().len(), 6);
    assert_eq!(srv.ranking(healthy).wait().unwrap().len(), 6);
}

#[test]
fn slack_exhaustion_surfaces_as_rebuild_stats_not_errors() {
    let srv = SessionServer::new(ServerOpts {
        workers: 2,
        engine: EngineOpts {
            row_slack: 0,
            col_slack: 0,
            ..opts()
        },
        ..Default::default()
    });
    let id = srv.create_session(8, 6, &[2; 6]).unwrap();
    srv.submit(id, staircase(8, 6)).wait().unwrap();
    srv.ranking(id).wait().unwrap();
    let baseline = srv.stats(id).wait().unwrap();

    // Zero slack: every new answer overflows its row/column span. The
    // client sees successful rankings; the overflow shows up only as
    // rebuild counters in EngineStats.
    srv.submit(id, vec![(0, 5, Some(1))]).wait().unwrap();
    let r1 = srv.ranking(id).wait().unwrap();
    assert_eq!(r1.len(), 8);
    let stats = srv.stats(id).wait().unwrap();
    assert!(
        stats.rebuilds > baseline.rebuilds,
        "exhaustion must be observable: {stats:?} vs baseline {baseline:?}"
    );

    // A generously-slacked replica at the same state agrees on the order.
    let mut replica = RankingEngine::new(8, 6, &[2; 6], opts()).unwrap();
    replica.submit_responses(staircase(8, 6)).unwrap();
    replica.submit_responses([(0, 5, Some(1))]).unwrap();
    let expected = replica.current_ranking().unwrap();
    assert!(orders_agree(
        &r1.order_best_to_worst(),
        &expected.order_best_to_worst()
    ));
}

#[test]
fn evicted_then_touched_session_matches_never_evicted_one() {
    let mut fleet = SessionManager::new(opts());
    fleet.set_idle_threshold(Some(6));
    let victim = fleet.create_session(9, 7, &[2; 7]).unwrap();
    let busy = fleet.create_session(9, 7, &[2; 7]).unwrap();
    fleet.submit_responses(victim, staircase(9, 7)).unwrap();
    fleet.submit_responses(busy, staircase(9, 7)).unwrap();
    fleet.current_ranking(victim).unwrap();

    // A control fleet with eviction disabled, fed the identical schedule.
    let mut control = SessionManager::new(opts());
    let c_victim = control.create_session(9, 7, &[2; 7]).unwrap();
    let c_busy = control.create_session(9, 7, &[2; 7]).unwrap();
    control.submit_responses(c_victim, staircase(9, 7)).unwrap();
    control.submit_responses(c_busy, staircase(9, 7)).unwrap();
    control.current_ranking(c_victim).unwrap();

    // Busy traffic pushes the victim over the idle threshold.
    for round in 0..8u16 {
        let batch = [(0usize, 0usize, Some(round % 2))];
        fleet.submit_responses(busy, batch).unwrap();
        control.submit_responses(c_busy, batch).unwrap();
    }
    assert!(fleet.is_evicted(victim));
    assert!(!control.is_evicted(c_victim));
    assert_eq!(fleet.stats().evictions, 1);

    // Touch = rehydration; the ranking must match the never-evicted twin.
    let rehydrated = fleet.current_ranking(victim).unwrap();
    assert_eq!(fleet.stats().rehydrations, 1);
    let never_evicted = control.current_ranking(c_victim).unwrap();
    assert!(
        orders_agree(
            &rehydrated.order_best_to_worst(),
            &never_evicted.order_best_to_worst()
        ),
        "eviction must be invisible in served rankings"
    );

    // Stronger: the rehydrated solve is *bitwise* the solve of a fresh
    // engine over the same durable log (the log is the complete state).
    let fresh = RankingEngine::from_log(fleet.session_log(victim).unwrap(), opts())
        .unwrap()
        .current_ranking()
        .unwrap();
    assert_eq!(rehydrated.scores, fresh.scores);

    // And the session is warm again afterwards: the next trickle (a real
    // state change: (1, 0) holds Some(1) in this staircase) takes the
    // delta+warm path, not another cold rebuild.
    fleet.submit_responses(victim, [(1, 0, Some(0))]).unwrap();
    fleet.current_ranking(victim).unwrap();
    let stats = fleet.session(victim).unwrap().stats();
    assert!(stats.warm_solves >= 1, "rehydrated session warms back up");
}

#[test]
fn eviction_under_server_load_is_invisible_to_clients() {
    let srv = SessionServer::new(ServerOpts {
        workers: 3,
        idle_threshold: Some(4),
        engine: opts(),
        ..Default::default()
    });
    let quiet = srv.create_session(7, 5, &[2; 5]).unwrap();
    let loud = srv.create_session(7, 5, &[2; 5]).unwrap();
    srv.submit(quiet, staircase(7, 5)).wait().unwrap();
    let before = srv.ranking(quiet).wait().unwrap();
    srv.submit(loud, staircase(7, 5)).wait().unwrap();

    // Hammer the loud session until the quiet one has been evicted.
    for round in 0..50u16 {
        srv.submit(loud, vec![(0, 0, Some(round % 2))])
            .wait()
            .unwrap();
        srv.ranking(loud).wait().unwrap();
        if srv.is_evicted(quiet) {
            break;
        }
    }
    assert!(srv.is_evicted(quiet), "idle session must evict under load");

    // The evicted session answers the very next read, identically.
    let after = srv.ranking(quiet).wait().unwrap();
    assert!(!srv.is_evicted(quiet));
    assert!(srv.manager_stats().rehydrations >= 1);
    assert!(orders_agree(
        &before.order_best_to_worst(),
        &after.order_best_to_worst()
    ));
}

/// A reconnect storm served through the batched cold path (`rank_many`
/// seeding) must be bitwise identical to the same storm served one
/// session at a time — batching is a scheduling choice, never a result
/// change. `cold_batch` is forced on both sides so the test pins the
/// batched code path even on a single-core runner (where the auto
/// default would disable it).
#[test]
fn batched_cold_storm_matches_unbatched_bitwise() {
    let sessions = 5;
    let (m, n) = (24, 10);
    // Distinct per-session matrices: identical fleets would let a
    // cross-session result mix-up pass unnoticed.
    let load = |s: usize| -> Vec<(usize, usize, Option<u16>)> {
        let mut state = 0x570_0c5u64.wrapping_add((s as u64) << 13);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        (0..m)
            .flat_map(|u| (0..n).map(move |i| (u, i)))
            .map(|(u, i)| {
                let correct = (i % 2) as u16;
                let ability = u as f64 / m as f64;
                let choice = if (next() % 1000) as f64 / 1000.0 < 0.2 + 0.7 * ability {
                    correct
                } else {
                    1 - correct
                };
                (u, i, Some(choice))
            })
            .collect()
    };
    let storm = |cold_batch: usize| -> Vec<Vec<f64>> {
        let srv = SessionServer::new(ServerOpts {
            workers: 1,
            // Tick-0 idle threshold: every check-in re-evicts, so the
            // explicit sweep below finds the whole fleet cold.
            idle_threshold: Some(0),
            engine: opts(),
            cold_batch,
            ..Default::default()
        });
        let ids: Vec<_> = (0..sessions)
            .map(|s| {
                let id = srv.create_session(m, n, &vec![2; n]).unwrap();
                srv.submit(id, load(s)).wait().unwrap();
                id
            })
            .collect();
        srv.evict_idle();
        // One pipelined read per session: with `cold_batch > 1` a single
        // worker drains these as one rank_many pass.
        let reads: Vec<_> = ids.iter().map(|&id| srv.ranking(id)).collect();
        reads
            .into_iter()
            .map(|r| r.wait().unwrap().scores)
            .collect()
    };
    let unbatched = storm(1);
    let batched = storm(8);
    assert_eq!(unbatched, batched);
}

/// Evict-to-disk, then a process "restart" (a brand-new manager over the
/// same store directory): the adopted session's first touch must serve a
/// ranking bitwise identical to a never-evicted engine over the same
/// committed log — spilling is invisible in results.
#[test]
fn spilled_session_survives_a_process_restart_bitwise() {
    let dir = temp_dir("restart");
    // "Process 1": commit a roster through a store-backed fleet, spill it.
    {
        let store = Arc::new(SessionStore::open(&dir, StoreOpts::default()).unwrap());
        let mut fleet = SessionManager::with_store(opts(), store);
        let victim = fleet.create_session(9, 7, &[2; 7]).unwrap();
        fleet.submit_responses(victim, staircase(9, 7)).unwrap();
        fleet.current_ranking(victim).unwrap();
        assert!(fleet.evict_session(victim));
        assert!(fleet.is_spilled(victim), "store-backed eviction spills");
        assert_eq!(fleet.stats().spills, 1);
        assert_eq!(fleet.stats().store_errors, 0);
        // Fleet and store drop here: the "process" is gone. Committed
        // state lives only in the directory now.
    }

    // A never-evicted control fed the identical schedule.
    let mut control = SessionManager::new(opts());
    let c_victim = control.create_session(9, 7, &[2; 7]).unwrap();
    control.submit_responses(c_victim, staircase(9, 7)).unwrap();
    control.current_ranking(c_victim).unwrap();

    // "Process 2": a fresh manager adopts the spilled session, id intact.
    let store = Arc::new(SessionStore::open(&dir, StoreOpts::default()).unwrap());
    let mut fleet = SessionManager::with_store(opts(), store);
    assert_eq!(fleet.session_ids(), vec![0]);
    let victim = 0;
    assert!(fleet.is_spilled(victim));
    let restored = fleet.current_ranking(victim).unwrap();
    assert_eq!(fleet.stats().restores, 1);
    assert_eq!(fleet.stats().rehydrations, 1);
    // Snapshot was cut at registration (version 0): the whole stream came
    // back through WAL replay, and the engine knows its recovery cost.
    assert_eq!(fleet.session(victim).unwrap().stats().wal_replayed, 63);

    let never_evicted = control.current_ranking(c_victim).unwrap();
    assert!(
        orders_agree(
            &restored.order_best_to_worst(),
            &never_evicted.order_best_to_worst()
        ),
        "the restart must be invisible in served rankings"
    );
    // Bitwise: both logs hold the identical committed stream, so engines
    // built from them solve to the last bit the same.
    let restored_twin = RankingEngine::from_log(fleet.session_log(victim).unwrap(), opts())
        .unwrap()
        .current_ranking()
        .unwrap();
    let control_twin = RankingEngine::from_log(control.session_log(c_victim).unwrap(), opts())
        .unwrap()
        .current_ranking()
        .unwrap();
    assert_eq!(restored.scores, restored_twin.scores);
    assert_eq!(restored.scores, control_twin.scores);

    // The restored session keeps serving: the stream continues.
    fleet.submit_responses(victim, [(0, 0, Some(0))]).unwrap();
    assert_eq!(fleet.current_ranking(victim).unwrap().len(), 9);
    std::fs::remove_dir_all(&dir).ok();
}

/// A client whose cached version predates the in-memory history
/// truncation must still resync: the server serves the delta off the WAL
/// (one `apply_delta` lands exactly at head), where the log alone would
/// fail with `HistoryUnavailable`.
#[test]
fn catch_up_across_truncated_history_serves_from_the_wal() {
    let dir = temp_dir("catchup");
    let store = Arc::new(SessionStore::open(&dir, StoreOpts::default()).unwrap());
    let srv = SessionServer::with_store(
        ServerOpts {
            workers: 2,
            engine: EngineOpts {
                // Aggressive retention: in-memory history keeps only the
                // last 4 edits, far behind a version-0 client.
                history_retention: Some(4),
                ..opts()
            },
            ..Default::default()
        },
        store,
    );
    let id = srv.create_session(6, 5, &[2; 5]).unwrap();
    // The client caches the version-0 (empty) state.
    let mut client = srv.session_log(id).wait().unwrap().to_matrix();
    for chunk in staircase(6, 5).chunks(2) {
        srv.submit(id, chunk.to_vec()).wait().unwrap();
    }
    let head_log = srv.session_log(id).wait().unwrap();
    assert!(
        head_log.compact_range(0, head_log.version()).is_err(),
        "the in-memory ledger alone must NOT reach version 0 anymore"
    );

    // One delta off the WAL, one apply_delta, exactly at head.
    let delta = srv.catch_up(id, 0).wait().unwrap();
    assert_eq!(delta.from_version, 0);
    assert_eq!(delta.to_version, head_log.version());
    client.apply_delta(&delta).unwrap();
    assert_eq!(client, head_log.to_matrix());

    // A mid-stream pre-truncation version resyncs the same way.
    let mut mid = hnd_service::ResponseLog::new(6, 5, &[2; 5]).unwrap();
    for &(u, i, c) in &staircase(6, 5)[..3] {
        mid.set(u, i, c).unwrap();
    }
    let mut mid_client = mid.to_matrix();
    let delta = srv.catch_up(id, mid.version()).wait().unwrap();
    mid_client.apply_delta(&delta).unwrap();
    assert_eq!(mid_client, head_log.to_matrix());
    std::fs::remove_dir_all(&dir).ok();
}

/// Log reads against a *spilled* session answer straight off the store's
/// files — no restore, no engine rebuild — while a real ranking read
/// restores from disk (and reports the replay cost in its stats).
#[test]
fn spilled_sessions_answer_catch_up_without_restoring() {
    let dir = temp_dir("spilled-catchup");
    let store = Arc::new(SessionStore::open(&dir, StoreOpts::default()).unwrap());
    let srv = SessionServer::with_store(
        ServerOpts {
            workers: 2,
            idle_threshold: Some(2),
            engine: opts(),
            ..Default::default()
        },
        store,
    );
    let quiet = srv.create_session(5, 4, &[2; 4]).unwrap();
    let loud = srv.create_session(5, 4, &[2; 4]).unwrap();
    srv.submit(quiet, staircase(5, 4)).wait().unwrap();
    srv.ranking(quiet).wait().unwrap();
    let mut round = 0u16;
    while !srv.is_evicted(quiet) {
        assert!(round < 64, "quiet session never evicted");
        srv.submit(loud, vec![(0, 0, Some(round % 2))])
            .wait()
            .unwrap();
        round += 1;
    }
    assert!(srv.manager_stats().spills >= 1, "eviction goes to disk");
    let restores = srv.manager_stats().restores;

    let delta = srv.catch_up(quiet, 0).wait().unwrap();
    assert_eq!(delta.to_version, 20);
    assert!(
        srv.is_evicted(quiet),
        "catch_up must not restore a spilled session"
    );
    assert_eq!(srv.manager_stats().restores, restores);
    assert_eq!(srv.session_log(quiet).wait().unwrap().version(), 20);
    assert_eq!(srv.manager_stats().restores, restores);

    // …while an actual ranking read restores from disk.
    let ranking = srv.ranking(quiet).wait().unwrap();
    assert_eq!(ranking.len(), 5);
    assert!(!srv.is_evicted(quiet));
    assert_eq!(srv.manager_stats().restores, restores + 1);
    assert_eq!(srv.stats(quiet).wait().unwrap().wal_replayed, 20);
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability acceptance gate: after an injected mid-stream
/// failure, the flight recorder must reconstruct the *full* lifecycle of
/// a command — enqueue → dequeue (dwell) → checkout → solve → reply —
/// ordered by nanosecond stamp, and the hub must have captured an
/// automatic post-mortem dump at the moment the command failed.
#[test]
fn trace_dump_reconstructs_command_lifecycle_after_injected_failure() {
    use hnd_service::{CommandKind, EventKind};

    // One worker + serial waits: every command drains alone, so each gets
    // its own Checkout event tagged with its own seq.
    let srv = SessionServer::new(ServerOpts {
        workers: 1,
        engine: opts(),
        ..Default::default()
    });
    let id = srv.create_session(6, 5, &[2; 5]).unwrap();
    srv.submit(id, staircase(6, 5)).wait().unwrap();
    srv.ranking(id).wait().unwrap();

    // Injected failure: an out-of-roster user mid-stream.
    let err = srv.submit(id, vec![(100, 0, Some(0))]).wait().unwrap_err();
    assert!(matches!(
        err,
        ServerError::Response(ResponseError::IndexOutOfBounds { user: 100, .. })
    ));

    // The hub captured a post-mortem dump at the failure, containing the
    // failed submit's not-ok reply. Recording happens *before* the reply
    // is sent, so the dump is guaranteed visible the moment `wait`
    // returned — no settling needed.
    let post_mortem = srv
        .last_error_trace()
        .expect("no post-mortem dump captured");
    assert!(!post_mortem.is_empty());
    let failed_reply = post_mortem
        .workers
        .iter()
        .flat_map(|w| &w.events)
        .find(|e| {
            matches!(
                e.kind,
                EventKind::Reply {
                    cmd: CommandKind::Submit,
                    ok: false,
                    ..
                }
            )
        })
        .expect("post-mortem holds the failed submit's reply");
    // Optional CI artifact: serialize the post-mortem next to the build.
    if let Ok(path) = std::env::var("TRACE_DUMP_OUT") {
        std::fs::write(&path, post_mortem.to_json()).expect("write trace artifact");
    }

    // On-demand dump: reconstruct the successful ranking command's
    // lifecycle across rings by its seq.
    let dump = srv.trace_dump();
    let ranking_seq = dump
        .workers
        .iter()
        .flat_map(|w| &w.events)
        .find(|e| {
            matches!(
                e.kind,
                EventKind::Enqueue {
                    cmd: CommandKind::Ranking
                }
            )
        })
        .expect("client ring holds the ranking enqueue")
        .seq;
    let lifecycle = dump.command_events(ranking_seq);
    let names: Vec<&str> = lifecycle.iter().map(|e| e.kind.name()).collect();
    // Full lifecycle in stamp order: enqueue (client ring), checkout (the
    // worker takes the engine before draining), dequeue with dwell, solve
    // start/end, ok reply (worker ring). Backend patch/rebuild events may
    // interleave between dequeue and the solve depending on slack state.
    let pos = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("lifecycle missing {name}: {names:?}"))
    };
    assert_eq!(names[0], "enqueue", "lifecycle: {names:?}");
    assert!(pos("enqueue") < pos("checkout"), "lifecycle: {names:?}");
    assert!(pos("checkout") < pos("dequeue"), "lifecycle: {names:?}");
    assert!(pos("dequeue") < pos("solve_start"), "lifecycle: {names:?}");
    assert!(
        pos("solve_start") < pos("solve_end"),
        "lifecycle: {names:?}"
    );
    assert_eq!(*names.last().unwrap(), "reply", "lifecycle: {names:?}");
    assert!(
        lifecycle.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
        "stamps are nondecreasing"
    );
    assert!(lifecycle.iter().all(|e| e.session == id));
    match lifecycle.last().unwrap().kind {
        EventKind::Reply { ok, e2e_ns, .. } => {
            assert!(ok);
            assert!(e2e_ns > 0, "end-to-end latency was measured");
        }
        _ => unreachable!(),
    }
    // The failed command's seq is strictly after the ranking's.
    assert!(failed_reply.seq > ranking_seq);

    // Telemetry off: the recorder stays empty and dumps are None.
    let quiet = SessionServer::new(ServerOpts {
        workers: 1,
        engine: opts(),
        telemetry: false,
        ..Default::default()
    });
    let qid = quiet.create_session(4, 3, &[2; 3]).unwrap();
    quiet.submit(qid, staircase(4, 3)).wait().unwrap();
    let _ = quiet
        .submit(qid, vec![(99, 0, Some(0))])
        .wait()
        .unwrap_err();
    assert!(quiet.trace_dump().is_empty());
    assert!(quiet.last_error_trace().is_none());
}
