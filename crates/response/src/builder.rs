//! Incremental construction of [`ResponseMatrix`] values.

use crate::{ResponseError, ResponseMatrix};

/// Builder for [`ResponseMatrix`] when choices arrive one at a time (e.g.
/// from a dataset file or a generator loop).
///
/// ```
/// use hnd_response::ResponseMatrixBuilder;
///
/// let mut b = ResponseMatrixBuilder::new(2, 3, &[3, 2, 4]).unwrap();
/// b.set(0, 0, Some(2)).unwrap();
/// b.set(1, 2, Some(3)).unwrap();
/// let m = b.build();
/// assert_eq!(m.choice(0, 0), Some(2));
/// assert_eq!(m.choice(1, 1), None);
/// ```
#[derive(Debug, Clone)]
pub struct ResponseMatrixBuilder {
    n_users: usize,
    n_items: usize,
    options_per_item: Vec<u16>,
    choices: Vec<Option<u16>>,
}

impl ResponseMatrixBuilder {
    /// Creates a builder with all cells unanswered.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn new(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<Self, ResponseError> {
        if n_items == 0 {
            return Err(ResponseError::NoItems);
        }
        if n_users == 0 {
            return Err(ResponseError::NoUsers);
        }
        if options_per_item.len() != n_items {
            return Err(ResponseError::OptionsLengthMismatch {
                expected: n_items,
                got: options_per_item.len(),
            });
        }
        if let Some(item) = options_per_item.iter().position(|&k| k == 0) {
            return Err(ResponseError::EmptyItem { item });
        }
        Ok(ResponseMatrixBuilder {
            n_users,
            n_items,
            options_per_item: options_per_item.to_vec(),
            choices: vec![None; n_users * n_items],
        })
    }

    /// Convenience constructor for the homogeneous case where every item has
    /// the same number of options `k`.
    pub fn homogeneous(n_users: usize, n_items: usize, k: u16) -> Result<Self, ResponseError> {
        let opts = vec![k; n_items];
        Self::new(n_users, n_items, &opts)
    }

    /// Records (or clears, with `None`) the choice of `user` on `item`.
    ///
    /// # Errors
    /// Rejects out-of-range option indices.
    ///
    /// # Panics
    /// Panics if `user` or `item` are out of bounds (programming error).
    pub fn set(
        &mut self,
        user: usize,
        item: usize,
        choice: Option<u16>,
    ) -> Result<(), ResponseError> {
        assert!(user < self.n_users, "user index out of bounds");
        assert!(item < self.n_items, "item index out of bounds");
        if let Some(opt) = choice {
            if opt >= self.options_per_item[item] {
                return Err(ResponseError::OptionOutOfRange {
                    user,
                    item,
                    option: opt,
                    num_options: self.options_per_item[item],
                });
            }
        }
        self.choices[user * self.n_items + item] = choice;
        Ok(())
    }

    /// Finalizes the matrix.
    pub fn build(self) -> ResponseMatrix {
        ResponseMatrix::from_parts(self.n_items, self.options_per_item, self.choices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_overwrite() {
        let mut b = ResponseMatrixBuilder::homogeneous(2, 2, 3).unwrap();
        b.set(0, 0, Some(1)).unwrap();
        b.set(0, 0, Some(2)).unwrap(); // overwrite
        b.set(1, 1, Some(0)).unwrap();
        b.set(1, 1, None).unwrap(); // clear
        let m = b.build();
        assert_eq!(m.choice(0, 0), Some(2));
        assert_eq!(m.choice(1, 1), None);
        assert_eq!(m.n_users(), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = ResponseMatrixBuilder::new(1, 1, &[2]).unwrap();
        assert!(b.set(0, 0, Some(2)).is_err());
        assert!(b.set(0, 0, Some(1)).is_ok());
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(ResponseMatrixBuilder::new(0, 1, &[2]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 0, &[]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 1, &[0]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 2, &[2]).is_err());
    }

    #[test]
    #[should_panic(expected = "user index")]
    fn panics_on_bad_user() {
        let mut b = ResponseMatrixBuilder::homogeneous(1, 1, 2).unwrap();
        let _ = b.set(5, 0, Some(0));
    }
}
