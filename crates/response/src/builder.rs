//! Incremental construction of [`ResponseMatrix`] values.
//!
//! The builder is the one-shot convenience face of [`ResponseLog`]: same
//! validation, same cell semantics, but no version/delta bookkeeping in the
//! API. Code that needs the stream-of-edits view (versions, deltas,
//! snapshots) should hold a [`ResponseLog`] directly.

use crate::{ResponseError, ResponseLog, ResponseMatrix};

/// Builder for [`ResponseMatrix`] when choices arrive one at a time (e.g.
/// from a dataset file or a generator loop).
///
/// ```
/// use hnd_response::ResponseMatrixBuilder;
///
/// let mut b = ResponseMatrixBuilder::new(2, 3, &[3, 2, 4]).unwrap();
/// b.set(0, 0, Some(2)).unwrap();
/// b.set(1, 2, Some(3)).unwrap();
/// let m = b.build();
/// assert_eq!(m.choice(0, 0), Some(2));
/// assert_eq!(m.choice(1, 1), None);
/// ```
#[derive(Debug, Clone)]
pub struct ResponseMatrixBuilder {
    log: ResponseLog,
}

impl ResponseMatrixBuilder {
    /// Creates a builder with all cells unanswered.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn new(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<Self, ResponseError> {
        Ok(ResponseMatrixBuilder {
            log: ResponseLog::new(n_users, n_items, options_per_item)?,
        })
    }

    /// Convenience constructor for the homogeneous case where every item has
    /// the same number of options `k`.
    pub fn homogeneous(n_users: usize, n_items: usize, k: u16) -> Result<Self, ResponseError> {
        Ok(ResponseMatrixBuilder {
            log: ResponseLog::homogeneous(n_users, n_items, k)?,
        })
    }

    /// Records (or clears, with `None`) the choice of `user` on `item`.
    ///
    /// # Errors
    /// Rejects out-of-range option indices.
    ///
    /// # Panics
    /// Panics if `user` or `item` are out of bounds (programming error).
    pub fn set(
        &mut self,
        user: usize,
        item: usize,
        choice: Option<u16>,
    ) -> Result<(), ResponseError> {
        self.log.set(user, item, choice).map(|_| ())
    }

    /// Finalizes the matrix.
    pub fn build(self) -> ResponseMatrix {
        self.log.to_matrix()
    }

    /// Converts the builder into the versioned log form (version 0 history
    /// baseline at the current contents).
    pub fn into_log(mut self) -> ResponseLog {
        self.log.forget_history();
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_overwrite() {
        let mut b = ResponseMatrixBuilder::homogeneous(2, 2, 3).unwrap();
        b.set(0, 0, Some(1)).unwrap();
        b.set(0, 0, Some(2)).unwrap(); // overwrite
        b.set(1, 1, Some(0)).unwrap();
        b.set(1, 1, None).unwrap(); // clear
        let m = b.build();
        assert_eq!(m.choice(0, 0), Some(2));
        assert_eq!(m.choice(1, 1), None);
        assert_eq!(m.n_users(), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = ResponseMatrixBuilder::new(1, 1, &[2]).unwrap();
        assert!(b.set(0, 0, Some(2)).is_err());
        assert!(b.set(0, 0, Some(1)).is_ok());
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(ResponseMatrixBuilder::new(0, 1, &[2]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 0, &[]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 1, &[0]).is_err());
        assert!(ResponseMatrixBuilder::new(1, 2, &[2]).is_err());
    }

    #[test]
    #[should_panic(expected = "user index")]
    fn panics_on_bad_user() {
        let mut b = ResponseMatrixBuilder::homogeneous(1, 1, 2).unwrap();
        let _ = b.set(5, 0, Some(0));
    }

    #[test]
    fn into_log_continues_from_built_state() {
        let mut b = ResponseMatrixBuilder::homogeneous(2, 2, 3).unwrap();
        b.set(0, 0, Some(1)).unwrap();
        let mut log = b.into_log();
        assert_eq!(log.choice(0, 0), Some(1));
        // Builder edits are the baseline, not deltas.
        assert!(log.snapshot().delta.is_none());
        log.set(1, 1, Some(2)).unwrap();
        assert_eq!(log.snapshot().delta.unwrap().len(), 1);
    }
}
