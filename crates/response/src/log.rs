//! The versioned response log: the streaming-source-of-truth for serving.
//!
//! Production traffic does not deliver finished response matrices — it
//! delivers a *stream of edits* (a user answers one more item, revises an
//! answer, clears one). [`ResponseLog`] is the append/edit ledger for that
//! stream: every committed edit bumps a monotonically increasing version,
//! and [`ResponseLog::snapshot`] produces a [`VersionedMatrix`] carrying
//! the full matrix, its version, and the [`ResponseDelta`] since the
//! previous snapshot. Downstream consumers (incremental kernels, warm-start
//! caches, batched refreshers) key everything by that version, so a cache
//! hit is an integer comparison and a cache miss knows exactly which cells
//! changed.
//!
//! ## Cross-version compaction
//!
//! Committed edits are *retained* (not discarded once snapshotted), so the
//! log can serve [`ResponseLog::compact_range`]: the edits between **any**
//! two retained versions composed down to at most one edit per touched
//! cell (last-write-wins). A client holding a cached version `a` catches
//! up to head in a single `apply_delta`, no matter how many commits and
//! snapshots happened in between. Retention is unbounded by default —
//! [`ResponseLog::truncate_history`] bounds it once every interested
//! client has moved past a version, and [`ResponseLog::forget_history`]
//! drops it entirely.

use crate::{ResponseError, ResponseMatrix};

/// Last-write-wins composition of an edit sequence: net effect per cell,
/// keyed `(user, item)` → `(first from, last to)`. Cells whose net change
/// cancels (`from == to`, e.g. `A→B→A`) are *retained* — callers filter.
/// Shared by [`ResponseLog::compact_range`] and the kernel-context patch
/// (`ResponseOps::apply_delta`) so the two can never drift apart.
pub(crate) fn net_cell_effects(
    edits: &[ResponseEdit],
) -> std::collections::BTreeMap<(usize, usize), (Option<u16>, Option<u16>)> {
    let mut net = std::collections::BTreeMap::new();
    for edit in edits {
        net.entry((edit.user, edit.item))
            .and_modify(|(_, to)| *to = edit.to)
            .or_insert((edit.from, edit.to));
    }
    net
}

/// One committed cell edit: user `user` changed their answer on `item`
/// from `from` to `to` (either side may be `None` = unanswered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseEdit {
    /// The user whose answer changed.
    pub user: usize,
    /// The item the answer belongs to.
    pub item: usize,
    /// The previous choice (`None` = was unanswered).
    pub from: Option<u16>,
    /// The new choice (`None` = cleared).
    pub to: Option<u16>,
}

/// The edits between two versions of a [`ResponseLog`], oldest first.
///
/// Deltas compose: applying the edits of consecutive deltas in order
/// reproduces the newer state from the older one exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseDelta {
    /// Version the delta starts from (exclusive).
    pub from_version: u64,
    /// Version the delta ends at (inclusive).
    pub to_version: u64,
    /// The committed edits, in commit order.
    pub edits: Vec<ResponseEdit>,
}

impl ResponseDelta {
    /// Number of edits carried.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// `true` when no cells changed.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Composes raw `from..to` edits (e.g. a [`ResponseLog::history_range`]
    /// slice) into a compacted delta: last-write-wins, at most one edit per
    /// touched cell, net no-ops dropped. The `O(edits)` half of
    /// [`ResponseLog::compact_range`], callable on copied-out edits so
    /// concurrent servers can compose outside their locks.
    pub fn compacted(from_version: u64, to_version: u64, edits: &[ResponseEdit]) -> Self {
        ResponseDelta {
            from_version,
            to_version,
            edits: net_cell_effects(edits)
                .into_iter()
                .filter(|&(_, (f, t))| f != t)
                .map(|((user, item), (f, t))| ResponseEdit {
                    user,
                    item,
                    from: f,
                    to: t,
                })
                .collect(),
        }
    }
}

/// A response matrix together with the log version it was snapshotted at
/// and the delta from the previous snapshot — the unit every downstream
/// cache keys on.
#[derive(Debug, Clone)]
pub struct VersionedMatrix {
    /// The full matrix at `version`.
    pub matrix: ResponseMatrix,
    /// The log version this snapshot captures.
    pub version: u64,
    /// Edits since the previous snapshot (`None` for the first snapshot,
    /// whose baseline is the empty all-`None` matrix… or whenever the log
    /// cannot say, e.g. after `forget_history`).
    pub delta: Option<ResponseDelta>,
}

/// Append/edit ledger over a fixed roster of `n_users × n_items`
/// multiple-choice cells.
///
/// The roster (user count, item count, options per item) is fixed at
/// construction — the streaming regime this models is "cohort answers
/// arrive over time", not "the quiz grows new questions mid-flight". A
/// roster change is a new log (and a cold solve downstream).
///
/// ```
/// use hnd_response::ResponseLog;
///
/// let mut log = ResponseLog::homogeneous(3, 2, 4).unwrap();
/// log.set(0, 0, Some(2)).unwrap();
/// log.set(1, 1, Some(3)).unwrap();
/// let v1 = log.snapshot();
/// assert_eq!(v1.version, 2);
/// assert!(v1.delta.is_none()); // first snapshot = baseline
///
/// log.set(0, 0, Some(1)).unwrap(); // revision
/// let v2 = log.snapshot();
/// assert_eq!(v2.version, 3);
/// let delta = v2.delta.unwrap();
/// assert_eq!(delta.from_version, 2);
/// assert_eq!(delta.edits[0].from, Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct ResponseLog {
    n_users: usize,
    n_items: usize,
    options_per_item: Vec<u16>,
    choices: Vec<Option<u16>>,
    version: u64,
    /// Retained committed edits: `history[k]` is the edit that took the
    /// log from version `history_base + k` to `history_base + k + 1`.
    /// Serves both the snapshot deltas (the `snapshot_version..` suffix)
    /// and cross-version compaction (any retained range).
    history: Vec<ResponseEdit>,
    /// Version the retained history starts at (edits for versions
    /// `≤ history_base` have been truncated away).
    history_base: u64,
    /// Version of the last snapshot (its delta starts right after it).
    snapshot_version: u64,
    /// Whether the delta to the previous snapshot is known (false right
    /// after construction — the baseline is the empty matrix, not a
    /// previous snapshot).
    has_baseline: bool,
}

impl ResponseLog {
    /// Creates an empty log (all cells unanswered) over a fixed roster.
    ///
    /// # Errors
    /// Rejects empty user/item sets and zero-option items.
    pub fn new(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
    ) -> Result<Self, ResponseError> {
        if n_items == 0 {
            return Err(ResponseError::NoItems);
        }
        if n_users == 0 {
            return Err(ResponseError::NoUsers);
        }
        if options_per_item.len() != n_items {
            return Err(ResponseError::OptionsLengthMismatch {
                expected: n_items,
                got: options_per_item.len(),
            });
        }
        if let Some(item) = options_per_item.iter().position(|&k| k == 0) {
            return Err(ResponseError::EmptyItem { item });
        }
        Ok(ResponseLog {
            n_users,
            n_items,
            options_per_item: options_per_item.to_vec(),
            choices: vec![None; n_users * n_items],
            version: 0,
            history: Vec::new(),
            history_base: 0,
            snapshot_version: 0,
            has_baseline: false,
        })
    }

    /// Convenience constructor for the homogeneous case where every item
    /// has the same number of options `k`.
    pub fn homogeneous(n_users: usize, n_items: usize, k: u16) -> Result<Self, ResponseError> {
        let opts = vec![k; n_items];
        Self::new(n_users, n_items, &opts)
    }

    /// Seeds a log from an existing matrix (version 0, no pending edits).
    pub fn from_matrix(matrix: &ResponseMatrix) -> Self {
        let mut choices = Vec::with_capacity(matrix.n_users() * matrix.n_items());
        for u in 0..matrix.n_users() {
            choices.extend_from_slice(matrix.user_row(u));
        }
        ResponseLog {
            n_users: matrix.n_users(),
            n_items: matrix.n_items(),
            options_per_item: (0..matrix.n_items())
                .map(|i| matrix.options_of(i))
                .collect(),
            choices,
            version: 0,
            history: Vec::new(),
            history_base: 0,
            snapshot_version: 0,
            has_baseline: false,
        }
    }

    /// Reconstructs a log at `version` from externally persisted state
    /// (e.g. a binary snapshot): the choices are adopted as-is, the
    /// retained history starts empty at `version`, and the next
    /// `drain_delta` reports `None` (a cold rebuild point) — exactly the
    /// shape of a log whose history was truncated to the head.
    ///
    /// # Errors
    /// Rejects the same degenerate shapes as [`Self::new`], a `choices`
    /// buffer whose length is not `n_users × n_items`, and stored choices
    /// out of range for their item.
    pub fn restore(
        n_users: usize,
        n_items: usize,
        options_per_item: &[u16],
        choices: Vec<Option<u16>>,
        version: u64,
    ) -> Result<Self, ResponseError> {
        let mut log = Self::new(n_users, n_items, options_per_item)?;
        if choices.len() != n_users * n_items {
            return Err(ResponseError::WrongRowLength {
                user: 0,
                expected: n_users * n_items,
                got: choices.len(),
            });
        }
        for (cell, &choice) in choices.iter().enumerate() {
            if let Some(opt) = choice {
                let item = cell % n_items;
                if opt >= options_per_item[item] {
                    return Err(ResponseError::OptionOutOfRange {
                        user: cell / n_items,
                        item,
                        option: opt,
                        num_options: options_per_item[item],
                    });
                }
            }
        }
        log.choices = choices;
        log.version = version;
        log.history_base = version;
        log.snapshot_version = version;
        log.has_baseline = false;
        Ok(log)
    }

    /// Re-applies a previously committed edit during recovery, validating
    /// that it chains onto the current state. Unlike [`Self::set`], bounds
    /// violations are *errors*, not panics — a replay source is external
    /// data (a WAL tail), not in-process code — and the edit's recorded
    /// `from` must match the stored cell, or the stream has diverged.
    ///
    /// A chained no-op (`from == to`, never produced by [`Self::set`]) is
    /// rejected as a [`ResponseError::DeltaMismatch`]: committed edits bump
    /// the version by exactly one each, and replay must preserve that.
    ///
    /// Returns the version after the edit.
    pub fn replay(&mut self, edit: ResponseEdit) -> Result<u64, ResponseError> {
        if edit.user >= self.n_users || edit.item >= self.n_items {
            return Err(ResponseError::IndexOutOfBounds {
                user: edit.user,
                item: edit.item,
                n_users: self.n_users,
                n_items: self.n_items,
            });
        }
        if let Some(opt) = edit.to {
            if opt >= self.options_per_item[edit.item] {
                return Err(ResponseError::OptionOutOfRange {
                    user: edit.user,
                    item: edit.item,
                    option: opt,
                    num_options: self.options_per_item[edit.item],
                });
            }
        }
        let cell = &mut self.choices[edit.user * self.n_items + edit.item];
        if *cell != edit.from || edit.from == edit.to {
            return Err(ResponseError::DeltaMismatch {
                user: edit.user,
                item: edit.item,
            });
        }
        *cell = edit.to;
        self.history.push(edit);
        self.version += 1;
        Ok(self.version)
    }

    /// Number of users in the roster.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items in the roster.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Options of item `i`.
    pub fn options_of(&self, item: usize) -> u16 {
        self.options_per_item[item]
    }

    /// The per-item option counts as a slice (the persistence codec walks
    /// the whole roster; per-item [`Self::options_of`] calls would be noise).
    pub fn options(&self) -> &[u16] {
        &self.options_per_item
    }

    /// The choices of one user across all items, in item order.
    pub fn user_row(&self, user: usize) -> &[Option<u16>] {
        &self.choices[user * self.n_items..(user + 1) * self.n_items]
    }

    /// Current version: the number of committed (state-changing) edits.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The current choice of `user` on `item`.
    pub fn choice(&self, user: usize, item: usize) -> Option<u16> {
        self.choices[user * self.n_items + item]
    }

    /// Number of committed edits not yet captured by a snapshot.
    pub fn pending_edits(&self) -> usize {
        (self.version - self.snapshot_version) as usize
    }

    /// Oldest version the retained history can still compact *from*
    /// (edits at versions `≤` this are gone).
    pub fn history_base_version(&self) -> u64 {
        self.history_base
    }

    /// Number of retained committed edits.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Records (or clears, with `None`) the choice of `user` on `item`,
    /// bumping the version. A no-op write (same choice) does not bump.
    ///
    /// Returns the version after the edit.
    ///
    /// # Errors
    /// Rejects out-of-range option indices.
    ///
    /// # Panics
    /// Panics if `user` or `item` are out of bounds (programming error).
    pub fn set(
        &mut self,
        user: usize,
        item: usize,
        choice: Option<u16>,
    ) -> Result<u64, ResponseError> {
        assert!(user < self.n_users, "user index out of bounds");
        assert!(item < self.n_items, "item index out of bounds");
        if let Some(opt) = choice {
            if opt >= self.options_per_item[item] {
                return Err(ResponseError::OptionOutOfRange {
                    user,
                    item,
                    option: opt,
                    num_options: self.options_per_item[item],
                });
            }
        }
        let cell = &mut self.choices[user * self.n_items + item];
        if *cell != choice {
            self.history.push(ResponseEdit {
                user,
                item,
                from: *cell,
                to: choice,
            });
            *cell = choice;
            self.version += 1;
        }
        Ok(self.version)
    }

    /// Commits a batch of `(user, item, choice)` writes; returns the
    /// version after the batch. The batch is applied in order and is *not*
    /// atomic on error — edits before the failing one stay committed (the
    /// failing edit itself commits nothing).
    pub fn submit(
        &mut self,
        responses: impl IntoIterator<Item = (usize, usize, Option<u16>)>,
    ) -> Result<u64, ResponseError> {
        for (user, item, choice) in responses {
            self.set(user, item, choice)?;
        }
        Ok(self.version)
    }

    /// Materializes the current state as a [`VersionedMatrix`], draining
    /// the pending edits into its delta (see [`Self::drain_delta`]).
    /// Subsequent snapshots report only the edits committed after this
    /// one.
    pub fn snapshot(&mut self) -> VersionedMatrix {
        VersionedMatrix {
            delta: self.drain_delta(),
            matrix: self.to_matrix(),
            version: self.version,
        }
    }

    /// Drains the pending edits as a bare [`ResponseDelta`] without
    /// materializing a matrix — the incremental serving path, which keeps
    /// its own matrix patched in place via
    /// [`ResponseMatrix::apply_delta`] and must not pay the `O(mn)`
    /// choices clone of [`Self::snapshot`] per refresh.
    ///
    /// Returns `None` when no baseline exists (right after construction or
    /// [`Self::forget_history`]) *or* when [`Self::truncate_history`] has
    /// dropped edits past the last snapshot; the caller must then take a
    /// full [`Self::snapshot`] (or [`Self::to_matrix`]) as its new
    /// baseline.
    pub fn drain_delta(&mut self) -> Option<ResponseDelta> {
        let out = if self.has_baseline && self.snapshot_version >= self.history_base {
            let start = (self.snapshot_version - self.history_base) as usize;
            Some(ResponseDelta {
                from_version: self.snapshot_version,
                to_version: self.version,
                edits: self.history[start..].to_vec(),
            })
        } else {
            None
        };
        self.snapshot_version = self.version;
        self.has_baseline = true;
        out
    }

    /// Composes the retained edits between two versions into at most one
    /// edit per touched cell (last-write-wins): the returned delta applied
    /// to the version-`from` matrix yields the version-`to` matrix exactly,
    /// no matter how many intermediate commits the range spans. Cells whose
    /// net change cancels (e.g. `A→B→A`) are dropped, so a reconnecting
    /// client pays `O(cells actually different)`, not `O(edits missed)`.
    ///
    /// # Errors
    /// [`ResponseError::HistoryUnavailable`] when the range is inverted,
    /// reaches past the head, or starts before the retained history (after
    /// [`Self::truncate_history`] / [`Self::forget_history`]) — the caller
    /// must then fall back to a full snapshot.
    pub fn compact_range(&self, from: u64, to: u64) -> Result<ResponseDelta, ResponseError> {
        Ok(ResponseDelta::compacted(
            from,
            to,
            self.history_range(from, to)?,
        ))
    }

    /// The raw retained edits between two versions (a cheap memcpy slice
    /// clone, unlike the `O(range)` composition of
    /// [`Self::compact_range`]): concurrent servers copy this under their
    /// lock and run [`ResponseDelta::compacted`] after releasing it.
    ///
    /// # Errors
    /// [`ResponseError::HistoryUnavailable`] exactly as
    /// [`Self::compact_range`].
    pub fn history_range(&self, from: u64, to: u64) -> Result<&[ResponseEdit], ResponseError> {
        if from > to || to > self.version || from < self.history_base {
            return Err(ResponseError::HistoryUnavailable {
                from,
                to,
                base: self.history_base,
                head: self.version,
            });
        }
        let start = (from - self.history_base) as usize;
        let end = (to - self.history_base) as usize;
        Ok(&self.history[start..end])
    }

    /// Drops retained edits at versions `≤ before_version`, bounding the
    /// history's memory once no client can still need to catch up from that
    /// far back (clamped to the head). Truncating past the last snapshot is
    /// allowed — the next [`Self::drain_delta`] then reports `None` (a cold
    /// rebuild point) instead of a partial delta. Returns the new
    /// [`Self::history_base_version`].
    pub fn truncate_history(&mut self, before_version: u64) -> u64 {
        let new_base = before_version.min(self.version).max(self.history_base);
        self.history
            .drain(..(new_base - self.history_base) as usize);
        self.history_base = new_base;
        self.history_base
    }

    /// Drops delta history entirely: the next [`Self::snapshot`] reports
    /// `delta: None` (downstream caches must treat it as a cold rebuild
    /// point), and [`Self::compact_range`] can no longer reach behind the
    /// current version.
    pub fn forget_history(&mut self) {
        self.history.clear();
        self.history_base = self.version;
        self.snapshot_version = self.version;
        self.has_baseline = false;
    }

    /// Finalizes the current state as a plain matrix without touching the
    /// snapshot bookkeeping (the one-shot builder path).
    pub fn to_matrix(&self) -> ResponseMatrix {
        ResponseMatrix::from_parts(
            self.n_items,
            self.options_per_item.clone(),
            self.choices.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_count_state_changes_only() {
        let mut log = ResponseLog::homogeneous(2, 2, 3).unwrap();
        assert_eq!(log.version(), 0);
        log.set(0, 0, Some(1)).unwrap();
        log.set(0, 0, Some(1)).unwrap(); // no-op
        log.set(0, 0, Some(2)).unwrap();
        log.set(1, 1, None).unwrap(); // no-op (already None)
        assert_eq!(log.version(), 2);
        assert_eq!(log.pending_edits(), 2);
    }

    #[test]
    fn snapshots_chain_deltas() {
        let mut log = ResponseLog::homogeneous(2, 2, 3).unwrap();
        log.set(0, 0, Some(1)).unwrap();
        let v1 = log.snapshot();
        assert_eq!(v1.version, 1);
        assert!(v1.delta.is_none(), "first snapshot has no baseline");

        log.set(0, 0, Some(2)).unwrap();
        log.set(1, 0, Some(0)).unwrap();
        let v2 = log.snapshot();
        let delta = v2.delta.unwrap();
        assert_eq!((delta.from_version, delta.to_version), (1, 3));
        assert_eq!(
            delta.edits,
            vec![
                ResponseEdit {
                    user: 0,
                    item: 0,
                    from: Some(1),
                    to: Some(2)
                },
                ResponseEdit {
                    user: 1,
                    item: 0,
                    from: None,
                    to: Some(0)
                },
            ]
        );
        assert_eq!(v2.matrix.choice(0, 0), Some(2));

        // Nothing changed: empty delta, same version.
        let v3 = log.snapshot();
        assert_eq!(v3.version, 3);
        assert!(v3.delta.unwrap().is_empty());
    }

    #[test]
    fn from_matrix_seeds_state() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), None], &[Some(1), Some(0)]])
            .unwrap();
        let mut log = ResponseLog::from_matrix(&m);
        assert_eq!(log.choice(1, 0), Some(1));
        assert_eq!(log.snapshot().matrix, m);
    }

    #[test]
    fn forget_history_forces_cold_snapshot() {
        let mut log = ResponseLog::homogeneous(1, 1, 2).unwrap();
        log.snapshot();
        log.set(0, 0, Some(1)).unwrap();
        log.forget_history();
        assert!(log.snapshot().delta.is_none());
        // …and history resumes afterwards.
        log.set(0, 0, Some(0)).unwrap();
        assert_eq!(log.snapshot().delta.unwrap().len(), 1);
    }

    #[test]
    fn rejects_bad_writes_and_shapes() {
        assert!(ResponseLog::new(0, 1, &[2]).is_err());
        assert!(ResponseLog::new(1, 0, &[]).is_err());
        assert!(ResponseLog::new(1, 1, &[0]).is_err());
        assert!(ResponseLog::new(1, 2, &[2]).is_err());
        let mut log = ResponseLog::homogeneous(1, 1, 2).unwrap();
        assert!(log.set(0, 0, Some(2)).is_err());
        assert_eq!(log.version(), 0, "failed write must not bump");
    }

    #[test]
    fn compact_range_composes_last_write_wins() {
        let mut log = ResponseLog::homogeneous(3, 2, 4).unwrap();
        log.set(0, 0, Some(1)).unwrap(); // v1
        log.set(0, 0, Some(2)).unwrap(); // v2: overwrite
        log.set(1, 1, Some(3)).unwrap(); // v3
        log.set(1, 1, None).unwrap(); // v4: retract → net no-op from v0
        log.set(2, 0, Some(0)).unwrap(); // v5

        let full = log.compact_range(0, 5).unwrap();
        assert_eq!((full.from_version, full.to_version), (0, 5));
        // (0,0): None→2 survives; (1,1): None→3→None cancels; (2,0) stays.
        assert_eq!(
            full.edits,
            vec![
                ResponseEdit {
                    user: 0,
                    item: 0,
                    from: None,
                    to: Some(2)
                },
                ResponseEdit {
                    user: 2,
                    item: 0,
                    from: None,
                    to: Some(0)
                },
            ]
        );

        // A mid-range compaction chains onto the version-2 state.
        let mid = log.compact_range(2, 4).unwrap();
        assert!(mid.is_empty(), "3→None cancels: {:?}", mid.edits);
        let tail = log.compact_range(1, 5).unwrap();
        assert_eq!(tail.edits[0].from, Some(1), "chains onto the v1 state");

        // Empty range, and the delta applies onto a materialized snapshot.
        assert!(log.compact_range(5, 5).unwrap().is_empty());
        let mut at_zero = ResponseLog::homogeneous(3, 2, 4).unwrap().to_matrix();
        at_zero.apply_delta(&full).unwrap();
        assert_eq!(at_zero, log.to_matrix());
    }

    #[test]
    fn compact_range_rejects_out_of_history_ranges() {
        let mut log = ResponseLog::homogeneous(2, 2, 2).unwrap();
        log.set(0, 0, Some(1)).unwrap();
        log.set(1, 0, Some(1)).unwrap();
        assert!(matches!(
            log.compact_range(1, 3),
            Err(ResponseError::HistoryUnavailable { head: 2, .. })
        ));
        assert!(log.compact_range(2, 1).is_err());

        // Truncation moves the reachable base; the untouched suffix works.
        log.snapshot();
        log.set(1, 1, Some(0)).unwrap();
        assert_eq!(log.truncate_history(2), 2);
        assert_eq!(log.history_len(), 1);
        assert!(log.compact_range(1, 3).is_err());
        assert_eq!(log.compact_range(2, 3).unwrap().len(), 1);
        // Truncating past the last snapshot is allowed (clamped to head):
        // the next snapshot becomes a cold rebuild point (delta: None)
        // rather than lying with a partial delta…
        assert_eq!(log.truncate_history(99), 3);
        assert_eq!(log.history_len(), 0);
        assert!(log.snapshot().delta.is_none());
        // …and delta history resumes afterwards.
        log.set(0, 0, Some(0)).unwrap();
        assert_eq!(log.snapshot().delta.unwrap().len(), 1);
    }

    #[test]
    fn history_survives_snapshots_for_late_catch_up() {
        let mut log = ResponseLog::homogeneous(2, 2, 3).unwrap();
        log.set(0, 0, Some(1)).unwrap();
        let v1 = log.snapshot(); // a client caches version 1
        log.set(0, 1, Some(2)).unwrap();
        log.snapshot();
        log.set(1, 0, Some(0)).unwrap();
        log.snapshot(); // two more snapshots later…

        // …the version-1 client catches up in one compacted delta.
        let catch_up = log.compact_range(v1.version, log.version()).unwrap();
        let mut client = v1.matrix;
        client.apply_delta(&catch_up).unwrap();
        assert_eq!(client, log.to_matrix());
    }

    #[test]
    fn restore_then_replay_rebuilds_the_exact_log() {
        let mut live = ResponseLog::homogeneous(3, 2, 4).unwrap();
        live.submit([(0, 0, Some(1)), (1, 1, Some(3)), (0, 0, Some(2))])
            .unwrap();
        let snap_at = live.version() - 1; // persist all but the last edit
        let persisted: Vec<Option<u16>> = {
            let mut tmp = ResponseLog::homogeneous(3, 2, 4).unwrap();
            tmp.submit([(0, 0, Some(1)), (1, 1, Some(3))]).unwrap();
            (0..3).flat_map(|u| tmp.user_row(u).to_vec()).collect()
        };

        let mut restored = ResponseLog::restore(3, 2, live.options(), persisted, snap_at).unwrap();
        assert_eq!(restored.version(), snap_at);
        assert_eq!(restored.history_base_version(), snap_at);
        // Replay the WAL tail: the one edit past the snapshot.
        let tail = live
            .history_range(snap_at, live.version())
            .unwrap()
            .to_vec();
        for edit in tail {
            restored.replay(edit).unwrap();
        }
        assert_eq!(restored.version(), live.version());
        assert_eq!(restored.to_matrix(), live.to_matrix());
        // The replayed tail is itself retained history, servable to clients.
        assert_eq!(
            restored
                .compact_range(snap_at, live.version())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn restore_validates_shape_and_choices() {
        assert!(ResponseLog::restore(2, 2, &[2, 2], vec![None; 3], 0).is_err());
        assert!(matches!(
            ResponseLog::restore(2, 2, &[2, 2], vec![Some(5), None, None, None], 1),
            Err(ResponseError::OptionOutOfRange { option: 5, .. })
        ));
        assert!(ResponseLog::restore(0, 2, &[2, 2], vec![], 0).is_err());
    }

    #[test]
    fn replay_rejects_diverged_or_malformed_edits() {
        let mut log = ResponseLog::restore(2, 2, &[2, 2], vec![None; 4], 5).unwrap();
        let ok = ResponseEdit {
            user: 0,
            item: 0,
            from: None,
            to: Some(1),
        };
        assert_eq!(log.replay(ok).unwrap(), 6);
        // Stale `from`: the stream no longer chains.
        assert!(matches!(
            log.replay(ResponseEdit { from: None, ..ok }),
            Err(ResponseError::DeltaMismatch { user: 0, item: 0 })
        ));
        // Out-of-roster and out-of-range are errors, never panics.
        assert!(matches!(
            log.replay(ResponseEdit { user: 9, ..ok }),
            Err(ResponseError::IndexOutOfBounds { user: 9, .. })
        ));
        assert!(matches!(
            log.replay(ResponseEdit {
                item: 1,
                from: None,
                to: Some(7),
                ..ok
            }),
            Err(ResponseError::OptionOutOfRange { option: 7, .. })
        ));
        // A no-op frame can't have been committed by `set`.
        assert!(log
            .replay(ResponseEdit {
                user: 1,
                item: 1,
                from: None,
                to: None,
            })
            .is_err());
        assert_eq!(log.version(), 6, "failed replays must not bump");
    }

    #[test]
    fn submit_batches_and_reports_final_version() {
        let mut log = ResponseLog::homogeneous(2, 2, 2).unwrap();
        let v = log
            .submit([(0, 0, Some(0)), (0, 1, Some(1)), (1, 0, Some(1))])
            .unwrap();
        assert_eq!(v, 3);
        assert_eq!(log.choice(0, 1), Some(1));
    }
}
