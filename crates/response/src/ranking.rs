//! Rankings and the [`AbilityRanker`] trait shared by every method.
//!
//! Ability discovery (Definition 1 of the paper) asks for a *ranking* of
//! users, not labels. Every method in this workspace — HITSnDIFFS, ABH, the
//! truth-discovery baselines, and the cheating estimators — implements
//! [`AbilityRanker`], so experiments can treat them uniformly.

use crate::ResponseMatrix;

/// Errors produced by ranking methods.
#[derive(Debug, Clone, PartialEq)]
pub enum RankError {
    /// The underlying eigensolver failed (no convergence / degenerate input).
    Numerical(String),
    /// The response matrix violates a precondition of the method.
    InvalidInput(String),
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            RankError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for RankError {}

/// A ranking of users by (estimated) ability.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Per-user score; higher means more able. Length = number of users.
    pub scores: Vec<f64>,
    /// Iterations used by the producing method (`0` for closed-form ones).
    pub iterations: usize,
    /// Whether the producing method's convergence criterion fired.
    pub converged: bool,
}

impl Ranking {
    /// Creates a ranking from raw scores (iterations 0, converged).
    pub fn from_scores(scores: Vec<f64>) -> Self {
        Ranking {
            scores,
            iterations: 0,
            converged: true,
        }
    }

    /// Number of ranked users.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// `true` when the ranking covers no users.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// User indices sorted from best (highest score) to worst. Ties break by
    /// user index, so results are deterministic.
    pub fn order_best_to_worst(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("NaN score")
                .then(a.cmp(&b))
        });
        order
    }

    /// Position of each user in the best-to-worst order (0 = best).
    pub fn rank_positions(&self) -> Vec<usize> {
        let order = self.order_best_to_worst();
        let mut pos = vec![0usize; order.len()];
        for (rank, &user) in order.iter().enumerate() {
            pos[user] = rank;
        }
        pos
    }

    /// Reverses the ranking in place (used by symmetry breaking).
    pub fn reverse(&mut self) {
        for s in &mut self.scores {
            *s = -*s;
        }
    }
}

/// A method that ranks users by ability from their responses alone
/// (possibly plus side information captured at construction time, as with
/// the "cheating" baselines).
pub trait AbilityRanker {
    /// Short display name used in experiment tables (e.g. `"HnD"`).
    fn name(&self) -> &'static str;

    /// Ranks the users of `responses`.
    fn rank(&self, responses: &ResponseMatrix) -> Result<Ranking, RankError>;
}

impl<T: AbilityRanker + ?Sized> AbilityRanker for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn rank(&self, responses: &ResponseMatrix) -> Result<Ranking, RankError> {
        (**self).rank(responses)
    }
}

impl<T: AbilityRanker + ?Sized> AbilityRanker for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn rank(&self, responses: &ResponseMatrix) -> Result<Ranking, RankError> {
        (**self).rank(responses)
    }
}

/// Ranks a batch of response matrices with one ranker, in parallel across
/// matrices. This is the throughput entry point for experiment sweeps and
/// batched serving: per-matrix results are bitwise identical to calling
/// [`AbilityRanker::rank`] serially.
///
/// **Ordering guarantee:** the returned vector has exactly
/// `matrices.len()` entries and entry `i` is the result for `matrices[i]`,
/// regardless of which worker thread ranked it or in what order workers
/// finished.
///
/// **Failure isolation:** each matrix gets its own `Result` — a
/// [`RankError`] on one matrix never discards or aborts the others, so
/// callers can retry/skip individual failures (experiment sweeps record a
/// missing point; the serving layer degrades one session, not the fleet).
///
/// Parallelism lives at the batch level, so each worker runs its kernels
/// serially (`with_threads(1)`) — without this, every operator application
/// inside every worker would spawn its own gather threads, oversubscribing
/// the machine quadratically. A batch of one keeps within-matrix kernel
/// parallelism instead.
pub fn rank_many(
    ranker: &(dyn AbilityRanker + Sync),
    matrices: &[&ResponseMatrix],
) -> Vec<Result<Ranking, RankError>> {
    if matrices.len() <= 1 {
        return matrices.iter().map(|matrix| ranker.rank(matrix)).collect();
    }
    hnd_linalg::parallel::par_map(matrices, |matrix| {
        hnd_linalg::parallel::with_threads(1, || ranker.rank(matrix))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_positions() {
        let r = Ranking::from_scores(vec![0.1, 0.9, 0.5]);
        assert_eq!(r.order_best_to_worst(), vec![1, 2, 0]);
        assert_eq!(r.rank_positions(), vec![2, 0, 1]);
    }

    #[test]
    fn ties_break_by_index() {
        let r = Ranking::from_scores(vec![0.5, 0.5, 0.5]);
        assert_eq!(r.order_best_to_worst(), vec![0, 1, 2]);
    }

    #[test]
    fn reverse_flips_order() {
        let mut r = Ranking::from_scores(vec![0.1, 0.9, 0.5]);
        r.reverse();
        assert_eq!(r.order_best_to_worst(), vec![0, 2, 1]);
    }

    /// Ranks by answer count, but rejects matrices with an odd number of
    /// users — a deterministic per-matrix failure for batch testing.
    struct EvenOnly;

    impl AbilityRanker for EvenOnly {
        fn name(&self) -> &'static str {
            "even-only"
        }

        fn rank(&self, responses: &ResponseMatrix) -> Result<Ranking, RankError> {
            if responses.n_users() % 2 == 1 {
                return Err(RankError::InvalidInput("odd user count".into()));
            }
            Ok(Ranking::from_scores(
                responses.row_counts().iter().map(|&c| c as f64).collect(),
            ))
        }
    }

    fn users(m: usize) -> ResponseMatrix {
        let rows: Vec<Vec<Option<u16>>> = (0..m).map(|_| vec![Some(0)]).collect();
        let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
        ResponseMatrix::from_choices(1, &[1], &refs).unwrap()
    }

    #[test]
    fn rank_many_isolates_failures_and_preserves_order() {
        let matrices = [users(2), users(3), users(4), users(5), users(6)];
        let refs: Vec<&ResponseMatrix> = matrices.iter().collect();
        let results = rank_many(&EvenOnly, &refs);
        assert_eq!(results.len(), refs.len(), "one result per input matrix");
        for (i, (result, matrix)) in results.iter().zip(&matrices).enumerate() {
            // Result i belongs to matrices[i]: identify it by user count.
            match result {
                Ok(ranking) => {
                    assert_eq!(matrix.n_users() % 2, 0, "slot {i}");
                    assert_eq!(ranking.len(), matrix.n_users(), "slot {i}");
                }
                Err(e) => {
                    assert_eq!(matrix.n_users() % 2, 1, "slot {i}");
                    assert!(matches!(e, RankError::InvalidInput(_)));
                }
            }
        }
    }
}
