//! Connectivity analysis of the user–option bipartite graph.
//!
//! All spectral ranking methods in the paper (Section III-B) assume the
//! bipartite response graph is connected: users in different components
//! cannot be compared. This module detects violations with a union–find
//! over `m + Σkᵢ` nodes.

use crate::ResponseMatrix;

/// Result of [`ResponseMatrix::connectivity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// Number of connected components among users *with at least one
    /// answer* and the options they picked.
    pub components: usize,
    /// Users who answered nothing (they belong to no component and will
    /// receive arbitrary rank from spectral methods).
    pub isolated_users: Vec<usize>,
    /// For each user, the component id (`usize::MAX` for isolated users).
    pub user_component: Vec<usize>,
}

impl ConnectivityReport {
    /// `true` when a single component covers every user — the setting under
    /// which the paper's guarantees hold.
    pub fn is_fully_connected(&self) -> bool {
        self.components <= 1 && self.isolated_users.is_empty()
    }
}

struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Computes the [`ConnectivityReport`] for a response matrix.
pub(crate) fn analyze(matrix: &ResponseMatrix) -> ConnectivityReport {
    let m = matrix.n_users();
    let total = matrix.total_options();
    let mut uf = UnionFind::new(m + total);
    for (user, item, opt) in matrix.iter_choices() {
        let col = matrix.one_hot_column(item, opt);
        uf.union(user, m + col);
    }
    let mut component_of_root = std::collections::HashMap::new();
    let mut user_component = vec![usize::MAX; m];
    let mut isolated_users = Vec::new();
    for user in 0..m {
        if matrix.answers_of_user(user) == 0 {
            isolated_users.push(user);
            continue;
        }
        let root = uf.find(user);
        let next_id = component_of_root.len();
        let id = *component_of_root.entry(root).or_insert(next_id);
        user_component[user] = id;
    }
    ConnectivityReport {
        components: component_of_root.len(),
        isolated_users,
        user_component,
    }
}

#[cfg(test)]
mod tests {
    use crate::ResponseMatrix;

    #[test]
    fn fully_connected_single_component() {
        let r =
            ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), Some(0)], &[Some(0), Some(1)]])
                .unwrap();
        let rep = r.connectivity();
        assert!(rep.is_fully_connected());
        assert_eq!(rep.components, 1);
        assert_eq!(rep.user_component, vec![0, 0]);
    }

    #[test]
    fn two_components_detected() {
        // Users 0 and 1 share nothing: user 0 answers item 0 option 0,
        // user 1 answers item 1 option 1 — disjoint option sets.
        let r = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), None], &[None, Some(1)]])
            .unwrap();
        let rep = r.connectivity();
        assert_eq!(rep.components, 2);
        assert!(!rep.is_fully_connected());
        assert_ne!(rep.user_component[0], rep.user_component[1]);
    }

    #[test]
    fn isolated_user_reported() {
        let r = ResponseMatrix::from_choices(1, &[2], &[&[Some(0)], &[None]]).unwrap();
        let rep = r.connectivity();
        assert_eq!(rep.isolated_users, vec![1]);
        assert_eq!(rep.components, 1);
        assert!(!rep.is_fully_connected());
        assert_eq!(rep.user_component[1], usize::MAX);
    }

    #[test]
    fn shared_option_merges_components() {
        // Three users chained through common options.
        let r = ResponseMatrix::from_choices(
            2,
            &[3, 3],
            &[&[Some(0), None], &[Some(0), Some(1)], &[None, Some(1)]],
        )
        .unwrap();
        let rep = r.connectivity();
        assert_eq!(rep.components, 1);
        assert!(rep.is_fully_connected());
    }
}
