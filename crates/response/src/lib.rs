#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-coupled numerics mirror the published algorithms

//! # hnd-response
//!
//! The response-matrix domain model of the ability-discovery problem
//! (Section II-A of the paper).
//!
//! `m` users each choose at most one of `kᵢ` options for each of `n`
//! heterogeneous items. The canonical representation is [`ResponseMatrix`];
//! its one-hot *binary response matrix* `C` (an `m × Σkᵢ` 0/1 matrix with at
//! most `n` ones per row) is exposed as a CSR matrix via
//! [`ResponseMatrix::to_binary_csr`], and the row/column counts needed for
//! the `Crow`/`Ccol` normalizations of AvgHITS are precomputed.
//!
//! For serving workloads where responses arrive as a *stream of edits*,
//! [`ResponseLog`] is the versioned source of truth: it commits edits under
//! a monotone version counter and snapshots [`VersionedMatrix`] values
//! whose [`ResponseDelta`]s drive [`ResponseOps::apply_delta`] — the
//! in-place `O(nnz(delta))` patch of the kernel-engine pattern and its
//! degree scalings that the incremental ranking engine (`hnd-service`)
//! builds on.

mod builder;
mod connectivity;
pub mod log;
mod matrix;
pub mod ops;
pub mod orientation;
mod ranking;

pub use builder::ResponseMatrixBuilder;
pub use connectivity::ConnectivityReport;
pub use log::{ResponseDelta, ResponseEdit, ResponseLog, VersionedMatrix};
pub use matrix::ResponseMatrix;
pub use ops::{delta_pattern_edits, KernelWorkspace, ResponseOps};
pub use orientation::{group_choice_entropy, orient_by_decile_entropy};
pub use ranking::{rank_many, AbilityRanker, RankError, Ranking};

/// Errors raised while constructing or validating response matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseError {
    /// A user row does not have exactly `n_items` entries.
    WrongRowLength {
        /// Index of the offending user.
        user: usize,
        /// Expected number of entries (`n_items`).
        expected: usize,
        /// Number of entries provided.
        got: usize,
    },
    /// A chosen option index is `≥ kᵢ` for its item.
    OptionOutOfRange {
        /// User making the choice.
        user: usize,
        /// Item being answered.
        item: usize,
        /// The out-of-range option index.
        option: u16,
        /// Number of options the item actually has.
        num_options: u16,
    },
    /// The matrix has no items.
    NoItems,
    /// The matrix has no users.
    NoUsers,
    /// An item was declared with zero options.
    EmptyItem {
        /// The offending item index.
        item: usize,
    },
    /// `options_per_item` length does not match `n_items`.
    OptionsLengthMismatch {
        /// Expected length (`n_items`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A user/item index lies outside the roster (serving-layer input
    /// validation; the in-process builder/log APIs treat this as a
    /// programming error and panic instead).
    IndexOutOfBounds {
        /// The offending user index.
        user: usize,
        /// The offending item index.
        item: usize,
        /// Number of users in the roster.
        n_users: usize,
        /// Number of items in the roster.
        n_items: usize,
    },
    /// A delta edit does not chain onto the matrix's current state (its
    /// `from` disagrees with the stored choice, or the cell is out of
    /// bounds).
    DeltaMismatch {
        /// User of the offending edit.
        user: usize,
        /// Item of the offending edit.
        item: usize,
    },
    /// A [`ResponseLog::compact_range`] request reaches outside the
    /// retained history (inverted range, past the head, or behind the
    /// truncation point) — the client must catch up from a full snapshot.
    HistoryUnavailable {
        /// Requested range start (exclusive).
        from: u64,
        /// Requested range end (inclusive).
        to: u64,
        /// Oldest version the log can still compact from.
        base: u64,
        /// The log's head version.
        head: u64,
    },
}

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseError::WrongRowLength { user, expected, got } => write!(
                f,
                "user {user}: row has {got} entries, expected {expected}"
            ),
            ResponseError::OptionOutOfRange {
                user,
                item,
                option,
                num_options,
            } => write!(
                f,
                "user {user}, item {item}: option {option} out of range (item has {num_options} options)"
            ),
            ResponseError::NoItems => write!(f, "response matrix has no items"),
            ResponseError::NoUsers => write!(f, "response matrix has no users"),
            ResponseError::EmptyItem { item } => {
                write!(f, "item {item} declared with zero options")
            }
            ResponseError::OptionsLengthMismatch { expected, got } => write!(
                f,
                "options_per_item has length {got}, expected {expected}"
            ),
            ResponseError::IndexOutOfBounds {
                user,
                item,
                n_users,
                n_items,
            } => write!(
                f,
                "cell (user {user}, item {item}) outside the {n_users}x{n_items} roster"
            ),
            ResponseError::DeltaMismatch { user, item } => write!(
                f,
                "delta edit at (user {user}, item {item}) does not chain onto the current state"
            ),
            ResponseError::HistoryUnavailable {
                from,
                to,
                base,
                head,
            } => write!(
                f,
                "cannot compact versions {from}..{to}: retained history covers {base}..{head}"
            ),
        }
    }
}

impl std::error::Error for ResponseError {}
