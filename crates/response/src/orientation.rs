//! Decile-entropy symmetry breaking (Section III-D of the paper).
//!
//! Reversing a P-matrix ordering yields another P-matrix ordering, so every
//! C1P-style method must decide between a ranking and its reverse. The
//! paper's heuristic: able users converge on the correct option (low entropy
//! of chosen options), weak users answer closer to uniformly (high entropy).
//! Compare the average per-item choice entropy of the top and bottom user
//! *deciles* and put the lower-entropy decile on top.

use crate::{Ranking, ResponseMatrix};

/// Average (over items) Shannon entropy of the option choices made by the
/// given users. Items none of the users answered are skipped; natural log.
pub fn group_choice_entropy(matrix: &ResponseMatrix, users: &[usize]) -> f64 {
    let mut total = 0.0;
    let mut counted_items = 0usize;
    let mut counts: Vec<usize> = Vec::new();
    for item in 0..matrix.n_items() {
        let k = matrix.options_of(item) as usize;
        counts.clear();
        counts.resize(k, 0);
        let mut answered = 0usize;
        for &u in users {
            if let Some(opt) = matrix.choice(u, item) {
                counts[opt as usize] += 1;
                answered += 1;
            }
        }
        if answered == 0 {
            continue;
        }
        let mut h = 0.0;
        for &c in &counts {
            if c > 0 {
                let p = c as f64 / answered as f64;
                h -= p * p.ln();
            }
        }
        total += h;
        counted_items += 1;
    }
    if counted_items == 0 {
        0.0
    } else {
        total / counted_items as f64
    }
}

/// Applies the decile-entropy rule to `ranking`, reversing it in place when
/// the current top decile has *higher* entropy than the bottom decile.
/// Returns `true` if the ranking was reversed.
pub fn orient_by_decile_entropy(matrix: &ResponseMatrix, ranking: &mut Ranking) -> bool {
    let m = matrix.n_users();
    if m < 2 {
        return false;
    }
    let decile = (m / 10).max(1);
    let order = ranking.order_best_to_worst();
    let top = &order[..decile];
    let bottom = &order[m - decile..];
    let top_entropy = group_choice_entropy(matrix, top);
    let bottom_entropy = group_choice_entropy(matrix, bottom);
    if top_entropy > bottom_entropy {
        ranking.reverse();
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseMatrixBuilder;

    /// 20 users × 5 items, 4 options each. The first 10 users all answer
    /// option 0 everywhere (consensus, zero entropy); the last 10 spread
    /// over all options (high entropy).
    fn consensus_vs_noise() -> ResponseMatrix {
        let mut b = ResponseMatrixBuilder::homogeneous(20, 5, 4).unwrap();
        for u in 0..10 {
            for i in 0..5 {
                b.set(u, i, Some(0)).unwrap();
            }
        }
        for u in 10..20 {
            for i in 0..5 {
                b.set(u, i, Some(((u + i) % 4) as u16)).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn entropy_zero_for_consensus() {
        let m = consensus_vs_noise();
        let users: Vec<usize> = (0..10).collect();
        assert!(group_choice_entropy(&m, &users) < 1e-12);
    }

    #[test]
    fn entropy_positive_for_noise() {
        let m = consensus_vs_noise();
        let users: Vec<usize> = (10..20).collect();
        assert!(group_choice_entropy(&m, &users) > 0.5);
    }

    #[test]
    fn correct_orientation_is_kept() {
        let m = consensus_vs_noise();
        // Scores already rank consensus users on top.
        let mut r = Ranking::from_scores((0..20).map(|u| -(u as f64)).collect());
        let reversed = orient_by_decile_entropy(&m, &mut r);
        assert!(!reversed);
        assert_eq!(r.order_best_to_worst()[0], 0);
    }

    #[test]
    fn wrong_orientation_is_flipped() {
        let m = consensus_vs_noise();
        // Scores rank the noisy users on top — must be reversed.
        let mut r = Ranking::from_scores((0..20).map(|u| u as f64).collect());
        let reversed = orient_by_decile_entropy(&m, &mut r);
        assert!(reversed);
        let order = r.order_best_to_worst();
        assert!(order[0] < 10, "a consensus user must rank first");
    }

    #[test]
    fn single_user_is_noop() {
        let m = crate::ResponseMatrix::from_choices(1, &[2], &[&[Some(0)]]).unwrap();
        let mut r = Ranking::from_scores(vec![1.0]);
        assert!(!orient_by_decile_entropy(&m, &mut r));
    }

    #[test]
    fn unanswered_items_are_skipped() {
        let m =
            crate::ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), None], &[Some(0), None]])
                .unwrap();
        assert_eq!(group_choice_entropy(&m, &[0, 1]), 0.0);
    }
}
