//! Matrix-free kernels on the binary response matrix `C`.
//!
//! Every spectral method of the paper is a loop over four products:
//! `w = Cᵀs`, `s = Cw`, and their row/column-normalized versions
//! `w = (Ccol)ᵀs`, `s = Crow·w` (Section III-B). [`ResponseOps`] bundles the
//! CSR form of `C` with the row/column counts so each product costs
//! `O(nnz) = O(mn)` and nothing larger than `C` is ever materialized.

use crate::ResponseMatrix;
use hnd_linalg::CsrMatrix;

/// Precomputed operator context for a response matrix.
#[derive(Debug, Clone)]
pub struct ResponseOps {
    /// The one-hot binary response matrix `C` (`m × Σkᵢ`).
    c: CsrMatrix,
    /// `Dr` diagonal: answers per user (row sums of `C`).
    row_counts: Vec<f64>,
    /// `Dc` diagonal: picks per option (column sums of `C`).
    col_counts: Vec<f64>,
}

impl ResponseOps {
    /// Builds the operator context.
    pub fn new(matrix: &ResponseMatrix) -> Self {
        let c = matrix.to_binary_csr();
        let row_counts = c.row_sums();
        let col_counts = c.col_sums();
        ResponseOps {
            c,
            row_counts,
            col_counts,
        }
    }

    /// Number of users `m`.
    pub fn n_users(&self) -> usize {
        self.c.rows()
    }

    /// Number of one-hot option columns.
    pub fn n_option_columns(&self) -> usize {
        self.c.cols()
    }

    /// The binary response matrix.
    pub fn binary(&self) -> &CsrMatrix {
        &self.c
    }

    /// Answers per user (`Dr` diagonal).
    pub fn row_counts(&self) -> &[f64] {
        &self.row_counts
    }

    /// Picks per option (`Dc` diagonal).
    pub fn col_counts(&self) -> &[f64] {
        &self.col_counts
    }

    /// `w = Cᵀ s` (unnormalized).
    pub fn ct_apply(&self, s: &[f64], w: &mut [f64]) {
        self.c.matvec_t(s, w);
    }

    /// `s = C w` (unnormalized).
    pub fn c_apply(&self, w: &[f64], s: &mut [f64]) {
        self.c.matvec(w, s);
    }

    /// `w = (Ccol)ᵀ s`: option weight = *average* score of its pickers.
    /// Options nobody picked get weight 0 (the paper drops such columns
    /// WLOG; zeroing them is equivalent).
    pub fn ccol_t_apply(&self, s: &[f64], w: &mut [f64]) {
        self.c.matvec_t(s, w);
        for (wi, &cnt) in w.iter_mut().zip(&self.col_counts) {
            if cnt > 0.0 {
                *wi /= cnt;
            } else {
                *wi = 0.0;
            }
        }
    }

    /// `s = Crow w`: user score = *average* weight of their chosen options.
    /// Users who answered nothing get score 0 and are reported by
    /// [`ResponseMatrix::connectivity`](crate::ResponseMatrix::connectivity).
    pub fn crow_apply(&self, w: &[f64], s: &mut [f64]) {
        self.c.matvec(w, s);
        for (si, &cnt) in s.iter_mut().zip(&self.row_counts) {
            if cnt > 0.0 {
                *si /= cnt;
            } else {
                *si = 0.0;
            }
        }
    }

    /// One AvgHITS step `s ← U s` with `U = Crow (Ccol)ᵀ`, using `w` as the
    /// option-sized scratch buffer.
    pub fn u_apply(&self, s_in: &[f64], w_scratch: &mut [f64], s_out: &mut [f64]) {
        self.ccol_t_apply(s_in, w_scratch);
        self.crow_apply(w_scratch, s_out);
    }

    /// One transposed AvgHITS step `s ← Uᵀ s` (needed for the dominant
    /// *left* eigenvector in Hotelling deflation):
    /// `Uᵀ = Ccol (Crow)ᵀ`, i.e. scale by rows first, then average columns.
    pub fn ut_apply(&self, s_in: &[f64], w_scratch: &mut [f64], s_out: &mut [f64]) {
        // (Crow)ᵀ s: divide s by row counts, then Cᵀ.
        let scaled: Vec<f64> = s_in
            .iter()
            .zip(&self.row_counts)
            .map(|(v, &c)| if c > 0.0 { v / c } else { 0.0 })
            .collect();
        self.c.matvec_t(&scaled, w_scratch);
        // Ccol w: divide w by column counts, then C.
        for (wi, &cnt) in w_scratch.iter_mut().zip(&self.col_counts) {
            if cnt > 0.0 {
                *wi /= cnt;
            } else {
                *wi = 0.0;
            }
        }
        self.c.matvec(w_scratch, s_out);
    }

    /// Row sums of `CCᵀ` — the `D` diagonal of the ABH Laplacian
    /// `L = D − CCᵀ`. `d_j = Σ_{options c picked by j} colcount(c)`.
    pub fn cct_row_sums(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n_users()];
        for j in 0..self.n_users() {
            let mut acc = 0.0;
            for (col, v) in self.c.row_iter(j) {
                acc += v * self.col_counts[col];
            }
            d[j] = acc;
        }
        d
    }

    /// `y = L x` with `L = D − CCᵀ` (ABH Laplacian), using `w` as scratch.
    pub fn laplacian_apply(&self, d: &[f64], x: &[f64], w_scratch: &mut [f64], y: &mut [f64]) {
        self.ct_apply(x, w_scratch);
        self.c_apply(w_scratch, y);
        for i in 0..y.len() {
            y[i] = d[i] * x[i] - y[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseMatrix;
    use hnd_linalg::DenseMatrix;

    fn figure1() -> ResponseMatrix {
        ResponseMatrix::from_choices(
            3,
            &[3, 3, 3],
            &[
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(2)],
                &[Some(0), Some(1), Some(2)],
                &[Some(1), Some(2), Some(2)],
            ],
        )
        .unwrap()
    }

    /// Dense U = Crow (Ccol)^T for cross-checking.
    fn dense_u(ops: &ResponseOps) -> DenseMatrix {
        let m = ops.n_users();
        let mut u = DenseMatrix::zeros(m, m);
        let mut e = vec![0.0; m];
        let mut w = vec![0.0; ops.n_option_columns()];
        let mut col = vec![0.0; m];
        for j in 0..m {
            e[j] = 1.0;
            ops.u_apply(&e, &mut w, &mut col);
            e[j] = 0.0;
            for i in 0..m {
                u.set(i, j, col[i]);
            }
        }
        u
    }

    #[test]
    fn u_is_row_stochastic_lemma3() {
        // Lemma 3 of the paper: every row of U sums to 1.
        let ops = ResponseOps::new(&figure1());
        let u = dense_u(&ops);
        for i in 0..4 {
            let sum: f64 = (0..4).map(|j| u.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn u_times_ones_is_ones() {
        let ops = ResponseOps::new(&figure1());
        let e = vec![1.0; 4];
        let mut w = vec![0.0; 9];
        let mut s = vec![0.0; 4];
        ops.u_apply(&e, &mut w, &mut s);
        for v in s {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ut_apply_matches_dense_transpose() {
        let ops = ResponseOps::new(&figure1());
        let u = dense_u(&ops);
        let ut = u.transpose();
        let x = [0.3, -0.1, 0.7, 0.2];
        let mut w = vec![0.0; 9];
        let mut got = vec![0.0; 4];
        ops.ut_apply(&x, &mut w, &mut got);
        let mut expect = vec![0.0; 4];
        ut.matvec(&x, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_matches_definition() {
        let ops = ResponseOps::new(&figure1());
        let d = ops.cct_row_sums();
        // Dense CC^T.
        let c = ops.binary().to_dense();
        let cct = c.matmul(&c.transpose()).unwrap();
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut w = vec![0.0; 9];
        let mut got = vec![0.0; 4];
        ops.laplacian_apply(&d, &x, &mut w, &mut got);
        for i in 0..4 {
            let mut li = d[i] * x[i];
            for j in 0..4 {
                li -= cct.get(i, j) * x[j];
            }
            assert!((got[i] - li).abs() < 1e-12);
        }
        // L annihilates the ones vector.
        let ones = [1.0; 4];
        ops.laplacian_apply(&d, &ones, &mut w, &mut got);
        for v in got {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_and_columns_are_safe() {
        let m = ResponseMatrix::from_choices(
            2,
            &[2, 2],
            &[
                &[Some(0), Some(0)],
                &[None, None],
            ],
        )
        .unwrap();
        let ops = ResponseOps::new(&m);
        let s = [1.0, 1.0];
        let mut w = vec![0.0; 4];
        let mut out = vec![0.0; 2];
        ops.u_apply(&s, &mut w, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0, "user with no answers scores 0");
    }
}
