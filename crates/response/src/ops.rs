//! Matrix-free kernels on the binary response matrix `C`.
//!
//! Every spectral method of the paper is a loop over four products:
//! `w = Cᵀs`, `s = Cw`, and their row/column-normalized versions
//! `w = (Ccol)ᵀs`, `s = Crow·w` (Section III-B). [`ResponseOps`] bundles the
//! structure-only pattern form of `C` ([`BinaryCsr`]) with the row/column
//! counts so each product costs `O(nnz) = O(mn)` and nothing larger than
//! `C` is ever materialized.
//!
//! ## Kernel engine
//!
//! All products are built on the two gather primitives of the
//! density-adaptive [`HybridPattern`] (row gather, column gather over the
//! mirror — each lane either a u32-index CSR span or a 64-bit bitmap with
//! SIMD word kernels, chosen per lane by a
//! [`DensityPlan`](hnd_linalg::DensityPlan)), which parallelize over the
//! output and fuse the diagonal normalizations into the same memory pass:
//!
//! * the `Dr⁻¹`/`Dc⁻¹` divisions of `Crow`/`Ccol` are precomputed once as
//!   reciprocal vectors ([`ResponseOps::inv_row_counts`],
//!   [`ResponseOps::inv_col_counts`], zero for empty rows/columns — which
//!   reproduces the paper's drop-unpicked-options convention for free), and
//! * composite operators (`Uᵀ`, the symmetrized `Ũ`, the ABH Laplacian)
//!   fold their input-side scalings into the gather closure, eliminating
//!   the `scaled` temporaries the seed implementation allocated per call.
//!
//! Every kernel writes into caller-owned buffers; none allocates. The
//! [`KernelWorkspace`] bundle gives operator implementations a reusable
//! set of scratch vectors so whole power/Lanczos iterations run
//! allocation-free.

use crate::{ResponseDelta, ResponseMatrix};
use hnd_linalg::{DeltaError, DensityPlan, FormatCounts, HybridPattern, PatternDelta};

/// Lowers a committed [`ResponseDelta`] to the pattern edits it implies on
/// the one-hot matrix `C`: repeated edits of the same cell are composed
/// first (None→A then A→B nets to None→B), so the returned
/// [`PatternDelta`] never removes an entry the delta itself introduced.
/// `matrix` supplies the (static) item→column layout; any snapshot of the
/// same roster works.
///
/// This is the single lowering point shared by the in-place kernel patch
/// ([`ResponseOps::apply_delta`]) and the sharded execution layer
/// (`hnd-shard` routes these `(user, column)` edits to the shard owning
/// each user range) — one definition, so the two paths cannot drift.
pub fn delta_pattern_edits(matrix: &ResponseMatrix, delta: &ResponseDelta) -> PatternDelta {
    let net = crate::log::net_cell_effects(&delta.edits);
    let mut pattern_delta = PatternDelta::default();
    for ((user, item), (from, to)) in net {
        if from == to {
            continue;
        }
        if let Some(opt) = from {
            pattern_delta
                .removes
                .push((user as u32, matrix.one_hot_column(item, opt) as u32));
        }
        if let Some(opt) = to {
            pattern_delta
                .adds
                .push((user as u32, matrix.one_hot_column(item, opt) as u32));
        }
    }
    pattern_delta
}

/// Precomputed operator context for a response matrix.
#[derive(Debug, Clone)]
pub struct ResponseOps {
    /// The one-hot binary response matrix `C` (`m × Σkᵢ`) as a
    /// density-adaptive hybrid pattern.
    c: HybridPattern,
    /// `Dr` diagonal: answers per user (row sums of `C`).
    row_counts: Vec<f64>,
    /// `Dc` diagonal: picks per option (column sums of `C`).
    col_counts: Vec<f64>,
    /// `Dr⁻¹` diagonal; `0` for users who answered nothing.
    inv_row: Vec<f64>,
    /// `Dc⁻¹` diagonal; `0` for options nobody picked.
    inv_col: Vec<f64>,
}

/// Reusable scratch buffers sized for one [`ResponseOps`]: one
/// option-length vector and two user-length vectors. Operators hold one of
/// these (behind a `RefCell`) so repeated applications inside an iteration
/// loop allocate nothing.
#[derive(Debug, Clone)]
pub struct KernelWorkspace {
    /// Option-sized scratch (`Σkᵢ`).
    pub w: Vec<f64>,
    /// User-sized scratch.
    pub s: Vec<f64>,
    /// Second user-sized scratch.
    pub s2: Vec<f64>,
}

impl KernelWorkspace {
    /// Allocates a workspace matching `ops`' dimensions.
    pub fn for_ops(ops: &ResponseOps) -> Self {
        KernelWorkspace {
            w: vec![0.0; ops.n_option_columns()],
            s: vec![0.0; ops.n_users()],
            s2: vec![0.0; ops.n_users()],
        }
    }
}

impl ResponseOps {
    /// Builds the operator context (tightly packed, no slack).
    pub fn new(matrix: &ResponseMatrix) -> Self {
        Self::with_slack(matrix, 0, 0)
    }

    /// Builds the operator context with per-row/per-column slack capacity
    /// in the underlying pattern, so subsequent [`Self::apply_delta`] calls
    /// can patch it in place instead of rebuilding. `row_slack` bounds how
    /// many *extra* answers a user can record before a rebuild; `col_slack`
    /// bounds extra picks per option. (Slack applies to sparse lanes only:
    /// bitmap lanes absorb any in-roster edit as a bit flip.) Lane formats
    /// follow the default (ISA-adaptive) [`DensityPlan`].
    pub fn with_slack(matrix: &ResponseMatrix, row_slack: usize, col_slack: usize) -> Self {
        Self::with_plan(matrix, row_slack, col_slack, DensityPlan::default())
    }

    /// Builds the operator context with explicit lane-format policy: rows
    /// (answer sets) and mirror columns (picker sets) whose density crosses
    /// `plan`'s thresholds are stored as bitmap lanes served by the SIMD
    /// word kernels; the rest keep the u32-index CSR layout. Formats are
    /// fixed until the next rebuild — [`Self::apply_delta`] never migrates
    /// a lane.
    pub fn with_plan(
        matrix: &ResponseMatrix,
        row_slack: usize,
        col_slack: usize,
        plan: DensityPlan,
    ) -> Self {
        let c = HybridPattern::with_plan(
            matrix.n_users(),
            matrix.total_options(),
            matrix
                .iter_choices()
                .map(|(u, i, o)| (u, matrix.one_hot_column(i, o))),
            row_slack,
            col_slack,
            plan,
        );
        let row_counts = c.row_counts();
        let col_counts = c.col_counts();
        let inv_row = row_counts
            .iter()
            .map(|&n| if n > 0.0 { 1.0 / n } else { 0.0 })
            .collect();
        let inv_col = col_counts
            .iter()
            .map(|&n| if n > 0.0 { 1.0 / n } else { 0.0 })
            .collect();
        ResponseOps {
            c,
            row_counts,
            col_counts,
            inv_row,
            inv_col,
        }
    }

    /// Patches the operator context for a committed [`ResponseDelta`] in
    /// `O(w·nnz(delta))`: the pattern's CSR arrays and CSC mirror are
    /// edited in place, and the `Dr`/`Dc` degree diagonals plus their fused
    /// reciprocal scalings are updated only at the touched users/options —
    /// no rebuild of anything `O(nnz)`.
    ///
    /// `matrix` supplies the (static) item→column layout; any snapshot of
    /// the same roster works. On [`DeltaError::RowFull`] /
    /// [`DeltaError::ColFull`] the context is unchanged and the caller
    /// should rebuild via [`Self::with_slack`] with more slack.
    pub fn apply_delta(
        &mut self,
        matrix: &ResponseMatrix,
        delta: &ResponseDelta,
    ) -> Result<(), DeltaError> {
        let pattern_delta = delta_pattern_edits(matrix, delta);
        self.c.apply_delta(&pattern_delta)?;
        // Degree scalings: touch only the edited rows/columns.
        for &(r, _) in &pattern_delta.removes {
            self.refresh_row(r as usize);
        }
        for &(r, _) in &pattern_delta.adds {
            self.refresh_row(r as usize);
        }
        for &(_, c) in &pattern_delta.removes {
            self.refresh_col(c as usize);
        }
        for &(_, c) in &pattern_delta.adds {
            self.refresh_col(c as usize);
        }
        Ok(())
    }

    fn refresh_row(&mut self, r: usize) {
        let n = self.c.row_nnz(r) as f64;
        self.row_counts[r] = n;
        self.inv_row[r] = if n > 0.0 { 1.0 / n } else { 0.0 };
    }

    fn refresh_col(&mut self, c: usize) {
        let n = self.c.col_nnz(c) as f64;
        self.col_counts[c] = n;
        self.inv_col[c] = if n > 0.0 { 1.0 / n } else { 0.0 };
    }

    /// Number of users `m`.
    pub fn n_users(&self) -> usize {
        self.c.rows()
    }

    /// Number of one-hot option columns.
    pub fn n_option_columns(&self) -> usize {
        self.c.cols()
    }

    /// The binary response matrix pattern.
    pub fn pattern(&self) -> &HybridPattern {
        &self.c
    }

    /// Per-format lane counts of the pattern (serving observability).
    pub fn format_counts(&self) -> FormatCounts {
        self.c.format_counts()
    }

    /// Answers per user (`Dr` diagonal).
    pub fn row_counts(&self) -> &[f64] {
        &self.row_counts
    }

    /// Picks per option (`Dc` diagonal).
    pub fn col_counts(&self) -> &[f64] {
        &self.col_counts
    }

    /// `Dr⁻¹` diagonal (0 for users with no answers).
    pub fn inv_row_counts(&self) -> &[f64] {
        &self.inv_row
    }

    /// `Dc⁻¹` diagonal (0 for options nobody picked).
    pub fn inv_col_counts(&self) -> &[f64] {
        &self.inv_col
    }

    /// `w = Cᵀ s` (unnormalized).
    pub fn ct_apply(&self, s: &[f64], w: &mut [f64]) {
        self.c.matvec_t(s, w);
    }

    /// `s = C w` (unnormalized).
    pub fn c_apply(&self, w: &[f64], s: &mut [f64]) {
        self.c.matvec(w, s);
    }

    /// `w = (Ccol)ᵀ s`: option weight = *average* score of its pickers.
    /// Options nobody picked get weight 0 (the paper drops such columns
    /// WLOG; zeroing them is equivalent).
    pub fn ccol_t_apply(&self, s: &[f64], w: &mut [f64]) {
        let inv_col = &self.inv_col;
        self.c.cols_gather(w, |c, lane| inv_col[c] * lane.sum(s));
    }

    /// `s = Crow w`: user score = *average* weight of their chosen options.
    /// Users who answered nothing get score 0 and are reported by
    /// [`ResponseMatrix::connectivity`](crate::ResponseMatrix::connectivity).
    pub fn crow_apply(&self, w: &[f64], s: &mut [f64]) {
        let inv_row = &self.inv_row;
        self.c.rows_gather(s, |r, lane| inv_row[r] * lane.sum(w));
    }

    /// One AvgHITS step `s ← U s` with `U = Crow (Ccol)ᵀ`, using `w` as the
    /// option-sized scratch buffer.
    pub fn u_apply(&self, s_in: &[f64], w_scratch: &mut [f64], s_out: &mut [f64]) {
        self.ccol_t_apply(s_in, w_scratch);
        self.crow_apply(w_scratch, s_out);
    }

    /// One transposed AvgHITS step `s ← Uᵀ s` (needed for the dominant
    /// *left* eigenvector in Hotelling deflation):
    /// `Uᵀ = Ccol (Crow)ᵀ = C Dc⁻¹ Cᵀ Dr⁻¹`. The `Dr⁻¹` input scaling is
    /// fused into the column gather, so no scaled copy of `s_in` is made.
    pub fn ut_apply(&self, s_in: &[f64], w_scratch: &mut [f64], s_out: &mut [f64]) {
        let inv_row = &self.inv_row;
        let inv_col = &self.inv_col;
        self.c.cols_gather(w_scratch, |c, lane| {
            inv_col[c] * lane.sum_scaled(s_in, inv_row)
        });
        self.c.matvec(w_scratch, s_out);
    }

    /// One symmetrized AvgHITS step `s ← Ũ s` with
    /// `Ũ = Dr^{-1/2} C Dc⁻¹ Cᵀ Dr^{-1/2}` (see
    /// `hnd_core::operators::SymmetrizedUOp`). The caller supplies the
    /// `Dr^{-1/2}` diagonal; both of its applications are fused into the
    /// gathers, so the kernel makes exactly two passes over `C` and
    /// allocates nothing.
    pub fn symmetrized_u_apply(
        &self,
        s_in: &[f64],
        inv_sqrt_rows: &[f64],
        w_scratch: &mut [f64],
        s_out: &mut [f64],
    ) {
        let inv_col = &self.inv_col;
        self.c.cols_gather(w_scratch, |c, lane| {
            inv_col[c] * lane.sum_scaled(s_in, inv_sqrt_rows)
        });
        self.c
            .rows_gather(s_out, |r, lane| inv_sqrt_rows[r] * lane.sum(w_scratch));
    }

    /// Row sums of `CCᵀ` — the `D` diagonal of the ABH Laplacian
    /// `L = D − CCᵀ`. `d_j = Σ_{options c picked by j} colcount(c)`.
    pub fn cct_row_sums(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n_users()];
        let col_counts = &self.col_counts;
        self.c.rows_gather(&mut d, |_, lane| lane.sum(col_counts));
        d
    }

    /// `y = L x` with `L = D − CCᵀ` (ABH Laplacian), using `w` as scratch.
    /// The `D x − ·` combination is fused into the second gather.
    pub fn laplacian_apply(&self, d: &[f64], x: &[f64], w_scratch: &mut [f64], y: &mut [f64]) {
        self.ct_apply(x, w_scratch);
        self.c
            .rows_gather(y, |r, lane| d[r] * x[r] - lane.sum(w_scratch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResponseMatrix;
    use hnd_linalg::DenseMatrix;

    fn figure1() -> ResponseMatrix {
        ResponseMatrix::from_choices(
            3,
            &[3, 3, 3],
            &[
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(2)],
                &[Some(0), Some(1), Some(2)],
                &[Some(1), Some(2), Some(2)],
            ],
        )
        .unwrap()
    }

    /// Dense U = Crow (Ccol)^T for cross-checking.
    fn dense_u(ops: &ResponseOps) -> DenseMatrix {
        let m = ops.n_users();
        let mut u = DenseMatrix::zeros(m, m);
        let mut e = vec![0.0; m];
        let mut w = vec![0.0; ops.n_option_columns()];
        let mut col = vec![0.0; m];
        for j in 0..m {
            e[j] = 1.0;
            ops.u_apply(&e, &mut w, &mut col);
            e[j] = 0.0;
            for i in 0..m {
                u.set(i, j, col[i]);
            }
        }
        u
    }

    #[test]
    fn u_is_row_stochastic_lemma3() {
        // Lemma 3 of the paper: every row of U sums to 1.
        let ops = ResponseOps::new(&figure1());
        let u = dense_u(&ops);
        for i in 0..4 {
            let sum: f64 = (0..4).map(|j| u.get(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn u_times_ones_is_ones() {
        let ops = ResponseOps::new(&figure1());
        let e = vec![1.0; 4];
        let mut w = vec![0.0; 9];
        let mut s = vec![0.0; 4];
        ops.u_apply(&e, &mut w, &mut s);
        for v in s {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ut_apply_matches_dense_transpose() {
        let ops = ResponseOps::new(&figure1());
        let u = dense_u(&ops);
        let ut = u.transpose();
        let x = [0.3, -0.1, 0.7, 0.2];
        let mut w = vec![0.0; 9];
        let mut got = vec![0.0; 4];
        ops.ut_apply(&x, &mut w, &mut got);
        let mut expect = vec![0.0; 4];
        ut.matvec(&x, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetrized_apply_matches_scaled_composition() {
        // Ũ x must equal Dr^{-1/2} C Dc^{-1} Cᵀ Dr^{-1/2} x computed the
        // long way with explicit temporaries.
        let m = ResponseMatrix::from_choices(
            2,
            &[2, 3],
            &[&[Some(0), Some(2)], &[Some(0), None], &[None, None]],
        )
        .unwrap();
        let ops = ResponseOps::new(&m);
        let inv_sqrt: Vec<f64> = ops
            .row_counts()
            .iter()
            .map(|&c| if c > 0.0 { 1.0 / c.sqrt() } else { 0.0 })
            .collect();
        let x = [0.4, -1.0, 2.0];
        let mut w = vec![0.0; ops.n_option_columns()];
        let mut got = vec![0.0; 3];
        ops.symmetrized_u_apply(&x, &inv_sqrt, &mut w, &mut got);

        let scaled: Vec<f64> = x.iter().zip(&inv_sqrt).map(|(v, s)| v * s).collect();
        let mut w2 = vec![0.0; ops.n_option_columns()];
        ops.ccol_t_apply(&scaled, &mut w2);
        let mut expect = vec![0.0; 3];
        ops.c_apply(&w2, &mut expect);
        for (e, s) in expect.iter_mut().zip(&inv_sqrt) {
            *e *= s;
        }
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-12, "{got:?} vs {expect:?}");
        }
    }

    #[test]
    fn laplacian_matches_definition() {
        let ops = ResponseOps::new(&figure1());
        let d = ops.cct_row_sums();
        // Dense CC^T.
        let c = ops.pattern().to_dense();
        let cct = c.matmul(&c.transpose()).unwrap();
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut w = vec![0.0; 9];
        let mut got = vec![0.0; 4];
        ops.laplacian_apply(&d, &x, &mut w, &mut got);
        for i in 0..4 {
            let mut li = d[i] * x[i];
            for j in 0..4 {
                li -= cct.get(i, j) * x[j];
            }
            assert!((got[i] - li).abs() < 1e-12);
        }
        // L annihilates the ones vector.
        let ones = [1.0; 4];
        ops.laplacian_apply(&d, &ones, &mut w, &mut got);
        for v in got {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn empty_rows_and_columns_are_safe() {
        let m = ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0), Some(0)], &[None, None]])
            .unwrap();
        let ops = ResponseOps::new(&m);
        let s = [1.0, 1.0];
        let mut w = vec![0.0; 4];
        let mut out = vec![0.0; 2];
        ops.u_apply(&s, &mut w, &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0, "user with no answers scores 0");
    }

    #[test]
    fn workspace_matches_dimensions() {
        let ops = ResponseOps::new(&figure1());
        let ws = KernelWorkspace::for_ops(&ops);
        assert_eq!(ws.w.len(), ops.n_option_columns());
        assert_eq!(ws.s2.len(), ops.n_users());
        assert_eq!(ws.s.len(), ops.n_users());
    }
}
