//! The [`ResponseMatrix`] type.

use crate::{ConnectivityReport, ResponseError};
use hnd_linalg::{BinaryCsr, CsrMatrix};

/// Responses of `m` users to `n` heterogeneous multiple-choice items
/// (Definition 1 of the paper).
///
/// Each user chooses *at most one* option per item; `None` means the user
/// skipped the item (the paper's incomplete-answers setting, Figure 4g).
/// Option indices are local to their item: item `i` has options
/// `0..options_per_item[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMatrix {
    n_users: usize,
    n_items: usize,
    options_per_item: Vec<u16>,
    /// Prefix sums of `options_per_item`; `col_offsets[i]` is the global
    /// one-hot column of option 0 of item `i`. Length `n_items + 1`.
    col_offsets: Vec<usize>,
    /// Row-major `n_users × n_items` choices.
    choices: Vec<Option<u16>>,
}

impl ResponseMatrix {
    /// Builds a response matrix from per-user choice rows.
    ///
    /// `rows[j][i]` is the option user `j` picked for item `i` (or `None`).
    ///
    /// # Errors
    /// Rejects empty user/item sets, zero-option items, ragged rows, and
    /// out-of-range option indices.
    pub fn from_choices(
        n_items: usize,
        options_per_item: &[u16],
        rows: &[&[Option<u16>]],
    ) -> Result<Self, ResponseError> {
        if n_items == 0 {
            return Err(ResponseError::NoItems);
        }
        if rows.is_empty() {
            return Err(ResponseError::NoUsers);
        }
        if options_per_item.len() != n_items {
            return Err(ResponseError::OptionsLengthMismatch {
                expected: n_items,
                got: options_per_item.len(),
            });
        }
        if let Some(item) = options_per_item.iter().position(|&k| k == 0) {
            return Err(ResponseError::EmptyItem { item });
        }
        let n_users = rows.len();
        let mut choices = Vec::with_capacity(n_users * n_items);
        for (user, row) in rows.iter().enumerate() {
            if row.len() != n_items {
                return Err(ResponseError::WrongRowLength {
                    user,
                    expected: n_items,
                    got: row.len(),
                });
            }
            for (item, &choice) in row.iter().enumerate() {
                if let Some(opt) = choice {
                    if opt >= options_per_item[item] {
                        return Err(ResponseError::OptionOutOfRange {
                            user,
                            item,
                            option: opt,
                            num_options: options_per_item[item],
                        });
                    }
                }
                choices.push(choice);
            }
        }
        Ok(Self::from_parts(
            n_items,
            options_per_item.to_vec(),
            choices,
        ))
    }

    /// Internal constructor from validated parts (used by the builder).
    pub(crate) fn from_parts(
        n_items: usize,
        options_per_item: Vec<u16>,
        choices: Vec<Option<u16>>,
    ) -> Self {
        let n_users = choices.len() / n_items;
        let mut col_offsets = Vec::with_capacity(n_items + 1);
        col_offsets.push(0usize);
        for &k in &options_per_item {
            col_offsets.push(col_offsets.last().unwrap() + k as usize);
        }
        ResponseMatrix {
            n_users,
            n_items,
            options_per_item,
            col_offsets,
            choices,
        }
    }

    /// Number of users `m`.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items `n`.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of options of item `i` (`kᵢ`).
    #[inline]
    pub fn options_of(&self, item: usize) -> u16 {
        self.options_per_item[item]
    }

    /// Maximum option count `k = maxᵢ kᵢ`.
    pub fn max_options(&self) -> u16 {
        self.options_per_item.iter().copied().max().unwrap_or(0)
    }

    /// Total number of one-hot columns `Σᵢ kᵢ` (the paper's `kn` when all
    /// items share `k` options).
    #[inline]
    pub fn total_options(&self) -> usize {
        *self.col_offsets.last().expect("col_offsets is never empty")
    }

    /// The option user `j` chose for item `i`, if any.
    #[inline]
    pub fn choice(&self, user: usize, item: usize) -> Option<u16> {
        self.choices[user * self.n_items + item]
    }

    /// The full choice row of a user.
    #[inline]
    pub fn user_row(&self, user: usize) -> &[Option<u16>] {
        &self.choices[user * self.n_items..(user + 1) * self.n_items]
    }

    /// Global one-hot column index of `(item, option)`.
    #[inline]
    pub fn one_hot_column(&self, item: usize, option: u16) -> usize {
        debug_assert!(option < self.options_per_item[item]);
        self.col_offsets[item] + option as usize
    }

    /// Inverse of [`Self::one_hot_column`]: maps a global column back to
    /// `(item, option)`.
    pub fn column_to_item_option(&self, column: usize) -> (usize, u16) {
        debug_assert!(column < self.total_options());
        // Binary search the prefix-sum array.
        let item = match self.col_offsets.binary_search(&column) {
            Ok(i) if i < self.n_items => i,
            Ok(i) => i - 1,
            Err(i) => i - 1,
        };
        (item, (column - self.col_offsets[item]) as u16)
    }

    /// Number of items user `j` answered.
    pub fn answers_of_user(&self, user: usize) -> usize {
        self.user_row(user).iter().filter(|c| c.is_some()).count()
    }

    /// Per-user answer counts (diagonal of `Dr`; the `Crow` normalizer).
    pub fn row_counts(&self) -> Vec<usize> {
        (0..self.n_users).map(|u| self.answers_of_user(u)).collect()
    }

    /// Per-option pick counts (diagonal of `Dc`; the `Ccol` normalizer).
    pub fn col_counts(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.total_options()];
        for user in 0..self.n_users {
            for (item, &choice) in self.user_row(user).iter().enumerate() {
                if let Some(opt) = choice {
                    out[self.one_hot_column(item, opt)] += 1;
                }
            }
        }
        out
    }

    /// Iterator over all recorded `(user, item, option)` triples.
    pub fn iter_choices(&self) -> impl Iterator<Item = (usize, usize, u16)> + '_ {
        (0..self.n_users).flat_map(move |user| {
            self.user_row(user)
                .iter()
                .enumerate()
                .filter_map(move |(item, &c)| c.map(|opt| (user, item, opt)))
        })
    }

    /// The one-hot binary response matrix `C` (`m × Σkᵢ`, entries 0/1) in
    /// CSR form — Figure 1b of the paper. Prefer [`Self::to_binary_pattern`]
    /// for compute kernels; this general form remains for code that mixes
    /// `C` with valued matrices (e.g. the C1P checks).
    pub fn to_binary_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(
            self.n_users,
            self.total_options(),
            self.iter_choices()
                .map(|(u, i, o)| (u, self.one_hot_column(i, o), 1.0)),
        )
    }

    /// The binary response matrix as a structure-only pattern (u32 indices,
    /// no values array, CSC mirror precomputed) — the representation the
    /// spectral kernel engine runs on.
    pub fn to_binary_pattern(&self) -> BinaryCsr {
        BinaryCsr::from_pairs(
            self.n_users,
            self.total_options(),
            self.iter_choices()
                .map(|(u, i, o)| (u, self.one_hot_column(i, o))),
        )
    }

    /// Returns a copy with users reordered: user `j` of the result is user
    /// `perm[j]` of `self`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n_users`.
    pub fn permute_users(&self, perm: &[usize]) -> ResponseMatrix {
        assert_eq!(perm.len(), self.n_users, "permute_users: length mismatch");
        let mut seen = vec![false; self.n_users];
        let mut choices = Vec::with_capacity(self.choices.len());
        for &src in perm {
            assert!(src < self.n_users && !seen[src], "not a permutation");
            seen[src] = true;
            choices.extend_from_slice(self.user_row(src));
        }
        Self::from_parts(self.n_items, self.options_per_item.clone(), choices)
    }

    /// Applies a committed [`ResponseDelta`](crate::ResponseDelta) in
    /// place, `O(nnz(delta))`: cell `(user, item)` moves from `edit.from`
    /// to `edit.to` for each edit in order. The serving layer uses this to
    /// keep one matrix current across versions instead of re-materializing
    /// an `O(mn)` snapshot per refresh.
    ///
    /// # Errors
    /// Rejects out-of-range options and edits whose `from` does not match
    /// the current cell (a broken delta chain); the matrix is left exactly
    /// as it was before the call.
    pub fn apply_delta(&mut self, delta: &crate::ResponseDelta) -> Result<(), ResponseError> {
        // Validate first so a failure mutates nothing.
        let mut probe = std::collections::BTreeMap::new();
        for edit in &delta.edits {
            if edit.user >= self.n_users || edit.item >= self.n_items {
                return Err(ResponseError::DeltaMismatch {
                    user: edit.user,
                    item: edit.item,
                });
            }
            if let Some(opt) = edit.to {
                if opt >= self.options_per_item[edit.item] {
                    return Err(ResponseError::OptionOutOfRange {
                        user: edit.user,
                        item: edit.item,
                        option: opt,
                        num_options: self.options_per_item[edit.item],
                    });
                }
            }
            let current = probe
                .get(&(edit.user, edit.item))
                .copied()
                .unwrap_or_else(|| self.choice(edit.user, edit.item));
            if current != edit.from {
                return Err(ResponseError::DeltaMismatch {
                    user: edit.user,
                    item: edit.item,
                });
            }
            probe.insert((edit.user, edit.item), edit.to);
        }
        for edit in &delta.edits {
            self.choices[edit.user * self.n_items + edit.item] = edit.to;
        }
        Ok(())
    }

    /// Connectivity of the user–option bipartite graph (Section III-B
    /// requires a single connected component for a total user ordering).
    pub fn connectivity(&self) -> ConnectivityReport {
        crate::connectivity::analyze(self)
    }

    /// Fraction of `(user, item)` cells answered (1.0 = complete data).
    pub fn density(&self) -> f64 {
        let answered = self.choices.iter().filter(|c| c.is_some()).count();
        answered as f64 / (self.n_users * self.n_items) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 running example: 4 users × 3 items, options A=0,B=1,C=2.
    pub(crate) fn figure1() -> ResponseMatrix {
        ResponseMatrix::from_choices(
            3,
            &[3, 3, 3],
            &[
                &[Some(0), Some(0), Some(0)],
                &[Some(0), Some(0), Some(2)],
                &[Some(0), Some(1), Some(2)],
                &[Some(1), Some(2), Some(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure1_shape() {
        let r = figure1();
        assert_eq!(r.n_users(), 4);
        assert_eq!(r.n_items(), 3);
        assert_eq!(r.max_options(), 3);
        assert_eq!(r.total_options(), 9);
        assert_eq!(r.density(), 1.0);
    }

    #[test]
    fn figure1_binary_matrix_matches_paper() {
        // Figure 1b shows C with rows (one-hot over columns 1A 1B 1C 2A 2B 2C 3A 3B 3C):
        // u1: 100 100 100 ; u2: 100 100 001 ; u3: 100 010 001 ; u4: 010 001 001
        let c = figure1().to_binary_csr();
        let expected = [vec![0, 3, 6], vec![0, 3, 8], vec![0, 4, 8], vec![1, 5, 8]];
        for (u, cols) in expected.iter().enumerate() {
            let got: Vec<usize> = c.row_iter(u).map(|(c, _)| c).collect();
            assert_eq!(&got, cols, "user {u}");
        }
    }

    #[test]
    fn column_mapping_roundtrip() {
        let r =
            ResponseMatrix::from_choices(3, &[2, 4, 3], &[&[Some(0), Some(3), Some(2)]]).unwrap();
        for item in 0..3 {
            for opt in 0..r.options_of(item) {
                let col = r.one_hot_column(item, opt);
                assert_eq!(r.column_to_item_option(col), (item, opt));
            }
        }
        assert_eq!(r.total_options(), 9);
    }

    #[test]
    fn counts() {
        let r = ResponseMatrix::from_choices(
            2,
            &[2, 2],
            &[&[Some(0), None], &[Some(0), Some(1)], &[None, None]],
        )
        .unwrap();
        assert_eq!(r.row_counts(), vec![1, 2, 0]);
        assert_eq!(r.col_counts(), vec![2, 0, 0, 1]);
        assert!((r.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn permute_users_reorders_rows() {
        let r = figure1();
        let p = r.permute_users(&[3, 2, 1, 0]);
        assert_eq!(p.choice(0, 0), Some(1));
        assert_eq!(p.choice(3, 0), Some(0));
        // Double reversal is identity.
        assert_eq!(p.permute_users(&[3, 2, 1, 0]), r);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            ResponseMatrix::from_choices(0, &[], &[&[]]),
            Err(ResponseError::NoItems)
        );
        assert_eq!(
            ResponseMatrix::from_choices(1, &[2], &[]),
            Err(ResponseError::NoUsers)
        );
        assert_eq!(
            ResponseMatrix::from_choices(1, &[0], &[&[None]]),
            Err(ResponseError::EmptyItem { item: 0 })
        );
        assert_eq!(
            ResponseMatrix::from_choices(2, &[2], &[&[None, None]]),
            Err(ResponseError::OptionsLengthMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            ResponseMatrix::from_choices(1, &[2], &[&[Some(5)]]),
            Err(ResponseError::OptionOutOfRange { option: 5, .. })
        ));
        assert!(matches!(
            ResponseMatrix::from_choices(2, &[2, 2], &[&[Some(0)]]),
            Err(ResponseError::WrongRowLength { .. })
        ));
    }

    #[test]
    fn iter_choices_yields_all() {
        let r = figure1();
        let triples: Vec<_> = r.iter_choices().collect();
        assert_eq!(triples.len(), 12);
        assert_eq!(triples[0], (0, 0, 0));
        assert_eq!(triples[11], (3, 2, 2));
    }
}
