//! Property tests for the incremental response pipeline: a [`ResponseOps`]
//! maintained through `apply_delta` over an arbitrary edit stream must be
//! *bitwise* indistinguishable from one rebuilt from scratch off the final
//! [`ResponseLog`] state — pattern, CSC mirror, degree scalings, and every
//! kernel output. The same chains run under every hybrid lane layout
//! (forced CSR, forced bitmap, mixed thresholds): format-stable layouts
//! stay bitwise, format-drifting ones agree to ≤ 1e-12 with the pure-CSR
//! engine.

use hnd_linalg::DensityPlan;
use hnd_response::{ResponseLog, ResponseOps};
use proptest::prelude::*;

/// One write in a generated stream: `(user, item, choice)`.
type Write = (usize, usize, Option<u16>);

/// A generated roster + edit stream: `(m, n, options, batches)`.
type EditStream = (usize, usize, Vec<u16>, Vec<Vec<Write>>);

/// An edit stream: k batches of `(user, item, choice)` writes over a small
/// heterogeneous roster, including revisions (`Some → Some`) and clears
/// (`Some → None`).
fn edit_stream() -> impl Strategy<Value = EditStream> {
    (2usize..=10, 1usize..=8).prop_flat_map(|(m, n)| {
        let options = proptest::collection::vec(1u16..=4, n);
        options.prop_flat_map(move |opts| {
            let cell = (0..m, 0..n);
            let batch = proptest::collection::vec(
                cell.prop_flat_map(move |(u, i)| {
                    // choice in 0..opts[i], or None (clear).
                    let k = 5u16; // generous upper bound, filtered below
                    (Just(u), Just(i), proptest::option::weighted(0.8, 0..k))
                }),
                1..12,
            );
            let opts2 = opts.clone();
            (
                Just(m),
                Just(n),
                Just(opts),
                proptest::collection::vec(batch, 1..8).prop_map(move |batches| {
                    // Clamp choices into each item's valid range.
                    batches
                        .into_iter()
                        .map(|b| {
                            b.into_iter()
                                .map(|(u, i, c)| (u, i, c.map(|o| o % opts2[i])))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delta_chain_matches_full_rebuild((m, _n, options, batches) in edit_stream()) {
        let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
        // Baseline snapshot (empty matrix) with slack generous enough that
        // no batch in this stream can exhaust a span.
        let base = log.snapshot();
        let mut live = ResponseOps::with_slack(&base.matrix, 96, 96);

        for batch in batches {
            for (u, i, c) in batch {
                log.set(u, i, c).unwrap();
            }
            let snap = log.snapshot();
            let delta = snap.delta.as_ref().expect("baseline exists");
            live.apply_delta(&snap.matrix, delta)
                .expect("slack is sufficient for this stream");

            let rebuilt = ResponseOps::new(&snap.matrix);

            // Pattern: logical row equality plus per-column mirror.
            prop_assert_eq!(live.pattern(), rebuilt.pattern());
            for c in 0..rebuilt.pattern().cols() {
                prop_assert_eq!(
                    live.pattern().col_iter(c).collect::<Vec<_>>(),
                    rebuilt.pattern().col_iter(c).collect::<Vec<_>>(),
                    "col {}",
                    c
                );
            }

            // Degree scalings are bitwise identical (integer-derived).
            prop_assert_eq!(live.row_counts(), rebuilt.row_counts());
            prop_assert_eq!(live.col_counts(), rebuilt.col_counts());
            prop_assert_eq!(live.inv_row_counts(), rebuilt.inv_row_counts());
            prop_assert_eq!(live.inv_col_counts(), rebuilt.inv_col_counts());

            // Kernel outputs ("scores") are bitwise identical.
            let s: Vec<f64> = (0..m).map(|j| 0.3 * j as f64 - 1.0).collect();
            let mut w_live = vec![0.0; live.n_option_columns()];
            let mut w_reb = vec![0.0; rebuilt.n_option_columns()];
            let mut out_live = vec![0.0; m];
            let mut out_reb = vec![0.0; m];
            live.u_apply(&s, &mut w_live, &mut out_live);
            rebuilt.u_apply(&s, &mut w_reb, &mut out_reb);
            prop_assert_eq!(&w_live, &w_reb);
            prop_assert_eq!(&out_live, &out_reb);
            live.ut_apply(&s, &mut w_live, &mut out_live);
            rebuilt.ut_apply(&s, &mut w_reb, &mut out_reb);
            prop_assert_eq!(&out_live, &out_reb);
        }
    }

    #[test]
    fn delta_chain_holds_under_every_lane_layout((m, _n, options, batches) in edit_stream()) {
        // Mixed plan at a mid threshold with min_dim 0: small rosters
        // genuinely mix formats, and lanes cross the promotion boundary as
        // the stream fills them.
        let mixed = DensityPlan { row_density: 0.3, col_density: 0.3, min_dim: 0 };
        for (name, plan, bitwise) in [
            ("force_csr", DensityPlan::force_csr(), true),
            ("force_bitmap", DensityPlan::force_bitmap(), true),
            ("mixed", mixed, false),
        ] {
            let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
            let base = log.snapshot();
            let mut live = ResponseOps::with_plan(&base.matrix, 96, 96, plan);

            for batch in &batches {
                for &(u, i, c) in batch {
                    log.set(u, i, c).unwrap();
                }
                let snap = log.snapshot();
                let delta = snap.delta.as_ref().expect("baseline exists");
                live.apply_delta(&snap.matrix, delta)
                    .expect("slack is sufficient for this stream");

                // Ground truth: the pure-CSR engine rebuilt from scratch.
                let csr = ResponseOps::with_plan(&snap.matrix, 0, 0, DensityPlan::force_csr());
                prop_assert_eq!(live.pattern(), csr.pattern(), "{}", name);
                prop_assert_eq!(live.row_counts(), csr.row_counts(), "{}", name);
                prop_assert_eq!(live.col_counts(), csr.col_counts(), "{}", name);

                let s: Vec<f64> = (0..m).map(|j| 0.3 * j as f64 - 1.0).collect();
                let mut w_live = vec![0.0; live.n_option_columns()];
                let mut w_csr = vec![0.0; csr.n_option_columns()];
                let mut out_live = vec![0.0; m];
                let mut out_csr = vec![0.0; m];
                live.u_apply(&s, &mut w_live, &mut out_live);
                csr.u_apply(&s, &mut w_csr, &mut out_csr);
                for (a, b) in out_live.iter().zip(&out_csr) {
                    prop_assert!((a - b).abs() <= 1e-12, "{name}: U apply diverges");
                }
                live.ut_apply(&s, &mut w_live, &mut out_live);
                csr.ut_apply(&s, &mut w_csr, &mut out_csr);
                for (a, b) in out_live.iter().zip(&out_csr) {
                    prop_assert!((a - b).abs() <= 1e-12, "{name}: Uᵀ apply diverges");
                }

                // Format-stable layouts (forced plans pick the same format
                // regardless of density) must additionally be *bitwise*
                // equal to a rebuild under the same plan.
                if bitwise {
                    let rebuilt = ResponseOps::with_plan(&snap.matrix, 0, 0, plan);
                    let mut w_reb = vec![0.0; rebuilt.n_option_columns()];
                    let mut out_reb = vec![0.0; m];
                    live.u_apply(&s, &mut w_live, &mut out_live);
                    rebuilt.u_apply(&s, &mut w_reb, &mut out_reb);
                    prop_assert_eq!(&out_live, &out_reb, "{}: bitwise", name);
                }
            }
        }
    }
}
