//! Property tests for the fused response kernels: every normalized product
//! must match the explicit dense composition, the pattern engine must agree
//! with the legacy valued-CSR formulation, and serial/parallel execution
//! must coincide to 1e-12 — including unanswered users (empty rows) and
//! never-picked options (empty columns).

use hnd_linalg::parallel::with_threads;
use hnd_response::{ResponseMatrix, ResponseOps};
use proptest::prelude::*;

/// Random response matrix with skips: m users × n items, k options each,
/// every cell answered with probability 0.8 (so empty rows/columns occur).
fn random_responses() -> impl Strategy<Value = ResponseMatrix> {
    (2usize..=12, 1usize..=8, 2u16..=4).prop_flat_map(|(m, n, k)| {
        proptest::collection::vec(proptest::option::weighted(0.8, 0u16..k), m * n).prop_map(
            move |choices| {
                let rows: Vec<Vec<Option<u16>>> = (0..m)
                    .map(|j| (0..n).map(|i| choices[j * n + i]).collect())
                    .collect();
                let refs: Vec<&[Option<u16>]> = rows.iter().map(|r| r.as_slice()).collect();
                ResponseMatrix::from_choices(n, &vec![k; n], &refs).unwrap()
            },
        )
    })
}

/// The seed's formulation of the normalized kernels, kept as the test
/// oracle: explicit scaled temporaries over the valued CSR matrix.
struct LegacyOps {
    c: hnd_linalg::CsrMatrix,
    row_counts: Vec<f64>,
    col_counts: Vec<f64>,
}

impl LegacyOps {
    fn new(matrix: &ResponseMatrix) -> Self {
        let c = matrix.to_binary_csr();
        let row_counts = c.row_sums();
        let col_counts = c.col_sums();
        LegacyOps {
            c,
            row_counts,
            col_counts,
        }
    }

    fn u_apply(&self, s: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0; self.c.cols()];
        self.c.matvec_t(s, &mut w);
        for (wi, &cnt) in w.iter_mut().zip(&self.col_counts) {
            *wi = if cnt > 0.0 { *wi / cnt } else { 0.0 };
        }
        let mut out = vec![0.0; self.c.rows()];
        self.c.matvec(&w, &mut out);
        for (oi, &cnt) in out.iter_mut().zip(&self.row_counts) {
            *oi = if cnt > 0.0 { *oi / cnt } else { 0.0 };
        }
        out
    }

    fn ut_apply(&self, s: &[f64]) -> Vec<f64> {
        let scaled: Vec<f64> = s
            .iter()
            .zip(&self.row_counts)
            .map(|(v, &c)| if c > 0.0 { v / c } else { 0.0 })
            .collect();
        let mut w = vec![0.0; self.c.cols()];
        self.c.matvec_t(&scaled, &mut w);
        for (wi, &cnt) in w.iter_mut().zip(&self.col_counts) {
            *wi = if cnt > 0.0 { *wi / cnt } else { 0.0 };
        }
        let mut out = vec![0.0; self.c.rows()];
        self.c.matvec(&w, &mut out);
        out
    }
}

fn probe(m: usize) -> Vec<f64> {
    (0..m)
        .map(|i| (i as f64 * 0.37 - 1.1).sin() + 0.2)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fused_kernels_match_legacy_formulation(matrix in random_responses()) {
        let ops = ResponseOps::new(&matrix);
        let legacy = LegacyOps::new(&matrix);
        let m = matrix.n_users();
        let s = probe(m);

        let mut w = vec![0.0; ops.n_option_columns()];
        let mut got = vec![0.0; m];
        ops.u_apply(&s, &mut w, &mut got);
        let want = legacy.u_apply(&s);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-12, "u_apply: {a} vs {b}");
        }

        ops.ut_apply(&s, &mut w, &mut got);
        let want = legacy.ut_apply(&s);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-12, "ut_apply: {a} vs {b}");
        }
    }

    #[test]
    fn serial_and_parallel_ops_agree(matrix in random_responses()) {
        let ops = ResponseOps::new(&matrix);
        let m = matrix.n_users();
        let s = probe(m);
        let d = ops.cct_row_sums();

        let run = || {
            let mut w = vec![0.0; ops.n_option_columns()];
            let mut u = vec![0.0; m];
            let mut ut = vec![0.0; m];
            let mut lap = vec![0.0; m];
            ops.u_apply(&s, &mut w, &mut u);
            ops.ut_apply(&s, &mut w, &mut ut);
            ops.laplacian_apply(&d, &s, &mut w, &mut lap);
            (u, ut, lap)
        };
        let (u1, ut1, lap1) = with_threads(1, run);
        let (u4, ut4, lap4) = with_threads(4, run);
        for (a, b) in u1.iter().zip(&u4) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in ut1.iter().zip(&ut4) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in lap1.iter().zip(&lap4) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pattern_roundtrips_response_matrix(matrix in random_responses()) {
        // The pattern form and the valued CSR form describe the same C.
        let pattern = matrix.to_binary_pattern();
        let csr = matrix.to_binary_csr();
        prop_assert_eq!(pattern.rows(), csr.rows());
        prop_assert_eq!(pattern.cols(), csr.cols());
        prop_assert_eq!(pattern.nnz(), csr.nnz());
        for i in 0..csr.rows() {
            let want: Vec<usize> = csr.row_iter(i).map(|(c, _)| c).collect();
            let got: Vec<usize> = pattern.row_iter(i).collect();
            prop_assert_eq!(got, want, "row {} differs", i);
        }
    }

    #[test]
    fn unanswered_users_score_zero(matrix in random_responses()) {
        let ops = ResponseOps::new(&matrix);
        let m = matrix.n_users();
        let ones = vec![1.0; m];
        let mut w = vec![0.0; ops.n_option_columns()];
        let mut out = vec![0.0; m];
        ops.u_apply(&ones, &mut w, &mut out);
        for (user, &score) in out.iter().enumerate() {
            if matrix.answers_of_user(user) == 0 {
                prop_assert_eq!(score, 0.0, "empty user {} must score 0", user);
            } else {
                prop_assert!((score - 1.0).abs() < 1e-12, "row-stochastic on answered rows");
            }
        }
    }
}

/// The Figure 1 fixture: the pattern round-trips against the existing CSR
/// path, column by column, and the ops agree on it.
#[test]
fn figure1_fixture_roundtrip() {
    let matrix = ResponseMatrix::from_choices(
        3,
        &[3, 3, 3],
        &[
            &[Some(0), Some(0), Some(0)],
            &[Some(0), Some(0), Some(2)],
            &[Some(0), Some(1), Some(2)],
            &[Some(1), Some(2), Some(2)],
        ],
    )
    .unwrap();
    let pattern = matrix.to_binary_pattern();
    let expected = [vec![0, 3, 6], vec![0, 3, 8], vec![0, 4, 8], vec![1, 5, 8]];
    for (user, cols) in expected.iter().enumerate() {
        let got: Vec<usize> = pattern.row_iter(user).collect();
        assert_eq!(&got, cols, "user {user}");
    }
    // CSC mirror of column 8 (option 3C): picked by users 1, 2, 3.
    assert_eq!(pattern.col(8), &[1, 2, 3]);
    assert_eq!(pattern.col(2), &[] as &[u32], "option 1C never picked");
}
