//! Property tests for cross-version delta compaction: for an arbitrary
//! edit stream, `compact_range(a, b)` applied to the version-`a` matrix
//! must equal (1) replaying every per-snapshot delta between `a` and `b`
//! and (2) a from-scratch rebuild at version `b` — including streams that
//! overwrite and retract the same cell repeatedly.

use hnd_response::{ResponseLog, ResponseMatrix};
use proptest::prelude::*;

/// One write in a generated stream: `(user, item, choice)`.
type Write = (usize, usize, Option<u16>);

/// A generated roster + edit stream: `(m, n, options, batches)`.
type EditStream = (usize, usize, Vec<u16>, Vec<Vec<Write>>);

/// An edit stream over a small heterogeneous roster, biased toward cell
/// reuse (small rosters + many batches) so overwrites (`Some → Some`) and
/// retractions (`Some → None`) are common.
fn edit_stream() -> impl Strategy<Value = EditStream> {
    (2usize..=8, 1usize..=5).prop_flat_map(|(m, n)| {
        let options = proptest::collection::vec(1u16..=4, n);
        options.prop_flat_map(move |opts| {
            let cell = (0..m, 0..n);
            let batch = proptest::collection::vec(
                cell.prop_flat_map(move |(u, i)| {
                    (Just(u), Just(i), proptest::option::weighted(0.8, 0..5u16))
                }),
                1..10,
            );
            let opts2 = opts.clone();
            (
                Just(m),
                Just(n),
                Just(opts),
                proptest::collection::vec(batch, 2..9).prop_map(move |batches| {
                    batches
                        .into_iter()
                        .map(|b| {
                            b.into_iter()
                                .map(|(u, i, c)| (u, i, c.map(|o| o % opts2[i])))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                }),
            )
        })
    })
}

/// Drives the log through `batches`, snapshotting after each batch.
/// Returns the per-snapshot checkpoints `(version, matrix, delta)` — the
/// replay and rebuild oracles compaction is checked against.
#[allow(clippy::type_complexity)]
fn checkpoints(
    log: &mut ResponseLog,
    batches: &[Vec<Write>],
) -> Vec<(u64, ResponseMatrix, Option<hnd_response::ResponseDelta>)> {
    let base = log.snapshot();
    let mut out = vec![(base.version, base.matrix, None)];
    for batch in batches {
        for &(u, i, c) in batch {
            log.set(u, i, c).unwrap();
        }
        let snap = log.snapshot();
        out.push((snap.version, snap.matrix, snap.delta));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compacted_range_equals_replay_and_rebuild((m, _n, options, batches) in edit_stream()) {
        let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
        let points = checkpoints(&mut log, &batches);

        // Every checkpoint pair (a ≤ b): one compacted delta ≡ replaying
        // the per-snapshot deltas ≡ the version-b matrix rebuilt from the
        // log itself.
        for a in 0..points.len() {
            for b in a..points.len() {
                let (va, ref ma, _) = points[a];
                let (vb, ref mb, _) = points[b];

                let compacted = log.compact_range(va, vb).unwrap();
                prop_assert_eq!(compacted.from_version, va);
                prop_assert_eq!(compacted.to_version, vb);

                // (1) One-shot catch-up from the version-a matrix.
                let mut one_shot = ma.clone();
                one_shot.apply_delta(&compacted).unwrap();
                prop_assert_eq!(&one_shot, mb, "compact({}, {}) != checkpoint", va, vb);

                // (2) Replaying every intermediate per-snapshot delta.
                let mut replayed = ma.clone();
                for (_, _, delta) in &points[a + 1..=b] {
                    replayed
                        .apply_delta(delta.as_ref().expect("non-baseline checkpoints carry deltas"))
                        .unwrap();
                }
                prop_assert_eq!(&replayed, &one_shot, "replay({}, {}) != compacted", va, vb);

                // Compaction is lossless but never larger than the raw
                // range, and at most one edit per touched cell.
                prop_assert!(compacted.len() as u64 <= vb - va);
                let mut cells: Vec<(usize, usize)> =
                    compacted.edits.iter().map(|e| (e.user, e.item)).collect();
                cells.dedup();
                prop_assert_eq!(cells.len(), compacted.len(), "duplicate cell in compacted delta");
            }
        }

        // (3) Full-range compaction applied to the empty baseline equals a
        // from-scratch rebuild of the final state.
        let head = log.version();
        let full = log.compact_range(0, head).unwrap();
        let mut from_empty = ResponseLog::new(m, options.len(), &options).unwrap().to_matrix();
        from_empty.apply_delta(&full).unwrap();
        prop_assert_eq!(from_empty, log.to_matrix());
    }

    #[test]
    fn truncated_history_still_compacts_the_retained_suffix(
        (m, _n, options, batches) in edit_stream()
    ) {
        let mut log = ResponseLog::new(m, options.len(), &options).unwrap();
        let points = checkpoints(&mut log, &batches);
        // Truncate up to the middle checkpoint…
        let mid = points.len() / 2;
        let (vmid, ref mmid, _) = points[mid];
        log.truncate_history(vmid);
        // …ranges reaching behind it are refused, the suffix still works.
        if vmid > 0 {
            prop_assert!(log.compact_range(0, log.version()).is_err());
        }
        let tail = log.compact_range(vmid, log.version()).unwrap();
        let mut caught_up = mmid.clone();
        caught_up.apply_delta(&tail).unwrap();
        prop_assert_eq!(caught_up, log.to_matrix());
    }
}

/// The acceptance-criteria pin: the same compaction ≡ replay ≡ rebuild
/// identity under three fixed seeds, driven by a deterministic LCG stream
/// (independent of the proptest harness and its seed handling).
#[test]
fn compaction_identity_under_three_fixed_seeds() {
    for seed in [0xC0FFEE_u64, 0xBEAD, 0x5EED] {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let m = 4 + (next() % 5) as usize;
        let n = 2 + (next() % 4) as usize;
        let options: Vec<u16> = (0..n).map(|_| 2 + (next() % 3) as u16).collect();

        let mut log = ResponseLog::new(m, n, &options).unwrap();
        let mut checkpoints: Vec<(u64, ResponseMatrix)> = vec![(0, log.to_matrix())];
        for _ in 0..12 {
            for _ in 0..(1 + next() % 8) {
                let u = (next() % m as u64) as usize;
                let i = (next() % n as u64) as usize;
                let c = if next() % 5 == 0 {
                    None // retraction
                } else {
                    Some((next() % options[i] as u64) as u16)
                };
                log.set(u, i, c).unwrap();
            }
            checkpoints.push((log.version(), log.to_matrix()));
        }

        for a in 0..checkpoints.len() {
            for b in a..checkpoints.len() {
                let (va, ref ma) = checkpoints[a];
                let (vb, ref mb) = checkpoints[b];
                let delta = log.compact_range(va, vb).unwrap();
                let mut patched = ma.clone();
                patched.apply_delta(&delta).unwrap();
                assert_eq!(&patched, mb, "seed {seed:#x}: compact({va}, {vb})");
            }
        }
    }
}
