//! ABH-power analysis (Figure 14, Appendix E-B).
//!
//! * `fig14a` — the power-method iteration count of ABH-power grows
//!   linearly with the spectral shift β (the reason the paper's β choice
//!   matters): sweep the β coefficient over 2..=10 and report the iteration
//!   ratio against the smallest count.
//! * `fig14b` — iteration counts vs question count for ABH-power,
//!   HND-deflation and HND-power.

use crate::config::RunConfig;
use crate::report::{save_json, Table};
use hnd_c1p::abh::{AbhPower, BetaStrategy};
use hnd_core::SolverKind;
use hnd_irt::{GeneratorConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn default_dataset(m: usize, n: usize, seed: u64) -> hnd_irt::SyntheticDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    hnd_irt::generate(
        &GeneratorConfig {
            n_users: m,
            n_items: n,
            model: ModelKind::Samejima,
            ..Default::default()
        },
        &mut rng,
    )
}

/// Figure 14a: iteration count vs β coefficient.
pub fn run_beta_sweep(cfg: &RunConfig) {
    let coefficients: Vec<f64> = (2..=10).map(|c| c as f64).collect();
    let reps = cfg.effective_reps();
    // Hold the datasets fixed across the β sweep so the iteration counts
    // isolate the effect of the shift (one dataset per repetition).
    let datasets: Vec<_> = (0..reps)
        .map(|r| default_dataset(100, 100, cfg.seed_for(0, r)))
        .collect();
    let mut mean_iters = Vec::new();
    for &coeff in &coefficients {
        let mut iters = Vec::new();
        for ds in &datasets {
            let abh = AbhPower {
                beta: BetaStrategy::Coefficient(coeff),
                ..Default::default()
            };
            let (_, it) = abh.diff_eigenvector(&ds.responses).expect("ABH-power runs");
            iters.push(it as f64);
        }
        mean_iters.push(hnd_eval::mean(&iters));
    }
    let min = mean_iters
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .max(1.0);
    let mut table = Table::new(
        "Figure 14a — ABH-power iterations vs β coefficient (ratio to smallest)",
        vec!["β coeff".into(), "iterations".into(), "ratio".into()],
    );
    let mut json_points = Vec::new();
    for (c, iters) in coefficients.iter().zip(&mean_iters) {
        table.push_row(vec![
            format!("{c}"),
            format!("{iters:.1}"),
            format!("{:.2}", iters / min),
        ]);
        json_points.push(serde_json::json!({
            "coefficient": c,
            "iterations": iters,
            "ratio": iters / min,
        }));
    }
    table.print();
    save_json(
        cfg,
        "fig14a",
        &serde_json::json!({ "id": "fig14a", "points": json_points }),
    );
}

/// Figure 14b: iteration counts vs question count.
pub fn run_iteration_counts(cfg: &RunConfig) {
    let ns: Vec<usize> = if cfg.quick {
        vec![10, 100, 1000]
    } else {
        vec![10, 100, 1000, 10_000]
    };
    let reps = cfg.effective_reps();
    let mut table = Table::new(
        "Figure 14b — iteration counts vs number of questions (m = 100)",
        vec![
            "n".into(),
            "ABH-power".into(),
            "HnD-deflation".into(),
            "HnD-power".into(),
        ],
    );
    let mut json_points = Vec::new();
    for (p, &n) in ns.iter().enumerate() {
        let mut abh_iters = Vec::new();
        let mut defl_iters = Vec::new();
        let mut hnd_iters = Vec::new();
        for r in 0..reps {
            let ds = default_dataset(100, n, cfg.seed_for(p, r));
            let (_, it) = AbhPower::default()
                .diff_eigenvector(&ds.responses)
                .expect("ABH-power runs");
            abh_iters.push(it as f64);
            let defl = SolverKind::Deflation
                .build_default()
                .solve(&ds.responses)
                .expect("HnD-deflation runs");
            defl_iters.push(defl.ranking.iterations as f64);
            let hnd = SolverKind::Power
                .build_default()
                .solve(&ds.responses)
                .expect("HnD-power runs");
            hnd_iters.push(hnd.ranking.iterations as f64);
        }
        table.push_row(vec![
            n.to_string(),
            format!("{:.1}", hnd_eval::mean(&abh_iters)),
            format!("{:.1}", hnd_eval::mean(&defl_iters)),
            format!("{:.1}", hnd_eval::mean(&hnd_iters)),
        ]);
        json_points.push(serde_json::json!({
            "n": n,
            "abh_power": hnd_eval::mean(&abh_iters),
            "hnd_deflation": hnd_eval::mean(&defl_iters),
            "hnd_power": hnd_eval::mean(&hnd_iters),
        }));
    }
    table.print();
    save_json(
        cfg,
        "fig14b",
        &serde_json::json!({ "id": "fig14b", "points": json_points }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_iterations_grow_with_coefficient() {
        let ds = default_dataset(60, 60, 5);
        let small = AbhPower {
            beta: BetaStrategy::Coefficient(2.0),
            ..Default::default()
        };
        let large = AbhPower {
            beta: BetaStrategy::Coefficient(10.0),
            ..Default::default()
        };
        let (_, it_small) = small.diff_eigenvector(&ds.responses).unwrap();
        let (_, it_large) = large.diff_eigenvector(&ds.responses).unwrap();
        assert!(
            it_large > it_small,
            "β×10 needs more iterations: {it_large} vs {it_small}"
        );
    }
}
