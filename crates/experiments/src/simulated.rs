//! Realistically simulated data (Figures 12 and 13, Appendix D-C).
//!
//! * Figure 12 — the "American Experience" test: 40 frozen binary 3PL items
//!   (see `hnd_irt::presets`), `θ ∼ N(0,1)`, at class scale (100 students)
//!   and original scale (2692 students); mean ± std over 10 runs.
//! * Figure 13 — the half-moon discrimination/difficulty crescent of Vania
//!   et al.: (a) the item scatter, (b) method accuracies.

use crate::config::RunConfig;
use crate::rankers::Method;
use crate::report::{save_json, Table};
use hnd_eval::Summary;
use hnd_irt::presets::{american_experience_items, half_moon_items, standard_normal_abilities};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn method_set() -> Vec<Method> {
    vec![
        Method::Hnd,
        Method::Abh,
        Method::Hits,
        Method::TruthFinder,
        Method::Investment,
        Method::PooledInvestment,
        Method::GrmEstimator,
        Method::ThreePlEstimator,
        Method::TrueAnswer,
    ]
}

/// Shared runner: repeated binary-3PL experiments with N(0,1) abilities.
fn run_binary_panel(
    title: &str,
    id: &str,
    n_students: usize,
    items_factory: impl Fn(&mut StdRng) -> Vec<hnd_irt::ThreePl>,
    cfg: &RunConfig,
    runs: usize,
    methods_filter: impl Fn(Method) -> bool,
) -> Vec<(String, Summary)> {
    let methods: Vec<Method> = method_set()
        .into_iter()
        .filter(|m| methods_filter(*m))
        .collect();
    let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len()];
    for r in 0..runs {
        let mut rng = StdRng::seed_from_u64(cfg.seed_for(0, r));
        let items = items_factory(&mut rng);
        let abilities = standard_normal_abilities(n_students, &mut rng);
        let ds = hnd_irt::generate_binary(&items, &abilities, &mut rng);
        for (mi, method) in methods.iter().enumerate() {
            if let Some(acc) = method.accuracy(&ds) {
                // Like Figure 12/13, report percentages; ABH can come out
                // negatively correlated (footnote 16) → absolute value.
                let acc = if *method == Method::Abh {
                    acc.abs()
                } else {
                    acc
                };
                per_method[mi].push(100.0 * acc);
            }
        }
    }
    let mut table = Table::new(
        title,
        vec!["Method".into(), "accuracy % (mean ± std)".into()],
    );
    let mut out = Vec::new();
    for (mi, method) in methods.iter().enumerate() {
        let summary = Summary::of(&per_method[mi]);
        table.push_row(vec![
            method.name().to_string(),
            format!("{:.2} ± {:.2}", summary.mean, summary.std_dev),
        ]);
        out.push((method.name().to_string(), summary));
    }
    table.print();
    let json = serde_json::json!({
        "id": id,
        "students": n_students,
        "runs": runs,
        "methods": out.iter().map(|(name, s)| serde_json::json!({
            "method": name, "mean_pct": s.mean, "std_pct": s.std_dev,
        })).collect::<Vec<_>>(),
    });
    save_json(cfg, id, &json);
    out
}

/// Figure 12: both class-scale and original-scale panels.
pub fn run_american_experience(cfg: &RunConfig) {
    let runs = if cfg.quick { 3 } else { 10 };
    run_binary_panel(
        "Figure 12a — American Experience, 100 students (40 3PL items)",
        "fig12a",
        100,
        |_| american_experience_items(),
        cfg,
        runs,
        |_| true,
    );
    let big_students = if cfg.quick { 500 } else { 2692 };
    run_binary_panel(
        &format!("Figure 12b — American Experience, {big_students} students"),
        "fig12b",
        big_students,
        |_| american_experience_items(),
        cfg,
        runs,
        // The paper's Figure 12b omits TruthFinder at this scale.
        |m| m != Method::TruthFinder,
    );
}

/// Figure 13: the half-moon scatter plus the accuracy panel.
pub fn run_half_moon(cfg: &RunConfig) {
    // Panel (a): the item parameter scatter.
    let mut rng = StdRng::seed_from_u64(cfg.base_seed);
    let items = half_moon_items(100, &mut rng);
    let mut table = Table::new(
        "Figure 13a — half-moon item scatter (first 10 of 100 items)",
        vec!["item".into(), "log a".into(), "b".into(), "c".into()],
    );
    for (i, it) in items.iter().take(10).enumerate() {
        table.push_row(vec![
            i.to_string(),
            format!("{:.3}", it.discrimination.ln()),
            format!("{:.3}", it.difficulty),
            format!("{:.3}", it.guessing),
        ]);
    }
    table.print();
    let scatter: Vec<serde_json::Value> = items
        .iter()
        .map(|it| {
            serde_json::json!({
                "log_a": it.discrimination.ln(),
                "b": it.difficulty,
                "c": it.guessing,
            })
        })
        .collect();
    save_json(
        cfg,
        "fig13a",
        &serde_json::json!({ "id": "fig13a", "items": scatter }),
    );

    // Panel (b): accuracies on 100 users × 100 half-moon items, 10 runs.
    let runs = if cfg.quick { 3 } else { 10 };
    run_binary_panel(
        "Figure 13b — accuracy on half-moon data (100 users × 100 items)",
        "fig13b",
        100,
        |rng| half_moon_items(100, rng),
        cfg,
        runs,
        |_| true,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_panel_produces_summaries() {
        let cfg = RunConfig {
            quick: true,
            ..Default::default()
        };
        let out = run_binary_panel(
            "test panel",
            "test",
            60,
            |_| american_experience_items(),
            &cfg,
            2,
            |m| matches!(m, Method::Hnd | Method::TrueAnswer),
        );
        assert_eq!(out.len(), 2);
        for (name, summary) in &out {
            assert_eq!(summary.runs, 2, "{name}");
            assert!(summary.mean.abs() <= 100.0);
        }
        // True-Answer on 3PL data with N(0,1) abilities is strong.
        let ta = out.iter().find(|(n, _)| n == "True-Answer").unwrap();
        assert!(ta.1.mean > 70.0, "True-Answer: {}", ta.1.mean);
    }
}
