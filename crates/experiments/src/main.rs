//! Command-line entry point: regenerate the paper's figures and tables.
//!
//! ```text
//! hnd-experiments [--reps N] [--quick] [--full] [--seed S] [--out DIR] <ids...|all>
//! ```

use hnd_experiments::{run_experiment, RunConfig, ALL_EXPERIMENTS};
use std::process::ExitCode;

const USAGE: &str = "\
Usage: hnd-experiments [OPTIONS] <experiment ids...|all>

Regenerates the figures/tables of the HITSnDIFFS paper (ICDE 2024).

Options:
  --reps N     repetitions per sweep point (default 5)
  --quick      shrink sweeps for a fast smoke run
  --full       extend scalability sweeps to paper-scale sizes (10^5 users)
  --seed S     base RNG seed (default 20240401)
  --out DIR    also write JSON results to DIR
  --list       list experiment ids and exit
  -h, --help   show this help

Experiment ids: fig4a-h, fig5a, fig5b, fig6, fig7, fig9a-k, fig10,
fig11, fig12, fig13, fig14a, fig14b, or `all`.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = RunConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => cfg.reps = n,
                    _ => {
                        eprintln!("error: --reps needs a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(s) => cfg.base_seed = s,
                    None => {
                        eprintln!("error: --seed needs an integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => cfg.out_dir = Some(dir.into()),
                    None => {
                        eprintln!("error: --out needs a directory");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--quick" => cfg.quick = true,
            "--full" => cfg.full = true,
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("error: unknown option {other}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let started = std::time::Instant::now();
        if let Err(e) = run_experiment(id, &cfg) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("[{id} finished in {:.1}s]", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
