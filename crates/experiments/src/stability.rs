//! Stability experiments (Figure 6, Section IV-D).
//!
//! Setup per the paper: m = n = 100, k = 3, abilities equally spaced in
//! `[0, 1]`, item difficulties equally spaced in `[−0.5, 0.5]` with all
//! options of an item sharing its difficulty, and per-option slopes equally
//! spaced (`α_h = h·a`, the GRM↔Bock correspondence). Sweeping the
//! discrimination `a ∈ {1, 2, 4, 8, 16}`:
//!
//! * (a) the variance of the eigenvector each method ranks by
//!   (`Udiff`'s dominant one for HND, `βI − M`'s for ABH),
//! * (b) the normalized user displacement across resampled matrices,
//! * (c) the Spearman accuracy of both methods.
//!
//! The paper's prediction (Section III-E): HND's eigenvector has smaller
//! variance, hence smaller displacement and better accuracy off the ideal
//! case.

use crate::config::RunConfig;
use crate::report::{save_json, Table};
use hnd_c1p::abh::AbhPower;
use hnd_core::{AbilityRanker, SolverKind};
use hnd_irt::poly::BockItem;
use rand::rngs::StdRng;
use rand::SeedableRng;

const M: usize = 100;
const N: usize = 100;
const K: usize = 3;

fn stability_dataset(a: f64, seed: u64) -> hnd_irt::SyntheticDataset {
    let abilities: Vec<f64> = (0..M).map(|j| j as f64 / (M - 1) as f64).collect();
    let items: Vec<BockItem> = (0..N)
        .map(|i| {
            let b = -0.5 + i as f64 / (N - 1) as f64;
            let slopes: Vec<f64> = (0..K).map(|h| h as f64 * a).collect();
            let intercepts: Vec<f64> = slopes.iter().map(|&s| -s * b).collect();
            BockItem::new(slopes, intercepts)
        })
        .collect();
    let correct = vec![(K - 1) as u16; N];
    let mut rng = StdRng::seed_from_u64(seed);
    hnd_irt::generate_from_items(&items, &correct, &abilities, &mut rng)
}

/// Runs the full Figure 6 study (three panels at once).
pub fn run(cfg: &RunConfig) {
    let discriminations = [1.0, 2.0, 4.0, 8.0, 16.0];
    let reps = cfg.effective_reps().max(2); // displacement needs ≥ 2 runs
    let mut table = Table::new(
        "Figure 6 — stability study (HnD vs ABH)",
        vec![
            "a".into(),
            "var(HnD eigvec)".into(),
            "var(ABH eigvec)".into(),
            "displ HnD".into(),
            "displ ABH".into(),
            "acc HnD".into(),
            "acc ABH".into(),
        ],
    );
    let mut json_points = Vec::new();
    for (p, &a) in discriminations.iter().enumerate() {
        // Repetitions are independent (dataset → eigenvectors → rankings),
        // so the whole per-rep pipeline runs as one parallel map.
        let seeds: Vec<u64> = (0..reps).map(|r| cfg.seed_for(p, r)).collect();
        struct RepOutcome {
            var_hnd: f64,
            var_abh: f64,
            acc_hnd: f64,
            acc_abh: f64,
            scores_hnd: Vec<f64>,
            scores_abh: Vec<f64>,
        }
        let outcomes = hnd_linalg::parallel::par_map(&seeds, |&seed| {
            let ds = stability_dataset(a, seed);
            // One trait-level solve yields both the raw eigenvector state
            // (panel a) and the oriented ranking (panels b/c).
            let hnd = SolverKind::Power.build_default();
            let out = hnd.solve(&ds.responses).expect("m >= 2");
            let mut sdiff = Vec::new();
            hnd_linalg::vector::adjacent_diffs(out.state.scores(), &mut sdiff);
            let abh = AbhPower::default();
            let (mdiff, _) = abh.diff_eigenvector(&ds.responses).expect("m >= 2");
            let rh = out.ranking;
            let ra = abh.rank(&ds.responses).expect("ABH ranks");
            RepOutcome {
                var_hnd: hnd_linalg::vector::variance(&sdiff),
                var_abh: hnd_linalg::vector::variance(&mdiff),
                acc_hnd: hnd_eval::spearman(&rh.scores, &ds.abilities),
                acc_abh: hnd_eval::spearman(&ra.scores, &ds.abilities),
                scores_hnd: rh.scores,
                scores_abh: ra.scores,
            }
        });
        let var_hnd: Vec<f64> = outcomes.iter().map(|o| o.var_hnd).collect();
        let var_abh: Vec<f64> = outcomes.iter().map(|o| o.var_abh).collect();
        let acc_hnd: Vec<f64> = outcomes.iter().map(|o| o.acc_hnd).collect();
        let acc_abh: Vec<f64> = outcomes.iter().map(|o| o.acc_abh).collect();
        let mut scores_hnd: Vec<Vec<f64>> = Vec::with_capacity(outcomes.len());
        let mut scores_abh: Vec<Vec<f64>> = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            scores_hnd.push(o.scores_hnd);
            scores_abh.push(o.scores_abh);
        }
        // Displacement: mean pairwise across runs.
        let displacement = |runs: &[Vec<f64>]| -> f64 {
            let mut total = 0.0;
            let mut pairs = 0usize;
            for i in 0..runs.len() {
                for j in (i + 1)..runs.len() {
                    total += hnd_eval::normalized_displacement(&runs[i], &runs[j]);
                    pairs += 1;
                }
            }
            if pairs == 0 {
                0.0
            } else {
                total / pairs as f64
            }
        };
        let d_hnd = displacement(&scores_hnd);
        let d_abh = displacement(&scores_abh);
        table.push_row(vec![
            format!("{a}"),
            format!("{:.5}", hnd_eval::mean(&var_hnd)),
            format!("{:.5}", hnd_eval::mean(&var_abh)),
            format!("{d_hnd:.4}"),
            format!("{d_abh:.4}"),
            format!("{:.3}", hnd_eval::mean(&acc_hnd)),
            format!("{:.3}", hnd_eval::mean(&acc_abh)),
        ]);
        json_points.push(serde_json::json!({
            "discrimination": a,
            "variance_hnd": hnd_eval::mean(&var_hnd),
            "variance_abh": hnd_eval::mean(&var_abh),
            "displacement_hnd": d_hnd,
            "displacement_abh": d_abh,
            "accuracy_hnd": hnd_eval::mean(&acc_hnd),
            "accuracy_abh": hnd_eval::mean(&acc_abh),
        }));
    }
    table.print();
    save_json(
        cfg,
        "fig6",
        &serde_json::json!({ "id": "fig6", "points": json_points, "reps": reps }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stability_dataset_shape() {
        let ds = stability_dataset(4.0, 1);
        assert_eq!(ds.responses.n_users(), 100);
        assert_eq!(ds.responses.n_items(), 100);
        assert_eq!(ds.responses.max_options(), 3);
        // Equally spaced abilities.
        assert_eq!(ds.abilities[0], 0.0);
        assert_eq!(*ds.abilities.last().unwrap(), 1.0);
    }

    #[test]
    fn high_discrimination_is_more_accurate_for_hnd() {
        let low = stability_dataset(1.0, 2);
        let high = stability_dataset(16.0, 2);
        let hnd = SolverKind::Power.build_default();
        let acc = |ds: &hnd_irt::SyntheticDataset| {
            let r = hnd.solve(&ds.responses).unwrap().ranking;
            hnd_eval::spearman(&r.scores, &ds.abilities)
        };
        assert!(acc(&high) > acc(&low), "discrimination helps HnD");
    }
}
