//! Real-world dataset experiments (Figures 7, 10, 11 — Section IV-E).
//!
//! The original six MCQ datasets are not available (see DESIGN.md §4);
//! simulated stand-ins with identical shapes are evaluated with the paper's
//! protocol: the True-Answer ranking serves as pseudo gold standard, and —
//! following the paper's footnote 16 — a negatively correlated ABH result
//! is reported by absolute value.

use crate::config::RunConfig;
use crate::rankers::Method;
use crate::report::{save_json, Table};
use hnd_datasets::{real_world_datasets, REAL_WORLD_SPECS};
use hnd_models::TrueAnswer;
use hnd_response::AbilityRanker;

/// Per-dataset accuracy of each method against the True-Answer ranking,
/// as percentages.
fn evaluate_all() -> (Vec<String>, Vec<Method>, Vec<Vec<f64>>) {
    let methods = Method::real_world_set();
    let datasets = real_world_datasets(0);
    let mut names = Vec::new();
    let mut rows = Vec::new();
    for ds in &datasets {
        names.push(ds.spec.name.to_string());
        let reference = TrueAnswer::new(ds.data.correct_options.clone())
            .rank(&ds.data.responses)
            .expect("True-Answer runs");
        let mut row = Vec::new();
        for method in &methods {
            let acc = match method.run(&ds.data) {
                Ok(ranking) => hnd_eval::spearman(&ranking.scores, &reference.scores),
                Err(_) => 0.0,
            };
            // Footnote 16: ABH's correlation can come out negative; the
            // paper reports |ρ| for presentation.
            let acc = if *method == Method::Abh {
                acc.abs()
            } else {
                acc
            };
            row.push(100.0 * acc);
        }
        rows.push(row);
    }
    (names, methods, rows)
}

/// Runs `fig7` (average), `fig10` (dataset table) or `fig11` (per-dataset).
pub fn run(id: &str, cfg: &RunConfig) {
    match id {
        "fig10" => {
            let mut table = Table::new(
                "Figure 10 — summary of (simulated) real datasets",
                vec![
                    "Dataset".into(),
                    "#users".into(),
                    "#questions".into(),
                    "#options".into(),
                ],
            );
            for spec in REAL_WORLD_SPECS {
                table.push_row(vec![
                    spec.name.to_string(),
                    spec.users.to_string(),
                    spec.questions.to_string(),
                    spec.options.to_string(),
                ]);
            }
            table.print();
            let json = serde_json::json!({
                "id": "fig10",
                "datasets": REAL_WORLD_SPECS.iter().map(|s| serde_json::json!({
                    "name": s.name, "users": s.users,
                    "questions": s.questions, "options": s.options,
                })).collect::<Vec<_>>(),
            });
            save_json(cfg, id, &json);
        }
        "fig7" => {
            let (_names, methods, rows) = evaluate_all();
            let mut table = Table::new(
                "Figure 7 — mean accuracy vs True-Answer over 6 datasets (%)",
                vec!["Method".into(), "accuracy %".into()],
            );
            let mut json_rows = Vec::new();
            for (mi, method) in methods.iter().enumerate() {
                let vals: Vec<f64> = rows.iter().map(|r| r[mi]).collect();
                let mean = hnd_eval::mean(&vals);
                table.push_row(vec![method.name().to_string(), format!("{mean:.2}")]);
                json_rows.push(serde_json::json!({
                    "method": method.name(),
                    "mean_accuracy_pct": mean,
                }));
            }
            table.print();
            save_json(
                cfg,
                id,
                &serde_json::json!({ "id": "fig7", "methods": json_rows }),
            );
        }
        "fig11" => {
            let (names, methods, rows) = evaluate_all();
            let mut headers = vec!["Dataset".to_string()];
            headers.extend(methods.iter().map(|m| m.name().to_string()));
            let mut table = Table::new(
                "Figure 11 — per-dataset accuracy vs True-Answer (%)",
                headers,
            );
            for (d, name) in names.iter().enumerate() {
                let mut row = vec![name.clone()];
                row.extend(rows[d].iter().map(|v| format!("{v:.2}")));
                table.push_row(row);
            }
            table.print();
            let json = serde_json::json!({
                "id": "fig11",
                "datasets": names,
                "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
                "accuracy_pct": rows,
            });
            save_json(cfg, id, &json);
        }
        _ => unreachable!("dispatcher guarantees a real-world id"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_covers_all_datasets_and_methods() {
        let (names, methods, rows) = evaluate_all();
        assert_eq!(names.len(), 6);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].len(), methods.len());
        for row in &rows {
            for &v in row {
                assert!((-100.0..=100.0).contains(&v));
            }
        }
    }

    #[test]
    fn hnd_is_competitive_on_stand_ins() {
        // The paper's own real-data result (Figure 7) has no consistent
        // winner and HnD slightly below HITS/PooledInv; we require HnD to be
        // clearly positive and the overall ordering (PooledInv/HITS strong)
        // to hold.
        let (_, methods, rows) = evaluate_all();
        let mean_of = |m: Method| {
            let idx = methods.iter().position(|x| *x == m).unwrap();
            rows.iter().map(|r| r[idx]).sum::<f64>() / rows.len() as f64
        };
        let hnd = mean_of(Method::Hnd);
        assert!(hnd > 30.0, "HnD mean accuracy vs True-Answer: {hnd}");
        assert!(mean_of(Method::Hits) > 50.0, "HITS should be strong");
        assert!(mean_of(Method::PooledInvestment) > 50.0);
    }
}
