//! Aligned table printing and JSON export.

use crate::config::RunConfig;

/// A simple aligned text table mirroring one paper figure/table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Figure 4a — accuracy vs number of questions (GRM)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; the cell count must match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON result under `out_dir/<id>.json` when an output directory
/// is configured. Errors are reported to stderr but never abort an
/// experiment (results are already on stdout).
pub fn save_json(cfg: &RunConfig, id: &str, value: &serde_json::Value) {
    let Some(dir) = &cfg.out_dir else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {id}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", vec!["x".into(), "method".into()]);
        t.push_row(vec!["1".into(), "HnD".into()]);
        t.push_row(vec!["1000".into(), "ABH-direct".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("1000"));
        // Both data rows end aligned on the right edge of their columns
        // (render starts with a blank line, then title/header/rule/rows).
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[4].len(), lines[5].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn save_json_without_out_dir_is_noop() {
        let cfg = RunConfig::default();
        save_json(&cfg, "x", &serde_json::json!({"a": 1}));
    }
}
