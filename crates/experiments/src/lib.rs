#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index-coupled numerics mirror the published algorithms

//! # hnd-experiments
//!
//! The harness that regenerates **every table and figure** of the paper's
//! evaluation (Section IV plus Appendices D and E). Each experiment prints
//! the paper's rows/series as an aligned text table and (optionally) writes
//! machine-readable JSON under `--out DIR`.
//!
//! Run `cargo run --release -p hnd-experiments -- all` or pick individual
//! artifacts (`fig4a`, `fig5b`, `fig6`, `fig12`, …). `--quick` shrinks the
//! sweeps for smoke testing; `--full` extends the scalability sweeps to
//! paper-scale sizes.
//!
//! | id | paper artifact |
//! |----|----------------|
//! | `fig4a`–`fig4h` | accuracy sweeps (Section IV-B) |
//! | `fig5a`, `fig5b` | scalability (Section IV-C) |
//! | `fig6` | stability: eigenvector variance, displacement, accuracy (IV-D) |
//! | `fig7`, `fig10`, `fig11` | real-world stand-ins (IV-E) |
//! | `fig9a`–`fig9k` | supplementary accuracy (Appendix D-A) |
//! | `fig12` | simulated American Experience test (Appendix D-C) |
//! | `fig13` | simulated half-moon data (Appendix D-C) |
//! | `fig14a`, `fig14b` | ABH-power β/iteration analysis (Appendix E-B) |

pub mod abh_beta;
pub mod accuracy;
pub mod config;
pub mod rankers;
pub mod realworld;
pub mod report;
pub mod scalability;
pub mod simulated;
pub mod stability;

pub use config::RunConfig;
pub use report::Table;

/// All experiment identifiers, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g", "fig4h", "fig5a", "fig5b",
    "fig6", "fig7", "fig10", "fig11", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
    "fig9g", "fig9h", "fig9i", "fig9j", "fig9k", "fig12", "fig13", "fig14a", "fig14b",
];

/// Dispatches one experiment by id.
///
/// # Errors
/// Returns an error string for unknown ids.
pub fn run_experiment(id: &str, cfg: &RunConfig) -> Result<(), String> {
    match id {
        "fig4a" | "fig4b" | "fig4c" | "fig4d" | "fig4e" | "fig4f" | "fig4g" | "fig4h" => {
            accuracy::run_fig4(id, cfg);
            Ok(())
        }
        "fig9a" | "fig9b" | "fig9c" | "fig9d" | "fig9e" | "fig9f" | "fig9g" | "fig9h" | "fig9i"
        | "fig9j" | "fig9k" => {
            accuracy::run_fig9(id, cfg);
            Ok(())
        }
        "fig5a" => {
            scalability::run(cfg, scalability::Axis::Users);
            Ok(())
        }
        "fig5b" => {
            scalability::run(cfg, scalability::Axis::Items);
            Ok(())
        }
        "fig6" => {
            stability::run(cfg);
            Ok(())
        }
        "fig7" | "fig10" | "fig11" => {
            realworld::run(id, cfg);
            Ok(())
        }
        "fig12" => {
            simulated::run_american_experience(cfg);
            Ok(())
        }
        "fig13" => {
            simulated::run_half_moon(cfg);
            Ok(())
        }
        "fig14a" => {
            abh_beta::run_beta_sweep(cfg);
            Ok(())
        }
        "fig14b" => {
            abh_beta::run_iteration_counts(cfg);
            Ok(())
        }
        other => Err(format!("unknown experiment id: {other}")),
    }
}
