//! Run configuration shared by all experiments.

use std::path::PathBuf;

/// Global experiment options (see the binary's `--help`).
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Repetitions per data point (the paper averages over several seeds;
    /// Figures 12/13 use 10).
    pub reps: usize,
    /// Shrink sweeps for smoke runs (CI / integration tests).
    pub quick: bool,
    /// Extend scalability sweeps toward paper-scale sizes.
    pub full: bool,
    /// Base RNG seed; rep `r` of sweep point `x` uses a seed derived from
    /// `(base_seed, x, r)` so runs are reproducible point-by-point.
    pub base_seed: u64,
    /// Where JSON results are written (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            reps: 5,
            quick: false,
            full: false,
            base_seed: 20240401,
            out_dir: None,
        }
    }
}

impl RunConfig {
    /// Deterministic per-(point, rep) seed.
    pub fn seed_for(&self, point: usize, rep: usize) -> u64 {
        self.base_seed
            .wrapping_mul(1_000_003)
            .wrapping_add(point as u64 * 7919)
            .wrapping_add(rep as u64)
    }

    /// Repetition count after applying `--quick`.
    pub fn effective_reps(&self) -> usize {
        if self.quick {
            2.min(self.reps).max(1)
        } else {
            self.reps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.seed_for(1, 2), cfg.seed_for(1, 2));
        assert_ne!(cfg.seed_for(1, 2), cfg.seed_for(2, 1));
        assert_ne!(cfg.seed_for(0, 0), cfg.seed_for(0, 1));
    }

    #[test]
    fn quick_mode_caps_reps() {
        let cfg = RunConfig {
            reps: 10,
            quick: true,
            ..Default::default()
        };
        assert_eq!(cfg.effective_reps(), 2);
    }
}
