//! The method registry: one enum covering every ranker the paper compares,
//! with uniform construction, execution and accuracy evaluation.

use hnd_c1p::{AbhDirect, AbhPower};
use hnd_core::{AbilityRanker, RankError, Ranking, SolverKind};
use hnd_irt::{GrmEstimator, SyntheticDataset};
use hnd_models::{Hits, Investment, MajorityVote, PooledInvestment, TrueAnswer, TruthFinder};
use hnd_response::{rank_many, ResponseMatrix};

/// Every ranking method of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// HITSnDIFFS, Algorithm 1 (`HnD-power`) — the paper's method.
    Hnd,
    /// HND via Hotelling deflation (Section III-F).
    HndDeflation,
    /// HND via Lanczos on the symmetrized update matrix.
    HndDirect,
    /// ABH with the Lanczos Fiedler solver (the paper's default "ABH").
    Abh,
    /// ABH with the matrix-free power method (Algorithm 2).
    AbhPower,
    /// Kleinberg's HITS.
    Hits,
    /// TruthFinder.
    TruthFinder,
    /// Investment (10 iterations).
    Investment,
    /// PooledInvestment (10 iterations).
    PooledInvestment,
    /// Majority-vote agreement.
    MajorityVote,
    /// Cheating: knows the correct options, counts correct answers.
    TrueAnswer,
    /// Cheating: fits a GRM by MML-EM, ranks by EAP abilities.
    GrmEstimator,
    /// Cheating (extension beyond the paper): fits a binary 3PL by MML-EM —
    /// unlike the GRM it models random guessing, addressing the weakness
    /// the paper observes in the GRM estimator on guessing-heavy data.
    ThreePlEstimator,
}

impl Method {
    /// Display name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Hnd => "HnD",
            Method::HndDeflation => "HnD-deflation",
            Method::HndDirect => "HnD-direct",
            Method::Abh => "ABH",
            Method::AbhPower => "ABH-power",
            Method::Hits => "HITS",
            Method::TruthFinder => "TruthFinder",
            Method::Investment => "Invest",
            Method::PooledInvestment => "PooledInv",
            Method::MajorityVote => "MajorityVote",
            Method::TrueAnswer => "True-Answer",
            Method::GrmEstimator => "GRM-estimator",
            Method::ThreePlEstimator => "3PL-estimator",
        }
    }

    /// The method set of the Figure 4/9 accuracy experiments, in the
    /// paper's legend order.
    pub fn accuracy_set() -> Vec<Method> {
        vec![
            Method::Abh,
            Method::Hnd,
            Method::Hits,
            Method::TruthFinder,
            Method::Investment,
            Method::PooledInvestment,
            Method::TrueAnswer,
            Method::GrmEstimator,
        ]
    }

    /// The non-cheating method set used against the real-world stand-ins
    /// (Figures 7/11).
    pub fn real_world_set() -> Vec<Method> {
        vec![
            Method::Hnd,
            Method::Abh,
            Method::Hits,
            Method::TruthFinder,
            Method::Investment,
            Method::PooledInvestment,
        ]
    }

    /// The implementation set of the scalability study (Figure 5).
    pub fn scalability_set() -> Vec<Method> {
        vec![
            Method::GrmEstimator,
            Method::AbhPower,
            Method::Abh,
            Method::HndDirect,
            Method::HndDeflation,
            Method::Hnd,
        ]
    }

    /// Runs the method on a dataset (ground truth is consumed only by the
    /// cheating baselines). Built on [`Self::shared_ranker`] so the batched
    /// and per-dataset paths always use identically configured rankers.
    pub fn run(&self, ds: &SyntheticDataset) -> Result<Ranking, RankError> {
        match self.shared_ranker() {
            Some(ranker) => ranker.rank(&ds.responses),
            None => TrueAnswer::new(ds.correct_options.clone()).rank(&ds.responses),
        }
    }

    /// Spearman accuracy against the dataset's ground-truth abilities
    /// (the paper's ranking-accuracy measure). `None` if the method failed.
    pub fn accuracy(&self, ds: &SyntheticDataset) -> Option<f64> {
        let ranking = self.run(ds).ok()?;
        Some(hnd_eval::spearman(&ranking.scores, &ds.abilities))
    }

    /// A dataset-independent ranker instance, when the method has one.
    /// `TrueAnswer` is the exception: it is parameterized by each dataset's
    /// correct options.
    fn shared_ranker(&self) -> Option<Box<dyn AbilityRanker + Sync>> {
        match self {
            // The HND family goes through the unified SpectralSolver
            // registry; everything else keeps its bespoke constructor.
            Method::Hnd => Some(SolverKind::Power.build_default()),
            Method::HndDeflation => Some(SolverKind::Deflation.build_default()),
            Method::HndDirect => Some(SolverKind::Direct.build_default()),
            Method::Abh => Some(Box::new(AbhDirect::default())),
            Method::AbhPower => Some(Box::new(AbhPower::default())),
            Method::Hits => Some(Box::new(Hits::default())),
            Method::TruthFinder => Some(Box::new(TruthFinder::default())),
            Method::Investment => Some(Box::new(Investment::default())),
            Method::PooledInvestment => Some(Box::new(PooledInvestment::default())),
            Method::MajorityVote => Some(Box::new(MajorityVote)),
            Method::GrmEstimator => Some(Box::new(GrmEstimator::default())),
            Method::ThreePlEstimator => Some(Box::new(hnd_irt::ThreePlEstimator::default())),
            Method::TrueAnswer => None,
        }
    }

    /// Batched [`Self::accuracy`] over many datasets, parallel across
    /// matrices: stateless methods go through `hnd_response::rank_many`
    /// with a single shared ranker; per-dataset methods fall back to a
    /// parallel map. Result order matches `datasets`.
    pub fn accuracy_many(&self, datasets: &[SyntheticDataset]) -> Vec<Option<f64>> {
        match self.shared_ranker() {
            Some(ranker) => {
                let matrices: Vec<&ResponseMatrix> =
                    datasets.iter().map(|ds| &ds.responses).collect();
                rank_many(ranker.as_ref(), &matrices)
                    .into_iter()
                    .zip(datasets)
                    .map(|(result, ds)| {
                        result
                            .ok()
                            .map(|r| hnd_eval::spearman(&r.scores, &ds.abilities))
                    })
                    .collect()
            }
            None => hnd_linalg::parallel::par_map(datasets, |ds| self.accuracy(ds)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_method_runs_on_default_data() {
        let mut rng = StdRng::seed_from_u64(77);
        let ds = hnd_irt::generate(
            &hnd_irt::GeneratorConfig {
                n_users: 30,
                n_items: 20,
                ..Default::default()
            },
            &mut rng,
        );
        for method in [
            Method::Hnd,
            Method::HndDeflation,
            Method::HndDirect,
            Method::Abh,
            Method::AbhPower,
            Method::Hits,
            Method::TruthFinder,
            Method::Investment,
            Method::PooledInvestment,
            Method::MajorityVote,
            Method::TrueAnswer,
            Method::GrmEstimator,
        ] {
            let acc = method.accuracy(&ds);
            assert!(acc.is_some(), "{} failed", method.name());
            let a = acc.unwrap();
            assert!((-1.0..=1.0).contains(&a), "{}: {a}", method.name());
        }
    }

    #[test]
    fn cheating_baseline_is_strong_on_discriminative_data() {
        let mut rng = StdRng::seed_from_u64(78);
        let ds = hnd_irt::generate(
            &hnd_irt::GeneratorConfig {
                n_users: 60,
                n_items: 60,
                ..Default::default()
            },
            &mut rng,
        );
        let acc = Method::TrueAnswer.accuracy(&ds).unwrap();
        assert!(acc > 0.8, "True-Answer should be strong: {acc}");
    }
}
