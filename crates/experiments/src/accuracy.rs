//! Accuracy experiments: Figure 4 (Section IV-B) and Figure 9
//! (Appendix D-A).
//!
//! Every experiment is a sweep over one knob; each sweep point generates
//! `reps` datasets and reports the mean Spearman accuracy per method.
//! Dataset generation is parallelized with [`hnd_linalg::parallel::par_map`]
//! and method evaluation goes through [`Method::accuracy_many`], which
//! batches over the repetition datasets via `hnd_response::rank_many`.

use crate::config::RunConfig;
use crate::rankers::Method;
use crate::report::{save_json, Table};
use hnd_irt::{GeneratorConfig, ModelKind, SyntheticDataset};
use hnd_linalg::parallel::par_map;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point: a label for the x-axis plus a dataset factory.
pub struct SweepPoint {
    /// X-axis label (e.g. `"400"` for n = 400).
    pub label: String,
    /// Builds the dataset for one repetition.
    pub make: Box<dyn Fn(u64) -> SyntheticDataset + Sync>,
    /// Methods excluded at this point (e.g. the GRM estimator at sizes the
    /// paper's footnote 12 flags as infeasible).
    pub skip: Vec<Method>,
}

/// Mean accuracy per method per sweep point, plus the observed mean user
/// accuracy (x-axis of the difficulty experiments).
pub struct SweepResult {
    /// Sweep point labels.
    pub labels: Vec<String>,
    /// `values[p][m]` = mean Spearman accuracy of method `m` at point `p`
    /// (`None` when skipped/failed).
    pub values: Vec<Vec<Option<f64>>>,
    /// Mean fraction of correct answers at each point.
    pub mean_user_accuracy: Vec<f64>,
}

/// Runs a sweep: `reps` datasets per point, methods evaluated on each.
/// Dataset generation runs in parallel across repetitions; each method is
/// then evaluated over the whole repetition batch at once (parallel across
/// matrices via `rank_many`).
pub fn run_sweep(points: &[SweepPoint], methods: &[Method], cfg: &RunConfig) -> SweepResult {
    let reps = cfg.effective_reps();
    let mut values = Vec::with_capacity(points.len());
    let mut mean_acc = Vec::with_capacity(points.len());
    for (p, point) in points.iter().enumerate() {
        let seeds: Vec<u64> = (0..reps).map(|r| cfg.seed_for(p, r)).collect();
        let datasets: Vec<SyntheticDataset> = par_map(&seeds, |&seed| (point.make)(seed));
        let user_acc: Vec<f64> = datasets.iter().map(|ds| ds.mean_user_accuracy).collect();
        let per_method: Vec<Option<f64>> = methods
            .iter()
            .map(|method| {
                if point.skip.contains(method) {
                    return None;
                }
                let got: Vec<f64> = method
                    .accuracy_many(&datasets)
                    .into_iter()
                    .flatten()
                    .collect();
                if got.is_empty() {
                    None
                } else {
                    Some(hnd_eval::mean(&got))
                }
            })
            .collect();
        values.push(per_method);
        mean_acc.push(hnd_eval::mean(&user_acc));
    }
    SweepResult {
        labels: points.iter().map(|p| p.label.clone()).collect(),
        values,
        mean_user_accuracy: mean_acc,
    }
}

/// Prints a sweep result and saves its JSON.
pub fn report_sweep(
    id: &str,
    title: &str,
    x_name: &str,
    methods: &[Method],
    result: &SweepResult,
    cfg: &RunConfig,
) {
    let mut headers = vec![x_name.to_string()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let mut table = Table::new(title, headers);
    for (p, label) in result.labels.iter().enumerate() {
        let mut row = vec![label.clone()];
        for m in 0..methods.len() {
            row.push(match result.values[p][m] {
                Some(v) => format!("{v:.3}"),
                None => "—".to_string(),
            });
        }
        table.push_row(row);
    }
    table.print();
    let json = serde_json::json!({
        "id": id,
        "title": title,
        "x": result.labels,
        "mean_user_accuracy": result.mean_user_accuracy,
        "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "accuracy": result.values,
        "reps": cfg.effective_reps(),
    });
    save_json(cfg, id, &json);
}

fn n_sweep(cfg: &RunConfig) -> Vec<usize> {
    if cfg.quick {
        vec![25, 100, 400]
    } else {
        vec![25, 50, 100, 200, 400, 800, 1600]
    }
}

/// The paper's footnote 12: the GRM estimator becomes impractical for
/// large question counts — skip it there (our EM works but is orders of
/// magnitude slower, exactly as Figure 5 shows).
fn grm_skip(n_items: usize, n_users: usize) -> Vec<Method> {
    if n_items > 400 || n_users > 800 {
        vec![Method::GrmEstimator]
    } else {
        Vec::new()
    }
}

fn model_points(
    model: ModelKind,
    sweep: &[usize],
    vary_users: bool,
    cfg: &RunConfig,
) -> Vec<SweepPoint> {
    let _ = cfg;
    sweep
        .iter()
        .map(|&x| {
            let (m, n) = if vary_users { (x, 100) } else { (100, x) };
            SweepPoint {
                label: x.to_string(),
                make: Box::new(move |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    hnd_irt::generate(
                        &GeneratorConfig {
                            n_users: m,
                            n_items: n,
                            model,
                            ..Default::default()
                        },
                        &mut rng,
                    )
                }),
                skip: grm_skip(n, m),
            }
        })
        .collect()
}

/// Figure 4 dispatcher.
pub fn run_fig4(id: &str, cfg: &RunConfig) {
    let methods = Method::accuracy_set();
    match id {
        "fig4a" | "fig4b" | "fig4c" => {
            let model = match id {
                "fig4a" => ModelKind::Grm,
                "fig4b" => ModelKind::Bock,
                _ => ModelKind::Samejima,
            };
            let points = model_points(model, &n_sweep(cfg), false, cfg);
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                &format!(
                    "Figure 4 — accuracy vs number of questions ({})",
                    model.name()
                ),
                "n",
                &methods,
                &result,
                cfg,
            );
        }
        "fig4d" => {
            let points = model_points(ModelKind::Samejima, &n_sweep(cfg), true, cfg);
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                "Figure 4d — accuracy vs number of users (Samejima)",
                "m",
                &methods,
                &result,
                cfg,
            );
        }
        "fig4e" => {
            let ks: Vec<u16> = vec![2, 3, 4, 5, 6];
            let points: Vec<SweepPoint> = ks
                .iter()
                .map(|&k| SweepPoint {
                    label: k.to_string(),
                    make: Box::new(move |seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        hnd_irt::generate(
                            &GeneratorConfig {
                                n_options: k,
                                model: ModelKind::Samejima,
                                ..Default::default()
                            },
                            &mut rng,
                        )
                    }),
                    skip: Vec::new(),
                })
                .collect();
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                "Figure 4e — accuracy vs number of options (Samejima)",
                "k",
                &methods,
                &result,
                cfg,
            );
        }
        "fig4f" => {
            run_difficulty_sweep(id, ModelKind::Samejima, cfg, &methods);
        }
        "fig4g" => {
            run_probability_sweep(id, ModelKind::Samejima, cfg, &methods);
        }
        "fig4h" => {
            let points: Vec<SweepPoint> = n_sweep(cfg)
                .iter()
                .map(|&n| SweepPoint {
                    label: n.to_string(),
                    make: Box::new(move |seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        hnd_irt::generate_c1p(100, n, 3, &mut rng)
                    }),
                    skip: grm_skip(n, 100),
                })
                .collect();
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                "Figure 4h — accuracy vs number of questions (ideal C1P data)",
                "n",
                &methods,
                &result,
                cfg,
            );
        }
        _ => unreachable!("dispatcher guarantees a fig4 id"),
    }
}

/// The seven shifted difficulty ranges of Figure 4f.
const DIFFICULTY_RANGES: [(f64, f64); 7] = [
    (-1.0, 0.0),
    (-0.75, 0.25),
    (-0.5, 0.5),
    (-0.25, 0.75),
    (0.0, 1.0),
    (0.25, 1.25),
    (0.5, 1.5),
];

fn run_difficulty_sweep(id: &str, model: ModelKind, cfg: &RunConfig, methods: &[Method]) {
    let points: Vec<SweepPoint> = DIFFICULTY_RANGES
        .iter()
        .map(|&(lo, hi)| SweepPoint {
            label: format!("[{lo},{hi}]"),
            make: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                hnd_irt::generate(
                    &GeneratorConfig {
                        model,
                        difficulty_range: (lo, hi),
                        ..Default::default()
                    },
                    &mut rng,
                )
            }),
            skip: Vec::new(),
        })
        .collect();
    let result = run_sweep(&points, methods, cfg);
    // The paper plots mean user accuracy on the x-axis; add it as a column.
    let mut headers = vec!["b range".to_string(), "user acc %".to_string()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let mut table = Table::new(
        format!("{id} — accuracy vs question difficulty ({})", model.name()),
        headers,
    );
    for (p, label) in result.labels.iter().enumerate() {
        let mut row = vec![
            label.clone(),
            format!("{:.1}", 100.0 * result.mean_user_accuracy[p]),
        ];
        for m in 0..methods.len() {
            row.push(match result.values[p][m] {
                Some(v) => format!("{v:.3}"),
                None => "—".to_string(),
            });
        }
        table.push_row(row);
    }
    table.print();
    let json = serde_json::json!({
        "id": id,
        "x_ranges": result.labels,
        "mean_user_accuracy": result.mean_user_accuracy,
        "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "accuracy": result.values,
    });
    save_json(cfg, id, &json);
}

fn run_probability_sweep(id: &str, model: ModelKind, cfg: &RunConfig, methods: &[Method]) {
    let ps = [0.6, 0.7, 0.8, 0.9, 1.0];
    let points: Vec<SweepPoint> = ps
        .iter()
        .map(|&p| SweepPoint {
            label: format!("{p:.1}"),
            make: Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                hnd_irt::generate(
                    &GeneratorConfig {
                        model,
                        answer_probability: p,
                        ..Default::default()
                    },
                    &mut rng,
                )
            }),
            skip: Vec::new(),
        })
        .collect();
    let result = run_sweep(&points, methods, cfg);
    report_sweep(
        id,
        &format!("{id} — accuracy vs answer probability ({})", model.name()),
        "p",
        methods,
        &result,
        cfg,
    );
}

/// Figure 9 dispatcher (supplementary sweeps on GRM and Bock, plus the
/// discrimination sweeps 9i–9k).
pub fn run_fig9(id: &str, cfg: &RunConfig) {
    let methods = Method::accuracy_set();
    match id {
        "fig9a" | "fig9e" => {
            let model = if id == "fig9a" {
                ModelKind::Grm
            } else {
                ModelKind::Bock
            };
            let points = model_points(model, &n_sweep(cfg), true, cfg);
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                &format!("{id} — accuracy vs number of users ({})", model.name()),
                "m",
                &methods,
                &result,
                cfg,
            );
        }
        "fig9b" | "fig9f" => {
            let model = if id == "fig9b" {
                ModelKind::Grm
            } else {
                ModelKind::Bock
            };
            // GRM data generation needs k ≥ 3 (footnote 11).
            let ks: Vec<u16> = if model == ModelKind::Grm {
                vec![3, 4, 5, 6, 7]
            } else {
                vec![2, 3, 4, 5, 6]
            };
            let points: Vec<SweepPoint> = ks
                .iter()
                .map(|&k| SweepPoint {
                    label: k.to_string(),
                    make: Box::new(move |seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        hnd_irt::generate(
                            &GeneratorConfig {
                                n_options: k,
                                model,
                                ..Default::default()
                            },
                            &mut rng,
                        )
                    }),
                    skip: Vec::new(),
                })
                .collect();
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                &format!("{id} — accuracy vs number of options ({})", model.name()),
                "k",
                &methods,
                &result,
                cfg,
            );
        }
        "fig9c" | "fig9g" => {
            let model = if id == "fig9c" {
                ModelKind::Grm
            } else {
                ModelKind::Bock
            };
            run_difficulty_sweep(id, model, cfg, &methods);
        }
        "fig9d" | "fig9h" => {
            let model = if id == "fig9d" {
                ModelKind::Grm
            } else {
                ModelKind::Bock
            };
            run_probability_sweep(id, model, cfg, &methods);
        }
        "fig9i" | "fig9j" | "fig9k" => {
            let model = match id {
                "fig9i" => ModelKind::Grm,
                "fig9j" => ModelKind::Bock,
                _ => ModelKind::Samejima,
            };
            let amaxes = [2.5, 5.0, 10.0, 20.0, 40.0];
            let points: Vec<SweepPoint> = amaxes
                .iter()
                .map(|&a| SweepPoint {
                    label: format!("{a}"),
                    make: Box::new(move |seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        hnd_irt::generate(
                            &GeneratorConfig {
                                model,
                                max_discrimination: a,
                                ..Default::default()
                            },
                            &mut rng,
                        )
                    }),
                    skip: Vec::new(),
                })
                .collect();
            let result = run_sweep(&points, &methods, cfg);
            report_sweep(
                id,
                &format!(
                    "{id} — accuracy vs question discrimination ({})",
                    model.name()
                ),
                "a_max",
                &methods,
                &result,
                cfg,
            );
        }
        _ => unreachable!("dispatcher guarantees a fig9 id"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            reps: 1,
            quick: true,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_machinery_produces_means() {
        let points: Vec<SweepPoint> = vec![SweepPoint {
            label: "30".into(),
            make: Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                hnd_irt::generate(
                    &GeneratorConfig {
                        n_users: 30,
                        n_items: 20,
                        ..Default::default()
                    },
                    &mut rng,
                )
            }),
            skip: vec![Method::GrmEstimator],
        }];
        let methods = vec![Method::Hnd, Method::TrueAnswer, Method::GrmEstimator];
        let result = run_sweep(&points, &methods, &quick_cfg());
        assert_eq!(result.labels, vec!["30"]);
        assert!(result.values[0][0].is_some(), "HnD ran");
        assert!(result.values[0][2].is_none(), "GRM estimator skipped");
        assert!((0.0..=1.0).contains(&result.mean_user_accuracy[0]));
    }

    #[test]
    fn c1p_point_gives_hnd_perfect_accuracy() {
        let points: Vec<SweepPoint> = vec![SweepPoint {
            label: "c1p".into(),
            make: Box::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                hnd_irt::generate_c1p(50, 60, 3, &mut rng)
            }),
            skip: Vec::new(),
        }];
        let methods = vec![Method::Hnd, Method::Abh];
        let result = run_sweep(&points, &methods, &quick_cfg());
        let hnd = result.values[0][0].unwrap();
        assert!(hnd > 0.99, "HnD on ideal C1P data: {hnd}");
    }
}
