//! Scalability experiments (Figure 5, Section IV-C).
//!
//! Median wall-clock time of each implementation over `reps` runs, sweeping
//! either the number of users (`fig5a`) or questions (`fig5b`). The paper's
//! headline: `HND-power` is linear in both, ABH is unavoidably quadratic in
//! the user count, the GRM estimator is orders of magnitude slower.
//!
//! Default sweeps stop at 10⁴ (a laptop-friendly bound); `--full` extends
//! to 10⁵ like the paper. Methods whose projected cost explodes are skipped
//! at the largest sizes, mirroring the paper's 1000 s timeout.

use crate::config::RunConfig;
use crate::rankers::Method;
use crate::report::{save_json, Table};
use hnd_irt::{GeneratorConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which dimension the sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Figure 5a: vary `m`, fix `n = 100`.
    Users,
    /// Figure 5b: vary `n`, fix `m = 100`.
    Items,
}

fn sizes(cfg: &RunConfig) -> Vec<usize> {
    if cfg.quick {
        vec![10, 100, 1000]
    } else if cfg.full {
        vec![10, 100, 1000, 10_000, 100_000]
    } else {
        vec![10, 100, 1000, 10_000]
    }
}

/// Skip rules standing in for the paper's 1000 s timeout: quadratic-in-m
/// methods stop at 10⁴ users, the EM estimator at 10³.
fn skip(method: Method, m: usize, n: usize) -> bool {
    match method {
        Method::GrmEstimator => m > 1000 || n > 1000,
        Method::Abh | Method::AbhPower => m > 10_000,
        Method::HndDeflation | Method::HndDirect | Method::Hnd => false,
        _ => false,
    }
}

/// Runs the Figure 5 sweep on the given axis.
pub fn run(cfg: &RunConfig, axis: Axis) {
    let methods = Method::scalability_set();
    let (id, title, x_name) = match axis {
        Axis::Users => (
            "fig5a",
            "Figure 5a — execution time vs number of users (n = 100)",
            "m",
        ),
        Axis::Items => (
            "fig5b",
            "Figure 5b — execution time vs number of questions (m = 100)",
            "n",
        ),
    };
    let mut headers = vec![x_name.to_string()];
    headers.extend(methods.iter().map(|m| format!("{} [s]", m.name())));
    let mut table = Table::new(title, headers);
    let mut json_rows = Vec::new();

    let reps = cfg.effective_reps().clamp(1, 5);
    for (p, &size) in sizes(cfg).iter().enumerate() {
        let (m, n) = match axis {
            Axis::Users => (size, 100),
            Axis::Items => (100, size),
        };
        // One dataset per repetition, generated once and shared by every
        // method (the seeds were method-independent before, too), but held
        // only for the duration of its repetition — at --full sizes a
        // dataset is tens of MB, so keeping all reps alive would multiply
        // peak memory and distort the timings. Timing stays strictly
        // serial so methods don't contend.
        let mut times_per_method: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); methods.len()];
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(cfg.seed_for(p, r));
            let ds = hnd_irt::generate(
                &GeneratorConfig {
                    n_users: m,
                    n_items: n,
                    model: ModelKind::Samejima,
                    ..Default::default()
                },
                &mut rng,
            );
            for (mi, method) in methods.iter().enumerate() {
                if skip(*method, m, n) {
                    continue;
                }
                let start = Instant::now();
                let outcome = method.run(&ds);
                let elapsed = start.elapsed().as_secs_f64();
                assert!(outcome.is_ok(), "{} failed at {m}x{n}", method.name());
                times_per_method[mi].push(elapsed);
            }
        }
        let mut row = vec![size.to_string()];
        let mut json_cells = Vec::new();
        for (mi, method) in methods.iter().enumerate() {
            if skip(*method, m, n) {
                row.push("skip".to_string());
                json_cells.push(serde_json::Value::Null);
                continue;
            }
            let mut times = std::mem::take(&mut times_per_method[mi]);
            times.sort_by(|a, b| a.partial_cmp(b).expect("NaN time"));
            let median = times[times.len() / 2];
            row.push(format!("{median:.4}"));
            json_cells.push(serde_json::json!(median));
        }
        table.push_row(row);
        json_rows.push(serde_json::json!({
            "size": size,
            "median_seconds": json_cells,
        }));
        // Print incrementally so long sweeps show progress.
    }
    table.print();
    let json = serde_json::json!({
        "id": id,
        "axis": x_name,
        "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
        "points": json_rows,
        "reps": reps,
    });
    save_json(cfg, id, &json);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_rules_match_paper_budget() {
        assert!(skip(Method::GrmEstimator, 10_000, 100));
        assert!(skip(Method::Abh, 100_000, 100));
        assert!(!skip(Method::Hnd, 100_000, 100));
        assert!(!skip(Method::Abh, 100, 100_000), "ABH is fine in n");
    }

    #[test]
    fn sizes_scale_with_flags() {
        let quick = RunConfig {
            quick: true,
            ..Default::default()
        };
        assert_eq!(sizes(&quick).last(), Some(&1000));
        let full = RunConfig {
            full: true,
            ..Default::default()
        };
        assert_eq!(sizes(&full).last(), Some(&100_000));
    }
}
