//! Smoke tests: every experiment family must run end-to-end in quick mode.
//! (The full suite is exercised by `hnd-experiments -- all`; here we keep
//! runtimes test-friendly.)

use hnd_experiments::{run_experiment, RunConfig, ALL_EXPERIMENTS};

fn quick() -> RunConfig {
    RunConfig {
        reps: 1,
        quick: true,
        out_dir: None,
        ..Default::default()
    }
}

#[test]
fn unknown_ids_are_rejected() {
    assert!(run_experiment("fig99", &quick()).is_err());
    assert!(run_experiment("", &quick()).is_err());
}

#[test]
fn id_table_is_complete_and_unique() {
    assert_eq!(ALL_EXPERIMENTS.len(), 29);
    let mut sorted: Vec<&str> = ALL_EXPERIMENTS.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 29, "duplicate experiment ids");
}

#[test]
fn real_world_family_runs() {
    for id in ["fig10", "fig7", "fig11"] {
        run_experiment(id, &quick()).unwrap_or_else(|e| panic!("{id}: {e}"));
    }
}

#[test]
fn stability_study_runs() {
    run_experiment("fig6", &quick()).expect("fig6 runs");
}

#[test]
fn beta_analysis_runs() {
    run_experiment("fig14a", &quick()).expect("fig14a runs");
}

#[test]
fn one_accuracy_panel_runs_and_writes_json() {
    let dir = std::env::temp_dir().join("hnd_smoke_results");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = RunConfig {
        reps: 1,
        quick: true,
        out_dir: Some(dir.clone()),
        ..Default::default()
    };
    run_experiment("fig4e", &cfg).expect("fig4e runs");
    let json_path = dir.join("fig4e.json");
    let body = std::fs::read_to_string(&json_path).expect("JSON written");
    let value: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    assert_eq!(value["id"], "fig4e");
    assert!(value["accuracy"].is_array());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn results_are_seed_reproducible() {
    use hnd_experiments::accuracy::{run_sweep, SweepPoint};
    use hnd_experiments::rankers::Method;
    let point = || {
        vec![SweepPoint {
            label: "x".into(),
            make: Box::new(|seed| {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                hnd_irt::generate(
                    &hnd_irt::GeneratorConfig {
                        n_users: 25,
                        n_items: 15,
                        ..Default::default()
                    },
                    &mut rng,
                )
            }),
            skip: Vec::new(),
        }]
    };
    let cfg = RunConfig {
        reps: 2,
        ..Default::default()
    };
    let a = run_sweep(&point(), &[Method::Hnd], &cfg);
    let b = run_sweep(&point(), &[Method::Hnd], &cfg);
    assert_eq!(a.values, b.values, "same seeds must give identical results");
}
