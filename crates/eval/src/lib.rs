#![warn(missing_docs)]

//! # hnd-eval
//!
//! Ranking evaluation metrics for ability discovery.
//!
//! The paper measures *accuracy of a user ranking* as Spearman's rank
//! correlation between the produced scores and the ground-truth abilities
//! (Section IV-B; preferred over Kendall when ties occur \[49\]). Kendall's
//! τ-b, Pearson correlation and the normalized user displacement of the
//! stability study (Figure 6b) are provided as well.

mod metrics;
mod stats;
mod topk;

pub use metrics::{average_ranks, kendall_tau_b, normalized_displacement, pearson, spearman};
pub use stats::{mean, std_dev, Summary};
pub use topk::{ndcg_at_k, pairwise_accuracy, precision_at_k};
