//! Top-k selection metrics.
//!
//! Ability discovery is often consumed as a *selection* problem ("hire the
//! best 10% of workers", Example 2 of the paper). These metrics score the
//! head of a ranking instead of the whole permutation.

/// Indices of the `k` largest entries of `scores`: ties within `scores`
/// break by *descending `tiebreak`*, then ascending index. A prediction
/// that scores two users identically expressed no preference between them,
/// so the prefix is deterministic and credits the tie block best-case
/// instead of penalizing it by whatever order the indices happen to have.
fn top_k_by(scores: &[f64], tiebreak: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("NaN score")
            .then(
                tiebreak[b]
                    .partial_cmp(&tiebreak[a])
                    .expect("NaN tiebreak score"),
            )
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Precision@k: the fraction of the predicted top-`k` that truly belongs
/// in a top-`k` — a pick counts when its true score reaches the `k`-th
/// highest truth value (tie-inclusive, so users tied with the boundary
/// are all legitimate picks and the metric does not depend on how either
/// side's ties are broken).
///
/// # Panics
/// Panics when the slices disagree in length or `k` exceeds it.
pub fn precision_at_k(predicted: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "precision_at_k: length mismatch"
    );
    assert!(k > 0 && k <= truth.len(), "precision_at_k: invalid k");
    let mut sorted_truth = truth.to_vec();
    sorted_truth.sort_by(|a, b| b.partial_cmp(a).expect("NaN score"));
    let threshold = sorted_truth[k - 1];
    let hits = top_k_by(predicted, truth, k)
        .into_iter()
        .filter(|&u| truth[u] >= threshold)
        .count();
    hits as f64 / k as f64
}

/// NDCG@k with the true scores as graded relevance (shifted to be
/// non-negative). `1.0` means the predicted head ordering is ideal.
/// Predicted-score ties are broken by descending relevance (see
/// [`top_k_by`]): within a block the prediction left unordered the DCG
/// credit is best-case, deterministically.
///
/// # Panics
/// Panics when the slices disagree in length or `k` exceeds it.
pub fn ndcg_at_k(predicted: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "ndcg_at_k: length mismatch");
    assert!(k > 0 && k <= truth.len(), "ndcg_at_k: invalid k");
    let min = truth.iter().cloned().fold(f64::INFINITY, f64::min);
    let rel: Vec<f64> = truth.iter().map(|t| t - min).collect();
    let dcg = |order: &[usize]| -> f64 {
        order
            .iter()
            .enumerate()
            .map(|(pos, &u)| rel[u] / ((pos + 2) as f64).log2())
            .sum()
    };
    let got = dcg(&top_k_by(predicted, &rel, k));
    let ideal = dcg(&top_k_by(&rel, &rel, k));
    if ideal <= 0.0 {
        1.0 // all relevances equal: any head is ideal
    } else {
        got / ideal
    }
}

/// Pairwise ranking accuracy: fraction of user pairs ordered the same way
/// by `predicted` and `truth` (ties in either are skipped). This is the
/// `(τ + 1)/2` view of Kendall's correlation, often easier to communicate.
pub fn pairwise_accuracy(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "pairwise_accuracy: length mismatch"
    );
    let n = predicted.len();
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let dp = predicted[i] - predicted[j];
            let dt = truth[i] - truth[j];
            if dp == 0.0 || dt == 0.0 {
                continue;
            }
            total += 1;
            if (dp > 0.0) == (dt > 0.0) {
                agree += 1;
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = [0.9, 0.5, 0.7, 0.1];
        assert_eq!(precision_at_k(&truth, &truth, 2), 1.0);
        assert!((ndcg_at_k(&truth, &truth, 3) - 1.0).abs() < 1e-12);
        assert_eq!(pairwise_accuracy(&truth, &truth), 1.0);
    }

    #[test]
    fn reversed_prediction_scores_zero() {
        let truth = [4.0, 3.0, 2.0, 1.0];
        let reversed = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(precision_at_k(&reversed, &truth, 2), 0.0);
        assert_eq!(pairwise_accuracy(&reversed, &truth), 0.0);
    }

    #[test]
    fn precision_counts_overlap() {
        let truth = [10.0, 9.0, 8.0, 1.0];
        let pred = [10.0, 1.0, 9.0, 2.0]; // top-2 = {0, 2}; true top-2 = {0, 1}
        assert!((precision_at_k(&pred, &truth, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_head_errors_more() {
        let truth = [3.0, 2.0, 1.0, 0.0];
        // Swap at the head vs swap at the tail.
        let head_swap = [2.0, 3.0, 1.0, 0.0];
        let tail_swap = [3.0, 2.0, 0.0, 1.0];
        let nh = ndcg_at_k(&head_swap, &truth, 4);
        let nt = ndcg_at_k(&tail_swap, &truth, 4);
        assert!(
            nh < nt,
            "head swap {nh} should hurt more than tail swap {nt}"
        );
    }

    #[test]
    fn constant_relevance_is_ideal() {
        let truth = [1.0, 1.0, 1.0];
        assert_eq!(ndcg_at_k(&[0.3, 0.2, 0.1], &truth, 2), 1.0);
    }

    #[test]
    fn predicted_ties_are_not_penalized() {
        // Regression: the index tiebreak used to pick user 0 out of the
        // predicted tie, score it against an equally index-tie-broken
        // "true top-1", and report 0.0 for a prediction that never ordered
        // the pair at all.
        let truth = [1.0, 2.0];
        let pred = [1.0, 1.0];
        assert_eq!(precision_at_k(&pred, &truth, 1), 1.0);
        assert!((ndcg_at_k(&pred, &truth, 1) - 1.0).abs() < 1e-12);
        // A genuinely reversed prediction is still fully penalized.
        let reversed = [2.0, 1.0];
        assert_eq!(precision_at_k(&reversed, &truth, 1), 0.0);
        assert!(ndcg_at_k(&reversed, &truth, 1) < 1.0);
    }

    #[test]
    fn truth_ties_at_the_boundary_are_inclusive() {
        // True scores tie at the k-boundary: either member of the tie is a
        // legitimate top-2 pick, whichever way the indices fall.
        let truth = [3.0, 2.0, 2.0, 1.0];
        let picks_first = [9.0, 8.0, 0.0, 0.0];
        let picks_second = [9.0, 0.0, 8.0, 0.0];
        assert_eq!(precision_at_k(&picks_first, &truth, 2), 1.0);
        assert_eq!(precision_at_k(&picks_second, &truth, 2), 1.0);
    }

    #[test]
    fn all_tied_prediction_is_best_case_deterministic() {
        let truth = [0.1, 0.9, 0.5, 0.7];
        let flat = [1.0; 4];
        // No expressed preference: full best-case credit at any k…
        for k in 1..=4 {
            assert_eq!(precision_at_k(&flat, &truth, k), 1.0, "k={k}");
            assert!((ndcg_at_k(&flat, &truth, k) - 1.0).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn pairwise_skips_ties_and_handles_all_tied() {
        assert_eq!(pairwise_accuracy(&[1.0, 1.0], &[1.0, 2.0]), 0.5);
        let truth = [1.0, 2.0, 2.0, 3.0];
        let pred = [1.0, 2.0, 3.0, 4.0];
        // Comparable pairs: (0,1),(0,2),(0,3),(1,3),(2,3) — all agree.
        assert_eq!(pairwise_accuracy(&pred, &truth), 1.0);
    }
}
