//! Small aggregation helpers for repeated experiment runs.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); `0.0` for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Mean ± standard deviation over repeated runs — the aggregation used by
/// the Figure 12/13 experiments ("average and standard deviation over 10
/// runs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over runs.
    pub mean: f64,
    /// Sample standard deviation over runs.
    pub std_dev: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl Summary {
    /// Aggregates a slice of per-run measurements.
    pub fn of(xs: &[f64]) -> Self {
        Summary {
            mean: mean(xs),
            std_dev: std_dev(xs),
            runs: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={})",
            self.mean, self.std_dev, self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn summary_formats() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.runs, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        let text = format!("{s}");
        assert!(text.contains("2.0000"));
        assert!(text.contains("n=3"));
    }
}
