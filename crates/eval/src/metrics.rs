//! Rank correlation and displacement metrics.

/// Fractional (average) ranks of the values, 1-based: ties receive the mean
/// of the positions they span — the standard treatment behind Spearman's ρ
/// with ties.
pub fn average_ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("NaN in ranks"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation coefficient; `0.0` when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Spearman's rank correlation ρ — the paper's accuracy measure
/// (Section IV-B): the Pearson correlation of the fractional ranks.
/// Ranges over `[−1, 1]`; negative values mean an anti-correlated ranking.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman: length mismatch");
    pearson(&average_ranks(a), &average_ranks(b))
}

/// Kendall's τ-b (tie-corrected), computed in `O(n²)` — fine for the
/// experiment sizes of the paper.
pub fn kendall_tau_b(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tie in both — contributes to neither
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_a as f64) * (n0 - ties_b as f64)).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / denom
}

/// Normalized mean displacement between two rankings of the same users
/// (Figure 6b): the average absolute difference of each user's rank
/// position, divided by the number of users. `0` = identical rankings,
/// values near `0.33` = unrelated rankings.
///
/// Because a ranking and its reverse are equivalent for C1P methods, the
/// minimum of the displacement against `b` and against reversed `b` is
/// returned.
pub fn normalized_displacement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "displacement: length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let fwd: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y).abs()).sum();
    let rev: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(x, y)| (x - (n as f64 + 1.0 - y)).abs())
        .sum();
    fwd.min(rev) / (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_without_ties() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_are_averaged() {
        // 5,5 occupy positions 2 and 3 → both get 2.5.
        assert_eq!(
            average_ranks(&[1.0, 5.0, 5.0, 9.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn spearman_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transformations don't change ρ.
        let a = [0.1f64, 0.4, 0.2, 0.9];
        let b: Vec<f64> = a.iter().map(|&x| x.exp() * 100.0).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // Classic example: ranks (1,2,3,4,5) vs (3,1,4,2,5) → ρ = 0.5.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [3.0, 1.0, 4.0, 2.0, 5.0];
        assert!((spearman(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_input_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_known_value() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [1.0, 0.0, 1.0];
        assert!(pearson(&a, &c).abs() < 1e-12);
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 3.0, 7.0, 9.0];
        assert!((kendall_tau_b(&a, &b) - 1.0).abs() < 1e-12);
        let c = [9.0, 7.0, 3.0, 1.0];
        assert!((kendall_tau_b(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau_b(&a, &b);
        assert!(tau > 0.8 && tau < 1.0, "τ-b = {tau}");
    }

    #[test]
    fn displacement_identical_and_reverse_are_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(normalized_displacement(&a, &a), 0.0);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(normalized_displacement(&a, &rev), 0.0);
    }

    #[test]
    fn displacement_detects_disagreement() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let d = normalized_displacement(&a, &b);
        assert!(d > 0.0 && d < 0.2, "mild disagreement: {d}");
    }

    #[test]
    fn spearman_vs_kendall_agree_in_sign() {
        let a = [0.3, 0.1, 0.5, 0.9, 0.2];
        let b = [0.2, 0.15, 0.6, 0.7, 0.25];
        assert_eq!(spearman(&a, &b) > 0.0, kendall_tau_b(&a, &b) > 0.0);
    }
}
